"""Monotone AXML systems: ``(D, F, I)`` triples (Definition 2.3).

An :class:`AXMLSystem` carries a finite set of named documents and a finite
set of named services; it validates the paper's well-formedness conditions:

* document names avoid the reserved ``input`` / ``context``;
* documents only embed calls to declared services;
* services only read declared documents (plus the reserved names) and only
  emit calls to declared services;
* documents share no nodes.

A system is *positive* when every service is defined by positive queries
(Section 3.2), and *simple positive* when no such query uses tree
variables — the class for which termination and stability become decidable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..tree.document import RESERVED_NAMES, Document
from ..tree.node import Node
from ..tree.parser import parse_tree
from ..tree.reduction import canonical_key, reduce_in_place
from ..tree.serializer import to_canonical
from .service import QueryService, Service, UnionQueryService

DocumentSpec = Union[Document, Node, str]
ServiceSpec = Union[Service, str]


class SystemValidationError(ValueError):
    """The system violates Definition 2.3."""


class AXMLSystem:
    """A monotone AXML system ``(D, F, I)``."""

    def __init__(self, documents: Sequence[Document],
                 services: Sequence[Service],
                 validate: bool = True,
                 reduce: bool = True):
        self.documents: Dict[str, Document] = {}
        for document in documents:
            if document.name in self.documents:
                raise SystemValidationError(f"duplicate document name {document.name!r}")
            self.documents[document.name] = document
        self.services: Dict[str, Service] = {}
        for service in services:
            if service.name in self.services:
                raise SystemValidationError(f"duplicate service name {service.name!r}")
            self.services[service.name] = service
        if reduce:
            for document in self.documents.values():
                document.reduce()
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # construction sugar
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, documents: Mapping[str, DocumentSpec],
              services: Mapping[str, ServiceSpec] = (),
              validate: bool = True) -> "AXMLSystem":
        """Build a system from compact-syntax strings.

        Document values may be trees, Documents, or compact syntax strings;
        service values may be Service objects or rule text (``;``-separated
        rules make a :class:`UnionQueryService`)::

            AXMLSystem.build(
                documents={"d0": "r{t{c0{1}, c1{2}}}", "d1": "r{!g, !f}"},
                services={
                    "g": "t{$x, $y} :- d0/r{t{c0{$x}, c1{$y}}}",
                    "f": "t{$x, $y} :- d1/r{t{$x, @z}, t{@z, $y}}",
                },
            )
        """
        docs: List[Document] = []
        for name, spec in documents.items():
            if isinstance(spec, Document):
                docs.append(spec)
            elif isinstance(spec, Node):
                docs.append(Document(name, spec))
            else:
                docs.append(Document.parse(name, spec))
        svcs: List[Service] = []
        for name, sspec in dict(services).items():
            if isinstance(sspec, Service):
                svcs.append(sspec)
            elif ";" in sspec:
                svcs.append(UnionQueryService.parse(name, sspec))
            else:
                svcs.append(QueryService.parse(name, sspec))
        return cls(docs, svcs, validate=validate)

    # ------------------------------------------------------------------
    # validation (Definition 2.3)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        reserved = RESERVED_NAMES & set(self.documents)
        if reserved:
            raise SystemValidationError(
                f"document names {sorted(reserved)} are reserved for call "
                "parameters and context (Section 2.2)"
            )
        known_docs = set(self.documents) | RESERVED_NAMES
        for document in self.documents.values():
            for node in document.root.function_nodes():
                name = node.marking.name  # type: ignore[union-attr]
                if name not in self.services:
                    raise SystemValidationError(
                        f"document {document.name!r} calls undeclared service {name!r}"
                    )
        for service in self.services.values():
            unknown_docs = service.reads_documents() - known_docs
            if unknown_docs:
                raise SystemValidationError(
                    f"service {service.name!r} reads undeclared documents "
                    f"{sorted(unknown_docs)}"
                )
            unknown_funs = service.emits_functions() - set(self.services)
            if unknown_funs:
                raise SystemValidationError(
                    f"service {service.name!r} emits calls to undeclared services "
                    f"{sorted(unknown_funs)}"
                )
        seen_nodes: Set[int] = set()
        for document in self.documents.values():
            for node in document.root.iter_nodes():
                if id(node) in seen_nodes:
                    raise SystemValidationError(
                        "documents share nodes (Def. 2.3 requires disjointness)"
                    )
                seen_nodes.add(id(node))

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------

    @property
    def is_positive(self) -> bool:
        """All services defined by known positive queries (Section 3.2)."""
        return all(service.is_positive for service in self.services.values())

    @property
    def is_simple(self) -> bool:
        """A simple positive system: positive, and no tree variables."""
        return all(service.is_positive and service.is_simple
                   for service in self.services.values())

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def environment(self) -> Dict[str, Node]:
        """Document-name → root mapping (the θ over D of Section 2.2)."""
        return {name: doc.root for name, doc in self.documents.items()}

    def call_sites(self) -> Iterator[Tuple[Document, Node]]:
        """All live service-call nodes, with their documents."""
        for document in self.documents.values():
            for node in document.root.function_nodes():
                yield document, node

    def call_count(self) -> int:
        return sum(1 for _ in self.call_sites())

    def total_size(self) -> int:
        return sum(doc.size() for doc in self.documents.values())

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------

    def signature(self) -> Dict[str, object]:
        """Canonical keys of all documents — equal iff systems are ≡."""
        return {name: doc.canonical_key() for name, doc in self.documents.items()}

    def equivalent_to(self, other: "AXMLSystem") -> bool:
        """Document-wise equivalence ``I ≡ J`` (same names, ≡ trees)."""
        if set(self.documents) != set(other.documents):
            return False
        return self.signature() == other.signature()

    def subsumed_by(self, other: "AXMLSystem") -> bool:
        """Document-wise ⊆ (same names; each tree subsumed by its peer)."""
        if set(self.documents) != set(other.documents):
            return False
        return all(
            doc.subsumed_by(other.documents[name])
            for name, doc in self.documents.items()
        )

    def copy(self) -> "AXMLSystem":
        """Deep-copy documents; services are shared (they are stateless)."""
        return AXMLSystem(
            [doc.copy() for doc in self.documents.values()],
            list(self.services.values()),
            validate=False,
            reduce=False,
        )

    def copy_with_node_map(self) -> Tuple["AXMLSystem", Dict[int, Node]]:
        """Deep-copy plus a map ``id(original node) -> copied node``.

        Lets callers translate node-identity sets (e.g. the suppressed set
        ``N`` of ``[I↓N]``) onto the copy.
        """
        mapping: Dict[int, Node] = {}

        def copy_node(node: Node) -> Node:
            duplicate = Node(node.marking, [copy_node(c) for c in node.children])
            mapping[id(node)] = duplicate
            return duplicate

        documents = [Document(doc.name, copy_node(doc.root))
                     for doc in self.documents.values()]
        system = AXMLSystem(documents, list(self.services.values()),
                            validate=False, reduce=False)
        return system, mapping

    def pretty(self) -> str:
        lines = []
        for name in sorted(self.documents):
            lines.append(f"{name}/{to_canonical(self.documents[name].root)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AXMLSystem(docs={sorted(self.documents)}, "
            f"services={sorted(self.services)}, "
            f"simple={self.is_simple})"
        )
