"""Fair rewriting sequences and the semantics ``[I]`` (Definitions 2.4–2.5).

The engine drives a system through a sequence of invocations
``I →v1 I1 →v2 I2 …``.  Fairness — every call that could bring new data is
eventually invoked — is what makes the limit independent of the order
(Lemma 2.1 / Theorem 2.1); the round-robin and randomised schedulers are
fair by construction.

Termination is detected exactly: when a full round over every live call
produced no change, no single invocation can change the system (nothing
changed in between, so re-running any call would reproduce its no-op), i.e.
the system *terminates at* the current state.  For divergent systems the
engine stops on a step budget and reports ``BUDGET_EXHAUSTED`` — the prefix
computed so far is a faithful finite approximation of the infinite
semantics (everything it contains is in ``[I]``).

A set of *suppressed* call nodes can be supplied to compute ``[I↓N]`` — the
limit of sequences fair for every call outside ``N`` — which Section 4's
lazy-evaluation notions are defined in terms of.

The scheduling/grafting machinery itself lives in the shared
:mod:`paxml.kernel` (this engine and the async runtime run on the same
:class:`~paxml.kernel.EvaluationKernel`); what remains here is the
sequential driver loop: pop a call, evaluate its delta, apply the graft,
record the verdict.  ``Status``/``RewriteResult``/``Step`` are deprecated
aliases of the kernel's unified :class:`~paxml.kernel.RunStatus` /
:class:`~paxml.kernel.RunResult` / :class:`~paxml.kernel.Step`.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence

from ..kernel import EvaluationKernel, RunResult, RunStatus, Step
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs.metrics import absorb_rewrite
from ..query.plan import warm_system
from ..tree.node import Node
from .invocation import StaleCallError, call_path, evaluate_call_delta
from .system import AXMLSystem

# Deprecated aliases: the unified kernel result types replaced the
# engine-specific ones; identity is preserved so ``status is
# Status.TERMINATED`` style checks keep working.
Status = RunStatus
RewriteResult = RunResult

SchedulerName = str  # "round_robin" | "random" | "lifo"


class RewritingEngine:
    """Drives fair rewriting sequences over one system.

    The engine mutates the system in place.  ``scheduler`` picks the next
    call to try:

    * ``round_robin`` — FIFO over live calls; fair.
    * ``random``      — uniformly random among live calls; fair with
      probability 1 (every call is chosen infinitely often).
    * ``lifo``        — newest call first.  *Not* fair on divergent systems
      (it can starve old calls); on terminating systems it still reaches
      the unique fixpoint, which experiment E2 demonstrates.

    ``checkpoint_every`` writes a resumable bundle to ``checkpoint_path``
    every N completed invocations (and a final one at run end); a
    bundle-constructed kernel (see :func:`paxml.kernel.resume`) can be
    passed via ``kernel`` to continue a suspended run.
    """

    def __init__(self, system: AXMLSystem,
                 scheduler: SchedulerName = "round_robin",
                 seed: Optional[int] = None,
                 suppressed: Optional[Iterable[Node]] = None,
                 record_trace: bool = False,
                 on_step: Optional[Callable[[Step], None]] = None,
                 kernel: Optional[EvaluationKernel] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_path: Optional[str] = None,
                 lazy_for: Optional[Sequence] = None,
                 fire_once: bool = False):
        self.system = system
        if kernel is None:
            kernel = EvaluationKernel(system, policy=scheduler, seed=seed,
                                      suppressed=suppressed,
                                      promote_front=True)
        else:
            # Adopting a resumed kernel: this engine's historical promote
            # order puts proven no-ops ahead of the untried remainder.
            kernel.scheduler.promote_front = True
        self.kernel = kernel
        # Relevance-guided laziness: the goal set is the queries this run
        # is meant to answer; sites unneeded for them go dormant.  Both
        # are kernel no-ops when perf.flags.lazy_scheduling is off.
        if lazy_for is not None:
            kernel.enable_lazy(lazy_for)
        if fire_once:
            kernel.enable_fire_once()
        self.record_trace = record_trace
        self.on_step = on_step
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        # Pre-compile every positive service's match plan so the first
        # invocation pays no compile latency (no-op when the planner is off).
        warm_system(system)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Snapshot the run to a resumable bundle (between steps)."""
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        return self.kernel.checkpoint(target, engine="sequential")

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Rewrite fairly until fixpoint or budget; see :class:`RunStatus`.

        ``max_steps`` bounds the number of *invocations attempted* (stale
        pops do not count), cumulatively across a checkpoint/resume chain.
        ``None`` means unbounded — only safe on systems known to terminate.
        """
        kernel = self.kernel
        scheduler = kernel.scheduler
        trace: List[Step] = []
        started = time.perf_counter()
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RUN_STARTED, engine="sequential",
                         documents=sorted(self.system.documents),
                         services=sorted(self.system.services))

        def finish(status: RunStatus) -> RunResult:
            if self.checkpoint_every is not None:
                self.checkpoint()
            result = RunResult(
                status, steps=kernel.steps, productive=kernel.productive,
                invocations_by_service=dict(kernel.invocations_by_service),
                trace=trace, attempts=kernel.steps,
                duration_seconds=time.perf_counter() - started,
                checkpoints=kernel.checkpoints,
                resumed_from=kernel.resumed_from)
            absorb_rewrite(result)
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.RUN_FINISHED, engine="sequential",
                             status=status.value, steps=kernel.steps,
                             productive=kernel.productive,
                             seconds=result.duration_seconds)
            return result

        while True:
            # The system terminates exactly when the fresh queue is empty:
            # every live call is then a proven no-op on the unchanged state,
            # so re-running any of them would reproduce its no-op.  (A plain
            # "streak ≥ queue length" test is only sound for round-robin —
            # LIFO/random can starve calls.)
            if not scheduler.has_fresh():
                # Quiescence with dormant sites remaining is *weak
                # q-stability* (Section 4): every registered query's
                # answer is complete, but the suppressed/dormant calls
                # were never proven no-ops — so the run stabilized
                # rather than terminated.
                return finish(RunStatus.TERMINATED
                              if not scheduler.suppressed_uids
                              and not scheduler.dormant_count()
                              else RunStatus.STABILIZED)
            if max_steps is not None and kernel.steps >= max_steps:
                return finish(RunStatus.BUDGET_EXHAUSTED)

            document, node = scheduler.pop()
            service_name = node.marking.name  # type: ignore[union-attr]
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_STARTED,
                             document=document.name, service=service_name,
                             site=node.uid, attempt=1)
            step_started = time.perf_counter()
            try:
                path = call_path(document, node)
                answers = evaluate_call_delta(self.system, node, path[-2])
            except StaleCallError:
                scheduler.forget(node)
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.STALE_CALL,
                                 document=document.name, service=service_name,
                                 site=node.uid)
                continue
            kernel.note_invocation(service_name)
            inserted = kernel.apply_graft(document, node, path, [answers])
            step_seconds = time.perf_counter() - step_started
            # The call stays live either way: future growth of the documents
            # can make it productive again (the pull mode of Section 2.2) —
            # unless the fire-once policy just proved it complete (its
            # feeders are quiesced and this verdict is for the current
            # state, so no future growth can reach it).
            if kernel.maybe_retire(document, node):
                pass
            elif inserted:
                scheduler.requeue((document, node))
            else:
                scheduler.mark_tried((document, node))
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_FINISHED,
                             document=document.name, service=service_name,
                             site=node.uid, attempt=1, seconds=step_seconds,
                             answers=len(answers))

            step = Step(kernel.steps - 1, document.name, service_name,
                        bool(inserted), len(inserted),
                        started=step_started, seconds=step_seconds)
            if self.record_trace:
                trace.append(step)
            if self.on_step is not None:
                self.on_step(step)
            if (self.checkpoint_every is not None
                    and kernel.steps % self.checkpoint_every == 0):
                self.checkpoint()


def materialize(system: AXMLSystem,
                max_steps: Optional[int] = 100_000,
                scheduler: SchedulerName = "round_robin",
                seed: Optional[int] = None,
                lazy_for: Optional[Sequence] = None,
                fire_once: bool = False) -> RunResult:
    """Convenience wrapper: rewrite ``system`` in place toward ``[I]``.

    Returns the run summary; on :data:`RunStatus.BUDGET_EXHAUSTED` the
    system holds a finite prefix of its (then necessarily infinite or very
    large) semantics.  With ``lazy_for`` the run drives only the calls
    weakly relevant to those queries (the result then answers *them*
    exactly — ``STABILIZED`` — without computing all of ``[I]``).
    """
    engine = RewritingEngine(system, scheduler=scheduler, seed=seed,
                             lazy_for=lazy_for, fire_once=fire_once)
    return engine.run(max_steps=max_steps)


def materialize_excluding(system: AXMLSystem, suppressed: Iterable[Node],
                          max_steps: Optional[int] = 100_000,
                          scheduler: SchedulerName = "round_robin",
                          seed: Optional[int] = None) -> RunResult:
    """Compute ``[I↓N]`` in place: fair for every call outside ``suppressed``."""
    engine = RewritingEngine(system, scheduler=scheduler, seed=seed,
                             suppressed=suppressed)
    return engine.run(max_steps=max_steps)
