"""Fair rewriting sequences and the semantics ``[I]`` (Definitions 2.4–2.5).

The engine drives a system through a sequence of invocations
``I →v1 I1 →v2 I2 …``.  Fairness — every call that could bring new data is
eventually invoked — is what makes the limit independent of the order
(Lemma 2.1 / Theorem 2.1); the round-robin and randomised schedulers are
fair by construction.

Termination is detected exactly: when a full round over every live call
produced no change, no single invocation can change the system (nothing
changed in between, so re-running any call would reproduce its no-op), i.e.
the system *terminates at* the current state.  For divergent systems the
engine stops on a step budget and reports ``BUDGET_EXHAUSTED`` — the prefix
computed so far is a faithful finite approximation of the infinite
semantics (everything it contains is in ``[I]``).

A set of *suppressed* call nodes can be supplied to compute ``[I↓N]`` — the
limit of sequences fair for every call outside ``N`` — which Section 4's
lazy-evaluation notions are defined in terms of.
"""

from __future__ import annotations

import enum
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs.metrics import absorb_rewrite
from ..obs.provenance import graft_record
from ..query.plan import warm_system
from ..tree.document import Document
from ..tree.node import Node
from .invocation import InvocationResult, StaleCallError, find_path, invoke
from .system import AXMLSystem


class Status(enum.Enum):
    """How a rewriting run ended."""

    TERMINATED = "terminated"          # fixpoint reached: no call can add data
    BUDGET_EXHAUSTED = "budget"        # step budget hit; system may diverge
    STABILIZED = "stabilized"          # every *allowed* call is a no-op (I↓N)


@dataclass
class Step:
    """One entry of the rewriting trace.

    ``started``/``seconds`` are monotonic (``time.perf_counter``) so a
    sequential run's trace aligns on the same timeline as the async
    runtime's attempt events.
    """

    index: int
    document: str
    service: str
    changed: bool
    inserted: int
    started: float = 0.0    # monotonic stamp when the invocation began
    seconds: float = 0.0    # invocation duration


@dataclass
class RewriteResult:
    """Summary of a run; the system itself was rewritten in place.

    ``invocations_by_service`` and ``duration_seconds`` mirror the fields
    of :class:`paxml.runtime.engine.RuntimeResult`, so sequential and
    concurrent runs report comparable work and wall-clock numbers.
    """

    status: Status
    steps: int
    productive_steps: int
    invocations_by_service: Dict[str, int] = field(default_factory=dict)
    trace: List[Step] = field(default_factory=list)
    duration_seconds: float = 0.0

    @property
    def terminated(self) -> bool:
        return self.status in (Status.TERMINATED, Status.STABILIZED)


SchedulerName = str  # "round_robin" | "random" | "lifo"


class RewritingEngine:
    """Drives fair rewriting sequences over one system.

    The engine mutates the system in place.  ``scheduler`` picks the next
    call to try:

    * ``round_robin`` — FIFO over live calls; fair.
    * ``random``      — uniformly random among live calls; fair with
      probability 1 (every call is chosen infinitely often).
    * ``lifo``        — newest call first.  *Not* fair on divergent systems
      (it can starve old calls); on terminating systems it still reaches
      the unique fixpoint, which experiment E2 demonstrates.
    """

    def __init__(self, system: AXMLSystem,
                 scheduler: SchedulerName = "round_robin",
                 seed: Optional[int] = None,
                 suppressed: Optional[Iterable[Node]] = None,
                 record_trace: bool = False,
                 on_step: Optional[Callable[[Step], None]] = None):
        if scheduler not in ("round_robin", "random", "lifo"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.system = system
        self.scheduler = scheduler
        self.rng = random.Random(seed)
        self.suppressed_ids: Set[int] = {id(n) for n in (suppressed or ())}
        self.record_trace = record_trace
        self.on_step = on_step
        # Two-queue O(1) scheduling: ``_fresh`` holds calls not yet tried
        # since the last productive step, ``_tried`` the calls tried without
        # effect since then.  A step pops from ``_fresh`` in O(1); the
        # termination test is just ``not _fresh`` (every live call is a
        # proven no-op on the unchanged state); a productive step promotes
        # ``_tried`` back wholesale — each entry moves at most once per
        # productive step, so scheduling is O(1) amortised regardless of
        # live-call count, replacing the per-step O(queue) membership scan
        # and candidate-list rebuild.
        self._fresh: Deque[Tuple[Document, Node]] = deque()
        self._tried: Deque[Tuple[Document, Node]] = deque()
        self._enqueued_ids: Set[int] = set()
        self._collect_initial_calls()
        # Pre-compile every positive service's match plan so the first
        # invocation pays no compile latency (no-op when the planner is off).
        warm_system(system)

    # ------------------------------------------------------------------
    # queue maintenance
    # ------------------------------------------------------------------

    def _collect_initial_calls(self) -> None:
        for document, node in self.system.call_sites():
            self._enqueue(document, node)

    def _enqueue(self, document: Document, node: Node) -> None:
        if id(node) in self._enqueued_ids or id(node) in self.suppressed_ids:
            return
        self._enqueued_ids.add(id(node))
        self._fresh.append((document, node))
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.CALL_SCHEDULED, document=document.name,
                         service=node.marking.name,  # type: ignore[union-attr]
                         site=node.uid)

    def _enqueue_new_calls(self, document: Document, inserted: List[Node]) -> None:
        for tree in inserted:
            for node in tree.iter_nodes():
                if node.is_function:
                    self._enqueue(document, node)

    def _promote_tried(self) -> None:
        """After a productive step every no-op verdict is void again."""
        if self._tried:
            self._tried.extend(self._fresh)
            self._fresh = self._tried
            self._tried = deque()

    def _pop(self) -> Tuple[Document, Node]:
        """Pick the next untried call in O(1) (O(1) expected for random).

        The caller guarantees ``_fresh`` is non-empty.  Round-robin pops the
        oldest untried entry, LIFO the newest; random swaps a uniform entry
        to the end first (order inside ``_fresh`` is irrelevant then).
        """
        if self.scheduler == "round_robin":
            return self._fresh.popleft()
        if self.scheduler == "lifo":
            return self._fresh.pop()
        index = self.rng.randrange(len(self._fresh))
        if index != len(self._fresh) - 1:
            self._fresh[index], self._fresh[-1] = (self._fresh[-1],
                                                   self._fresh[index])
        return self._fresh.pop()

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RewriteResult:
        """Rewrite fairly until fixpoint or budget; see :class:`Status`.

        ``max_steps`` bounds the number of *invocations attempted* (stale
        pops do not count).  ``None`` means unbounded — only safe on
        systems known to terminate.
        """
        steps = 0
        productive = 0
        by_service: Dict[str, int] = {}
        trace: List[Step] = []
        started = time.perf_counter()
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RUN_STARTED, engine="sequential",
                         documents=sorted(self.system.documents),
                         services=sorted(self.system.services))

        def finish(status: Status) -> RewriteResult:
            result = RewriteResult(status, steps, productive, by_service,
                                   trace, time.perf_counter() - started)
            absorb_rewrite(result)
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.RUN_FINISHED, engine="sequential",
                             status=status.value, steps=steps,
                             productive=productive,
                             seconds=result.duration_seconds)
            return result

        while True:
            # The system terminates exactly when ``_fresh`` is empty: every
            # live call is then in ``_tried`` — nothing changed since each
            # was tried, so re-running any of them would reproduce its no-op.
            # (A plain "streak ≥ queue length" test is only sound for
            # round-robin — LIFO/random can starve calls.)
            if not self._fresh:
                return finish(Status.TERMINATED if not self.suppressed_ids
                              else Status.STABILIZED)
            if max_steps is not None and steps >= max_steps:
                return finish(Status.BUDGET_EXHAUSTED)

            document, node = self._pop()
            service_name = node.marking.name  # type: ignore[union-attr]
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_STARTED,
                             document=document.name, service=service_name,
                             site=node.uid, attempt=1)
            step_started = time.perf_counter()
            try:
                result = invoke(self.system, document, node)
            except StaleCallError:
                self._enqueued_ids.discard(id(node))
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.STALE_CALL,
                                 document=document.name, service=service_name,
                                 site=node.uid)
                continue
            step_seconds = time.perf_counter() - step_started
            steps += 1
            by_service[service_name] = by_service.get(service_name, 0) + 1
            # The call stays live either way: future growth of the documents
            # can make it productive again (the pull mode of Section 2.2).
            if result.changed:
                productive += 1
                self._promote_tried()
                self._enqueue_new_calls(document, result.inserted)
                self._fresh.append((document, node))
            else:
                self._tried.append((document, node))
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_FINISHED,
                             document=document.name, service=service_name,
                             site=node.uid, attempt=1, seconds=step_seconds,
                             answers=len(result.answers))
                if result.changed:
                    obs_bus.emit(
                        obs_events.GRAFT_APPLIED, document=document.name,
                        service=service_name, site=node.uid, step=steps - 1,
                        trees=[graft_record(t) for t in result.inserted])

            step = Step(steps - 1, document.name, service_name,
                        result.changed, result.inserted_count,
                        started=step_started, seconds=step_seconds)
            if self.record_trace:
                trace.append(step)
            if self.on_step is not None:
                self.on_step(step)


def materialize(system: AXMLSystem,
                max_steps: Optional[int] = 100_000,
                scheduler: SchedulerName = "round_robin",
                seed: Optional[int] = None) -> RewriteResult:
    """Convenience wrapper: rewrite ``system`` in place toward ``[I]``.

    Returns the run summary; on :data:`Status.BUDGET_EXHAUSTED` the system
    holds a finite prefix of its (then necessarily infinite or very large)
    semantics.
    """
    engine = RewritingEngine(system, scheduler=scheduler, seed=seed)
    return engine.run(max_steps=max_steps)


def materialize_excluding(system: AXMLSystem, suppressed: Iterable[Node],
                          max_steps: Optional[int] = 100_000,
                          scheduler: SchedulerName = "round_robin",
                          seed: Optional[int] = None) -> RewriteResult:
    """Compute ``[I↓N]`` in place: fair for every call outside ``suppressed``."""
    engine = RewritingEngine(system, scheduler=scheduler, seed=seed,
                             suppressed=suppressed)
    return engine.run(max_steps=max_steps)
