"""The directive-based ``.axml`` system format, parseable outside the CLI.

A system file interleaves ``@document NAME`` and ``@service NAME``
sections; ``%`` starts a comment to end of line.  Document bodies are
compact-syntax trees, service bodies are positive rules (several rules
separated by ``;`` build a :class:`~paxml.system.service.
UnionQueryService`).

Extracted from ``paxml.cli`` so the serve layer can accept system text
over the wire: the CLI's parse errors are ``SystemExit`` subclasses that
print to stderr, which a long-lived server must never raise on behalf of
one misbehaving client.  Errors here are plain :class:`SystemFileError`
values carrying the message.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tree.parser import ParseError
from .service import QueryService, UnionQueryService
from .system import AXMLSystem


class SystemFileError(ValueError):
    """The ``.axml`` text is malformed (syntax, duplicates, validation)."""


def parse_system_text(text: str, filename: str = "<input>") -> AXMLSystem:
    """Parse the directive-based ``.axml`` format into a fresh system."""
    sections: List[Tuple[str, str, List[str]]] = []  # (kind, name, lines)
    current: Optional[Tuple[str, str, List[str]]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("%", 1)[0].rstrip() if "%" in raw else raw.rstrip()
        stripped = line.strip()
        if stripped.startswith("@"):
            parts = stripped[1:].split()
            if len(parts) != 2 or parts[0] not in ("document", "service"):
                raise SystemFileError(
                    f"{filename}:{lineno}: expected '@document NAME' or "
                    f"'@service NAME', got {stripped!r}"
                )
            current = (parts[0], parts[1], [])
            sections.append(current)
        elif stripped:
            if current is None:
                raise SystemFileError(
                    f"{filename}:{lineno}: content before the first directive"
                )
            current[2].append(line)
    documents: Dict[str, str] = {}
    services: Dict[str, object] = {}
    for kind, name, lines in sections:
        body = "\n".join(lines).strip()
        if not body:
            raise SystemFileError(f"{filename}: @{kind} {name} has no body")
        try:
            if kind == "document":
                if name in documents:
                    raise SystemFileError(
                        f"{filename}: duplicate document {name!r}")
                documents[name] = body
            else:
                if name in services:
                    raise SystemFileError(
                        f"{filename}: duplicate service {name!r}")
                services[name] = (UnionQueryService.parse(name, body)
                                  if ";" in body
                                  else QueryService.parse(name, body))
        except ParseError as exc:
            raise SystemFileError(
                f"{filename}: in @{kind} {name}: {exc}") from None
    try:
        return AXMLSystem.build(documents=documents, services=services)
    except ValueError as exc:
        raise SystemFileError(f"{filename}: {exc}") from None
