"""Web services: the ``I(f)`` side of a monotone AXML system (Section 2.2).

Three kinds of services are supported:

* :class:`QueryService` — the positive services of Section 3: one positive
  query, evaluated under snapshot semantics at every invocation;
* :class:`UnionQueryService` — a finite union of positive queries.  The
  paper defines ``I(f)`` as a single rule; unions are expressible in the
  model through auxiliary documents holding one call per rule, so allowing
  them directly is a conservative convenience (unions of monotone queries
  are monotone).  The ψ translation of Proposition 5.1 uses this to keep
  one state-propagation service per regex instead of one per NFA move;
* :class:`BlackBoxService` — an arbitrary Python callable wrapped as a
  monotone service, for the "black-box" view of Section 2.2 (we cannot
  check monotonicity in general; a debug mode spot-checks it on the
  observed sequence of invocations, which *is* a chain under ⊆).

A service is evaluated against an *environment*: a mapping from document
names — the system's names plus the reserved ``input`` and ``context`` — to
tree roots.  It returns a :class:`~paxml.tree.document.Forest`; callers copy
the forest's trees before grafting them into documents.
"""

from __future__ import annotations

import abc
from typing import (Callable, Dict, Hashable, Iterable, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from .. import perf
from ..query.incremental import IncrementalQueryEvaluator
from ..query.matching import evaluate_snapshot
from ..query.parser import parse_queries, parse_query
from ..query.rule import PositiveQuery
from ..tree.document import CONTEXT, INPUT, Forest
from ..tree.node import Node
from ..tree.subsumption import forest_subsumed

Environment = Mapping[str, Node]


class Service(abc.ABC):
    """A named, *monotone* function from document assignments to forests."""

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"service name must be a non-empty string, got {name!r}")
        self.name = name

    @abc.abstractmethod
    def evaluate(self, environment: Environment) -> Forest:
        """Apply the service; must not mutate the environment's trees."""

    def evaluate_delta(self, environment: Environment,
                       site: Optional[Hashable]) -> Forest:
        """Answers not yet delivered to ``site`` (the engine's fast path).

        ``site`` is a stable identity for the invoking call node.  The
        contract is *delta semantics*: the union of all forests returned
        for one site equals (up to reduction) the full snapshot answer on
        the latest environment.  The default implementation is the trivial
        delta — the full answer every time — which is always correct
        because grafting drops already-delivered answers by subsumption.
        Positive services override this with cached semi-naive evaluation.
        """
        return self.evaluate(environment)

    @abc.abstractmethod
    def reads_documents(self) -> Set[str]:
        """Document names the service depends on (``input``/``context`` included)."""

    @abc.abstractmethod
    def emits_functions(self) -> Set[str]:
        """Function names that may occur in answers (for the dependency graph)."""

    @property
    def uses_context(self) -> bool:
        return CONTEXT in self.reads_documents()

    @property
    def uses_input(self) -> bool:
        return INPUT in self.reads_documents()

    @property
    def is_positive(self) -> bool:
        """True when the definition is a known positive query (Section 3)."""
        return False

    @property
    def is_simple(self) -> bool:
        """True when defined by simple queries only (no tree variables)."""
        return False

    # -- checkpointing --------------------------------------------------

    def export_site_cutoffs(self) -> List[Tuple[int, Hashable, int]]:
        """Incremental ``(rule_index, site, cutoff)`` triples to persist.

        Empty by default (only positive services carry incremental site
        state, and sites of ``input``-reading rules are withheld: their
        cached environment includes the per-call input tree, whose node
        identity does not survive a process boundary).
        """
        return []

    def restore_site_cutoff(self, rule_index: int, site: Hashable,
                            cutoff: int, doc_uids: Dict[str, int]) -> None:
        """Re-seed one site's incremental state from a checkpoint."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class QueryService(Service):
    """A positive service: ``I(f)`` is one positive query (Section 3.2)."""

    def __init__(self, name: str, query: PositiveQuery):
        super().__init__(name)
        self.query = query
        self._incremental = IncrementalQueryEvaluator(query)

    @classmethod
    def parse(cls, name: str, text: str) -> "QueryService":
        return cls(name, parse_query(text, name=name))

    def evaluate(self, environment: Environment) -> Forest:
        return evaluate_snapshot(self.query, environment)

    def evaluate_delta(self, environment: Environment,
                       site: Optional[Hashable]) -> Forest:
        return self._incremental.evaluate_delta(environment, site)

    def reads_documents(self) -> Set[str]:
        return self.query.document_names()

    def emits_functions(self) -> Set[str]:
        return self.query.head_function_names()

    @property
    def is_positive(self) -> bool:
        return True

    @property
    def is_simple(self) -> bool:
        return self.query.is_simple

    @property
    def queries(self) -> List[PositiveQuery]:
        return [self.query]

    def export_site_cutoffs(self) -> List[Tuple[int, Hashable, int]]:
        if INPUT in self.query.document_names():
            return []
        return [(0, site, cutoff)
                for site, cutoff in self._incremental.export_cutoffs().items()]

    def restore_site_cutoff(self, rule_index: int, site: Hashable,
                            cutoff: int, doc_uids: Dict[str, int]) -> None:
        self._incremental.restore_cutoff(site, cutoff, doc_uids)

    def __repr__(self) -> str:
        return f"QueryService({self.name!r}: {self.query})"


class UnionQueryService(Service):
    """A service defined by a finite union of positive queries."""

    def __init__(self, name: str, queries: Sequence[PositiveQuery]):
        super().__init__(name)
        if not queries:
            raise ValueError("a union service needs at least one rule")
        self.queries: List[PositiveQuery] = list(queries)
        # rule_index feeds provenance: a graft traced back to this service
        # names which rule of the union produced it.
        self._incremental = [IncrementalQueryEvaluator(q, rule_index=i)
                             for i, q in enumerate(self.queries)]

    @classmethod
    def parse(cls, name: str, text: str) -> "UnionQueryService":
        return cls(name, parse_queries(text, name=name))

    def evaluate(self, environment: Environment) -> Forest:
        result = Forest.empty()
        for index, query in enumerate(self.queries):
            result = result.union(
                evaluate_snapshot(query, environment, rule_index=index))
        return result

    def evaluate_delta(self, environment: Environment,
                       site: Optional[Hashable]) -> Forest:
        # Per-rule deltas; cross-rule redundancy is left to the graft's
        # antichain insertion (unions of correct deltas are correct deltas).
        trees: List[Node] = []
        for evaluator in self._incremental:
            trees.extend(evaluator.evaluate_delta(environment, site).trees)
        return Forest(trees)

    def reads_documents(self) -> Set[str]:
        names: Set[str] = set()
        for query in self.queries:
            names |= query.document_names()
        return names

    def emits_functions(self) -> Set[str]:
        names: Set[str] = set()
        for query in self.queries:
            names |= query.head_function_names()
        return names

    @property
    def is_positive(self) -> bool:
        return True

    @property
    def is_simple(self) -> bool:
        return all(query.is_simple for query in self.queries)

    def export_site_cutoffs(self) -> List[Tuple[int, Hashable, int]]:
        triples: List[Tuple[int, Hashable, int]] = []
        for index, evaluator in enumerate(self._incremental):
            if INPUT in self.queries[index].document_names():
                continue
            triples.extend((index, site, cutoff) for site, cutoff
                           in evaluator.export_cutoffs().items())
        return triples

    def restore_site_cutoff(self, rule_index: int, site: Hashable,
                            cutoff: int, doc_uids: Dict[str, int]) -> None:
        if 0 <= rule_index < len(self._incremental):
            self._incremental[rule_index].restore_cutoff(site, cutoff,
                                                         doc_uids)

    def __repr__(self) -> str:
        return f"UnionQueryService({self.name!r}: {len(self.queries)} rules)"


class BlackBoxService(Service):
    """An opaque monotone service — the Section 2.2 black-box view.

    ``fn`` receives the environment and returns a :class:`Forest` (or an
    iterable of :class:`Node`).  ``reads`` and ``emits`` declare the
    dependency edges of Definition 3.2; they default to "reads input and
    context, emits nothing".

    With ``check_monotone=True`` every result is checked to subsume the
    previous result *of the same call site environment chain*: successive
    invocations observe growing documents, so results must grow too.
    Violations raise :class:`MonotonicityError` — the paper's model simply
    excludes such services.
    """

    def __init__(self, name: str,
                 fn: Callable[[Environment], "Forest | Iterable[Node]"],
                 reads: Iterable[str] = (INPUT, CONTEXT),
                 emits: Iterable[str] = (),
                 check_monotone: bool = False,
                 assume_reduced: bool = False):
        super().__init__(name)
        self.fn = fn
        self._reads = set(reads)
        self._emits = set(emits)
        self.check_monotone = check_monotone
        self.assume_reduced = assume_reduced
        self._last_result: Optional[Forest] = None

    def evaluate(self, environment: Environment) -> Forest:
        raw = self.fn(environment)
        result = raw if isinstance(raw, Forest) else Forest(raw)
        if not self.assume_reduced:
            result = result.reduced()
        if self.check_monotone and self._last_result is not None:
            if not forest_subsumed(self._last_result.trees, result.trees):
                raise MonotonicityError(
                    f"service {self.name!r} shrank its answer between two "
                    "invocations; monotone AXML requires growing answers"
                )
        if self.check_monotone:
            self._last_result = result
        return result

    def reads_documents(self) -> Set[str]:
        return set(self._reads)

    def emits_functions(self) -> Set[str]:
        return set(self._emits)


class MonotonicityError(RuntimeError):
    """A black-box service violated the monotonicity contract."""


def constant_service(name: str, forest: Forest) -> BlackBoxService:
    """A service returning a fixed forest regardless of its arguments.

    The forest is reduced once at construction and every call shares the
    frozen result — no per-call copy, no per-call re-reduction.  Sharing
    is safe because grafting copies each answer tree before inserting it
    (services must return forests the caller may not mutate, which the
    engines already guarantee through :func:`graft_answers`).
    """
    frozen = forest.reduced()

    def deliver(_env: Environment) -> Forest:
        perf.stats.constant_calls_shared += 1
        return frozen

    return BlackBoxService(name, deliver, reads=(), assume_reduced=True)
