"""Single service-call invocation semantics (Section 2.2).

Invoking a function node ``v`` marked ``f``:

1. bind the reserved names — ``θ(input)`` is a fresh ``input``-rooted tree
   over copies of ``v``'s parameter subtrees, ``θ(context)`` is the subtree
   rooted at ``v``'s parent — and bind each declared document name to its
   current tree;
2. evaluate ``I(f)`` on θ, obtaining a forest;
3. graft (copies of) the forest's trees as *siblings of v*, then reduce.

The grafting step keeps the "documents stay reduced" invariant
incrementally: each answer is inserted into the antichain of the parent's
children (dropping it when an existing sibling subsumes it, evicting
siblings it subsumes), and the parent's growth is propagated up the
ancestor chain.  The step is *productive* — ``I →v I'`` with ``I ≢ I'`` —
exactly when at least one answer strictly enlarged the parent's subtree,
which the antichain insertion detects for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import perf
from ..tree import index as tree_index
from ..tree import store as tree_store
from ..tree.antichain import BitsetAntichain
from ..tree.document import CONTEXT, INPUT, Document, Forest
from ..tree.node import Label, Node
from ..tree.reduction import antichain_insert
from ..tree.subsumption import is_subsumed
from .system import AXMLSystem


class StaleCallError(RuntimeError):
    """The call node is no longer part of its document.

    Reduction may prune a call node when a sibling subtree subsumes the
    subtree containing it; the rewriting engine treats such nodes as gone.
    """


@dataclass
class InvocationResult:
    """Outcome of one invocation.

    ``answers`` carries what the service *delivered* for this invocation —
    under the incremental engine that is the delta since the site's previous
    invocation (the full snapshot answer on a first invocation), which is
    exactly what grafting needs: answers delivered earlier are already in
    the document or subsumed by it.
    """

    changed: bool
    answers: Forest
    inserted: List[Node] = field(default_factory=list)

    @property
    def inserted_count(self) -> int:
        return len(self.inserted)


def find_path(root: Node, target: Node) -> Optional[List[Node]]:
    """The root-to-target node path (inclusive), or None if unreachable.

    An O(depth) walk up the target's parent pointers, verifying at each hop
    that the node is still among its recorded parent's children — reduction
    evicts pruned subtrees from the child list but leaves their (now stale)
    parent pointers behind, so the membership check is what detects a node
    that is no longer part of the tree.
    """
    path = [target]
    node = target
    while node is not root:
        parent = node.parent
        if parent is None or node not in parent.children:
            return None
        path.append(parent)
        node = parent
    path.reverse()
    return path


def build_input_tree(call_node: Node) -> Node:
    """``θ(input)``: an ``input``-rooted tree over copies of the parameters."""
    return Node(Label(INPUT), [child.copy() for child in call_node.children])


# ``θ(input)`` cache: the input tree depends only on the call's parameter
# subtrees, whose joint state the call node's version stamp captures.
# Reusing one tree object while the parameters are unchanged is what lets
# the incremental matcher see ``input``-atoms as *unchanged* across
# re-invocations (a rebuilt copy would consist of brand-new nodes and force
# a full re-match every time).
_INPUT_CACHE: Dict[int, Tuple[int, Node]] = {}
_INPUT_CACHE_MAX = 100_000


def _input_tree_for(call_node: Node) -> Node:
    entry = _INPUT_CACHE.get(call_node.uid)
    if entry is not None and entry[0] == call_node.version:
        perf.stats.input_tree_hits += 1
        return entry[1]
    perf.stats.input_tree_misses += 1
    tree = build_input_tree(call_node)
    if len(_INPUT_CACHE) >= _INPUT_CACHE_MAX:
        _INPUT_CACHE.clear()
    _INPUT_CACHE[call_node.uid] = (call_node.version, tree)
    return tree


perf.register_cache(_INPUT_CACHE.clear)


def call_path(document: Document, call_node: Node) -> List[Node]:
    """Locate a live call node; raises :class:`StaleCallError` otherwise."""
    if not call_node.is_function:
        raise TypeError(f"{call_node!r} is not a function node")
    path = find_path(document.root, call_node)
    if path is None:
        raise StaleCallError(
            f"call !{call_node.marking.name} is no longer part of "  # type: ignore[union-attr]
            f"document {document.name!r}"
        )
    if len(path) < 2:
        # Cannot happen for validated documents: roots are never function
        # nodes (Definition 2.1(ii)).
        raise StaleCallError("a document root cannot be invoked")
    return path


def evaluate_call(system: AXMLSystem, call_node: Node, parent: Node) -> Forest:
    """Steps 1–2 of an invocation: bind θ and evaluate the service."""
    service = system.services[call_node.marking.name]  # type: ignore[union-attr]
    environment: Dict[str, Node] = dict(system.environment())
    environment[INPUT] = build_input_tree(call_node)
    environment[CONTEXT] = parent
    answers = service.evaluate(environment)
    _validate_answers(service.name, answers)
    return answers


def evaluate_call_delta(system: AXMLSystem, call_node: Node,
                        parent: Node) -> Forest:
    """Like :func:`evaluate_call` but with *delta* semantics per call site.

    Returns only answers not previously delivered for this call node (all
    of them on the first invocation); see :meth:`Service.evaluate_delta`.
    """
    service = system.services[call_node.marking.name]  # type: ignore[union-attr]
    environment: Dict[str, Node] = dict(system.environment())
    environment[INPUT] = _input_tree_for(call_node)
    environment[CONTEXT] = parent
    answers = service.evaluate_delta(environment, site=call_node.uid)
    _validate_answers(service.name, answers)
    return answers


def _validate_answers(service_name: str, answers: Forest) -> None:
    for answer in answers:
        if answer.is_function:
            raise ValueError(
                f"service {service_name!r} returned a tree rooted at a call "
                "node; answers must be documents (Def. 2.1(ii))"
            )


def graft_trees(path: List[Node], trees: List[Node]) -> List[Node]:
    """Insert ``trees`` as siblings of the call at ``path[-1]``.

    Thin call-site spelling of :func:`graft_under`: the grafts become
    children of the call's parent, so the call node itself is sliced off
    the path before delegating.
    """
    return graft_under(path[:-1], trees)


def graft_under(parent_path: List[Node], trees: List[Node]) -> List[Node]:
    """The single graft mutation primitive: insert ``trees`` as children
    of ``parent_path[-1]``, *without copying them first*.

    ``parent_path`` is the root-to-parent node path (inclusive).  Every
    document mutation during a run flows through here — the engines via
    :meth:`paxml.kernel.EvaluationKernel.apply_graft` (which adds event
    emission and graft logging on top), external injections via
    :meth:`paxml.kernel.EvaluationKernel.apply_external` (the serve
    layer's client-driven grafts), checkpoint replay directly (its
    wire-restored trees must keep their original uids, so no copy).
    Owning the PR 4 index maintenance (``note_graft``) and the
    reduced-invariant restoration in one place is what keeps them wired
    exactly once.
    """
    parent = parent_path[-1]
    inserted: List[Node] = []
    if perf.flags.columnar_store and len(trees) > 1 and len(parent.children) >= 32:
        # Batch graft against a wide sibling set: index the (already
        # reduced) children once, then each insert touches only the
        # bitset-posting candidates instead of scanning every sibling.
        sibling_index = BitsetAntichain.from_antichain(parent.children)
        before = len(parent.children)
        for graft in trees:
            if sibling_index.insert(graft):
                graft.parent = parent
                inserted.append(graft)
        if inserted or len(sibling_index) != before:
            parent.children[:] = sibling_index.items()
    else:
        for graft in trees:
            if antichain_insert(parent.children, graft):
                graft.parent = parent
                inserted.append(graft)
    if inserted:
        # Pre-touch versions let the columnar store distinguish rows that
        # were current before this graft (patchable in place) from rows an
        # earlier untracked mutation already staled (healed at read time).
        pre_versions = ([node.version for node in parent_path]
                        if perf.flags.columnar_store else None)
        # One stamp for the whole graft batch: every ancestor's subtree
        # gained content, which is what delta matching keys on.
        parent.touch()
        tree_index.note_graft(parent, inserted)
        if pre_versions is not None:
            tree_store.note_graft(parent_path, inserted, pre_versions)
        _propagate_growth(parent_path)
    return inserted


def graft_answers(path: List[Node], answers: Forest) -> List[Node]:
    """Step 3: graft answer copies as siblings of the call at ``path[-1]``.

    Returns the trees actually inserted (answers subsumed by existing
    siblings are dropped, exactly as reduction would drop them).
    """
    return graft_trees(path, [answer.copy() for answer in answers])


def new_answers(parent: Node, answers: Forest) -> List[Node]:
    """The answers that *would* be inserted, without mutating anything."""
    return [
        answer for answer in answers
        if not any(is_subsumed(answer, sibling) for sibling in parent.children)
    ]


def invoke(system: AXMLSystem, document: Document, call_node: Node) -> InvocationResult:
    """Invoke one service call in place; see the module docstring.

    Raises :class:`StaleCallError` when the node was pruned away and
    :class:`KeyError` when the call names an undeclared service.
    """
    path = call_path(document, call_node)
    answers = evaluate_call_delta(system, call_node, path[-2])
    inserted = graft_answers(path, answers)
    return InvocationResult(changed=bool(inserted), answers=answers, inserted=inserted)


def _propagate_growth(parent_path: List[Node]) -> None:
    """Restore the reduced invariant along the ancestor chain.

    Exactly one child of each ancestor grew (the next node on the path;
    ``parent_path[-1]`` is the node that gained children).  A grown
    subtree can newly *dominate* siblings but can never become
    dominated (it was maximal among its siblings and only gained content),
    so at every level it suffices to delete siblings the grown child now
    subsumes.  Every ancestor must be checked — a subtree growing deep down
    can make siblings arbitrarily high up redundant.
    """
    for depth in range(len(parent_path) - 1, 0, -1):
        ancestor, grown = parent_path[depth - 1], parent_path[depth]
        survivors = [
            child for child in ancestor.children
            if child is grown or not is_subsumed(child, grown)
        ]
        if len(survivors) != len(ancestor.children):
            ancestor.children = survivors
            tree_store.note_prune(ancestor)
