"""Dependency graphs and acyclic systems (Definition 3.2).

Vertices are document and function names.  Edges:

* ``(d, f)`` when a call to ``f`` occurs in document ``d``;
* ``(f, d)`` when service ``f`` reads document ``d``;
* ``(f, g)`` when ``g`` occurs in the definition of ``f`` (read in a body
  pattern or emitted by the head).

A system is *acyclic* when this graph is.  Acyclic systems always terminate
and each call need only fire once, in topological order — the property the
fire-once semantics (:mod:`paxml.system.fire_once`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..tree.document import CONTEXT, INPUT, RESERVED_NAMES
from .service import QueryService, Service, UnionQueryService
from .system import AXMLSystem


@dataclass
class DependencyGraph:
    """The dependency graph of a system, with SCC-based cycle analysis."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    documents: Set[str] = field(default_factory=set)
    functions: Set[str] = field(default_factory=set)

    def add_edge(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)
        self.edges.setdefault(dst, set())

    def successors(self, vertex: str) -> Set[str]:
        return self.edges.get(vertex, set())

    # ------------------------------------------------------------------
    # cycle analysis
    # ------------------------------------------------------------------

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan's algorithm, iterative (graphs can be deep)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = [0]

        for start in sorted(self.edges):
            if start in index:
                continue
            work: List[Tuple[str, int]] = [(start, 0)]
            while work:
                vertex, child_index = work[-1]
                if child_index == 0:
                    index[vertex] = lowlink[vertex] = counter[0]
                    counter[0] += 1
                    stack.append(vertex)
                    on_stack.add(vertex)
                successors = sorted(self.successors(vertex))
                advanced = False
                for position in range(child_index, len(successors)):
                    successor = successors[position]
                    if successor not in index:
                        work[-1] = (vertex, position + 1)
                        work.append((successor, 0))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[vertex] = min(lowlink[vertex], index[successor])
                if advanced:
                    continue
                if lowlink[vertex] == index[vertex]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == vertex:
                            break
                    components.append(component)
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[vertex])
        return components

    def cyclic_vertices(self) -> Set[str]:
        """Vertices on some cycle: non-singleton SCCs plus self-loops."""
        cyclic: Set[str] = set()
        for component in self.strongly_connected_components():
            if len(component) > 1:
                cyclic.update(component)
            else:
                vertex = component[0]
                if vertex in self.successors(vertex):
                    cyclic.add(vertex)
        return cyclic

    @property
    def is_acyclic(self) -> bool:
        return not self.cyclic_vertices()

    def topological_order(self) -> List[str]:
        """A topological order (dependencies first); raises if cyclic."""
        if not self.is_acyclic:
            raise ValueError("the dependency graph is cyclic")
        order: List[str] = []
        seen: Set[str] = set()

        def visit(vertex: str) -> None:
            if vertex in seen:
                return
            seen.add(vertex)
            for successor in sorted(self.successors(vertex)):
                visit(successor)
            order.append(vertex)

        for vertex in sorted(self.edges):
            visit(vertex)
        return order  # dependencies come before dependents

    def recursive_functions(self) -> Set[str]:
        """Functions that (transitively) depend on a cycle.

        These are the calls the fire-once semantics never fires: their
        snapshot can keep improving, so the system is never stable for
        them (Section 4, "Fire-once semantics").
        """
        cyclic = self.cyclic_vertices()
        if not cyclic:
            return set()
        # A function is tainted when it can reach a cyclic vertex.
        tainted: Set[str] = set(cyclic)
        changed = True
        while changed:
            changed = False
            for src, dsts in self.edges.items():
                if src not in tainted and dsts & tainted:
                    tainted.add(src)
                    changed = True
        return tainted & self.functions


def _param_dependencies(system: AXMLSystem, fname: str) -> Set[str]:
    """Functions that can occur inside the parameters of an ``fname`` call.

    Scans actual call nodes in documents and call *patterns* in rule
    heads.  A tree or function variable inside head parameters can smuggle
    in arbitrary calls, so those degrade conservatively to "all services".
    """
    from ..query.pattern import PatternNode
    from ..query.variables import FunVar, TreeVar
    from ..tree.node import FunName

    targets: Set[str] = set()
    for document in system.documents.values():
        for node in document.root.function_nodes():
            if node.marking.name == fname:  # type: ignore[union-attr]
                for param in node.children:
                    targets.update(
                        inner.marking.name  # type: ignore[union-attr]
                        for inner in param.iter_nodes() if inner.is_function
                    )
    for service in system.services.values():
        if not isinstance(service, (QueryService, UnionQueryService)):
            targets.update(system.services)  # black box: anything possible
            continue
        for query in service.queries:
            for pnode in query.head.iter_nodes():
                if isinstance(pnode.spec, FunName) and pnode.spec.name == fname:
                    for param in pnode.children:
                        for inner in param.iter_nodes():
                            if isinstance(inner.spec, FunName):
                                targets.add(inner.spec.name)
                            elif isinstance(inner.spec, (FunVar, TreeVar)):
                                targets.update(system.services)
    return targets


def dependency_graph(system: AXMLSystem) -> DependencyGraph:
    """Build the Definition 3.2 graph for a system.

    One necessary strengthening over the paper's literal definition: a
    service reading ``context`` (or ``input``) observes part of whichever
    document hosts its calls, so it depends on every document that *may
    contain* a call to it — directly, or through answers of services that
    emit such calls.  Without this, Example 3.3 (which reads only
    ``context``) would count as acyclic yet diverge, contradicting the
    "acyclic systems always terminate" claim the definition exists for.
    """
    graph = DependencyGraph()
    graph.documents = set(system.documents)
    graph.functions = set(system.services)
    for name in list(system.documents) + list(system.services):
        graph.edges.setdefault(name, set())
    may_contain: Dict[str, Set[str]] = {name: set() for name in system.documents}
    for document in system.documents.values():
        for node in document.root.function_nodes():
            graph.add_edge(document.name, node.marking.name)  # type: ignore[union-attr]
            may_contain[document.name].add(node.marking.name)  # type: ignore[union-attr]
    # Close may-contain under service answers: answers of h are grafted
    # into any document hosting an h-call, carrying h's emitted calls.
    changed = True
    while changed:
        changed = False
        for doc_name, hosted in may_contain.items():
            for hosted_name in list(hosted):
                emitted = system.services[hosted_name].emits_functions()
                if not emitted <= hosted:
                    hosted |= emitted
                    changed = True
    for service in system.services.values():
        reads = service.reads_documents()
        for read in reads - RESERVED_NAMES:
            graph.add_edge(service.name, read)
        if CONTEXT in reads:
            # The context is part of whichever document hosts the call.
            for doc_name, hosted in may_contain.items():
                if service.name in hosted:
                    graph.add_edge(service.name, doc_name)
        if INPUT in reads:
            # The input is the call's parameter forest: it grows only
            # through calls *inside the parameters*, so f depends on the
            # functions occurring there (in documents and in rule heads).
            for target in _param_dependencies(system, service.name):
                graph.add_edge(service.name, target)
        for emitted in service.emits_functions():
            graph.add_edge(service.name, emitted)
        # Functions *matched* in body patterns are dependencies too: the
        # definition of f mentions g.
        if isinstance(service, (QueryService, UnionQueryService)):
            for query in service.queries:
                for mentioned in query.function_names():
                    graph.add_edge(service.name, mentioned)
    return graph


def is_acyclic(system: AXMLSystem) -> bool:
    """Acyclic systems always terminate (Section 3.2)."""
    return dependency_graph(system).is_acyclic
