"""Monotone AXML systems, invocation semantics, and rewriting (Section 2–3)."""

from .dependency import DependencyGraph, dependency_graph, is_acyclic
from .fire_once import FireOnceResult, fire_once
from .invocation import (
    InvocationResult,
    StaleCallError,
    build_input_tree,
    call_path,
    evaluate_call,
    find_path,
    graft_answers,
    graft_trees,
    graft_under,
    invoke,
    new_answers,
)
from .rewriting import (
    RewriteResult,
    RewritingEngine,
    Status,
    Step,
    materialize,
    materialize_excluding,
)
from .service import (
    BlackBoxService,
    MonotonicityError,
    QueryService,
    Service,
    UnionQueryService,
    constant_service,
)
from .system import AXMLSystem, SystemValidationError

__all__ = [
    "AXMLSystem",
    "BlackBoxService",
    "DependencyGraph",
    "FireOnceResult",
    "InvocationResult",
    "MonotonicityError",
    "QueryService",
    "RewriteResult",
    "RewritingEngine",
    "Service",
    "StaleCallError",
    "Status",
    "Step",
    "SystemValidationError",
    "UnionQueryService",
    "build_input_tree",
    "call_path",
    "constant_service",
    "dependency_graph",
    "evaluate_call",
    "find_path",
    "fire_once",
    "graft_answers",
    "graft_trees",
    "graft_under",
    "invoke",
    "new_answers",
    "is_acyclic",
    "materialize",
    "materialize_excluding",
]
