"""Fire-once semantics (Section 4, last subsection).

Under the fire-once regime each service call is invoked *at most once*,
returning a single answer — the behaviour of ordinary request/response Web
services, as opposed to the paper's default stream-of-invocations model.
A call may only fire when the system is *stable for its query*: the answer
it would compute can no longer improve.

The stability oracle used here is the dependency-graph approximation
(sound, PTIME): a call to ``f`` is fireable once every function ``f``
transitively depends on has finished firing, and never fireable when ``f``
depends on a dependency cycle (its snapshot could keep improving, so
stability is never reached).  Consequences, both demonstrated in
experiment E11:

* on acyclic systems, fire-once and the positive semantics coincide
  (Section 4: "In restricted cases, e.g., acyclic systems, the fire-once
  and the positive semantics coincide");
* on Example 3.2, the recursive transitive-closure rule never fires and
  fire-once computes strictly less than ``[I]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..tree.document import Document
from ..tree.node import Node
from .dependency import DependencyGraph, dependency_graph
from .invocation import StaleCallError, invoke
from .system import AXMLSystem


@dataclass
class FireOnceResult:
    """Summary of a fire-once run (the system was rewritten in place)."""

    fired: int
    skipped_recursive: Set[str] = field(default_factory=set)
    order: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when no call was withheld — the run computed ``[I]``."""
        return not self.skipped_recursive


def fire_once(system: AXMLSystem, max_rounds: int = 10_000) -> FireOnceResult:
    """Run the fire-once semantics in place.

    Calls to functions that transitively depend on a dependency cycle are
    never invoked.  Remaining calls fire exactly once each, lowest
    dependency layer first; answers may introduce new calls, which fire (at
    most once) in later rounds.
    """
    graph = dependency_graph(system)
    never_fire = graph.recursive_functions()
    layer_of = _dependency_layers(graph, never_fire)

    fired_ids: Set[int] = set()
    fired_count = 0
    order: List[str] = []

    for _round in range(max_rounds):
        pending = [
            (layer_of.get(node.marking.name, 0), document, node)  # type: ignore[union-attr]
            for document, node in system.call_sites()
            if id(node) not in fired_ids
            and node.marking.name not in never_fire  # type: ignore[union-attr]
        ]
        if not pending:
            break
        pending.sort(key=lambda item: item[0])
        progressed = False
        for _layer, document, node in pending:
            if id(node) in fired_ids:
                continue
            try:
                invoke(system, document, node)
            except StaleCallError:
                continue
            fired_ids.add(id(node))
            fired_count += 1
            order.append(node.marking.name)  # type: ignore[union-attr]
            progressed = True
        if not progressed:
            break
    return FireOnceResult(fired=fired_count, skipped_recursive=never_fire, order=order)


def _dependency_layers(graph: DependencyGraph,
                       never_fire: Set[str]) -> Dict[str, int]:
    """Longest-path layering of the acyclic part of the dependency graph.

    A function's layer exceeds the layers of everything it depends on, so
    sorting calls by layer ascending… fires dependencies first?  No: if
    ``f`` reads ``d`` which contains ``g``, then ``f → d → g`` and ``g``
    must fire *before* ``f``.  Dependencies sit *below* along the edge
    direction, so deeper reachability means firing later; we therefore give
    vertices with no outgoing edges layer 0 and dependents higher layers,
    and fire in ascending layer order — ``g`` (layer 0) before ``f``.
    """
    layers: Dict[str, int] = {}

    def layer(vertex: str, stack: Tuple[str, ...] = ()) -> int:
        if vertex in layers:
            return layers[vertex]
        if vertex in stack or vertex in never_fire:
            # Inside or depending on a cycle — park it at the top; such
            # functions never fire anyway.
            return 0
        successors = graph.successors(vertex)
        value = 0 if not successors else 1 + max(
            layer(successor, stack + (vertex,)) for successor in sorted(successors)
        )
        layers[vertex] = value
        return value

    for name in sorted(graph.functions):
        layer(name)
    return layers
