"""Process-level performance switches and counters for the incremental engine.

The incremental materialization machinery (versioned nodes, the persistent
subsumption cache, cached canonical keys, delta-driven snapshot evaluation)
is soundness-preserving but makes benchmarking against the from-scratch
baseline awkward without a switchboard.  This module is that switchboard:

* :data:`flags` — process-wide enable bits.  Turning a bit off restores the
  seed behaviour of the corresponding subsystem (full recomputation), which
  is what ``BENCH_pr1.json`` measures the speedups against.
* :data:`stats` — cheap monotone counters (cache hits/misses, delta vs full
  evaluations) surfaced by the benchmark harness as hit rates.
* :func:`clear_caches` — drops every process-level cache.  Tests call this
  to check that cached and uncached computations agree.

The unified metrics registry (:mod:`paxml.obs.metrics`) absorbs these
counters by *pull* — it registers ``stats.snapshot`` as a collector — so
the ``stats.x += 1`` hot sites keep their cost and a registry scrape
always sees current values.  The observability bus mirrors its own
emission counts here (``obs_events`` / ``obs_dropped``), which is what
the registry↔perf mirror-consistency tests key on.

This module must stay import-light: ``paxml.tree`` imports it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, FrozenSet, List

# Flags named here (comma-separated) stay OFF even through set_all(True):
# the CI flag-matrix job uses this to run the whole tier-1 suite on the
# oracle paths without editing every fixture that resets the flags.
_ENV_DISABLED: FrozenSet[str] = frozenset(
    name.strip()
    for name in os.environ.get("PAXML_DISABLE_FLAGS", "").split(",")
    if name.strip())


@dataclass
class Flags:
    """Enable bits for the incremental subsystems (all on by default)."""

    subsumption_cache: bool = True   # persistent ((uid, ver), (uid, ver)) memo
    canonical_key_cache: bool = True  # per-node (version, key) memo
    incremental_matching: bool = True  # delta-driven snapshot evaluation
    query_planner: bool = True       # compiled match plans (paxml.query.plan)
    child_index: bool = True         # per-parent marking buckets (paxml.tree.index)
    # Columnar struct-of-arrays node store (paxml.tree.store): flat arrays
    # keyed by uid for labels/values/parents/children/versions plus packed
    # subtree marking bitsets; subsumption candidate filtering compares
    # int bitsets instead of per-node frozensets when this is on.
    columnar_store: bool = True
    # Plan-to-closure compilation (paxml.query.plan): compiled plan steps
    # execute as specialized closures instead of the interpreted
    # ``_match_node`` dispatch.  Off restores the PR 4 plan interpreter.
    closure_compile: bool = True
    # Graft-log retention (paxml.kernel): with the flag off the kernel
    # appends no GraftRecords (PR 4 behaviour, for memory-constrained
    # runs); checkpoints then carry only the fresh document snapshot and
    # cannot be replay-validated.
    graft_log: bool = True
    # Causal tracing (paxml.obs.trace): with the flag off, request
    # admission never mints a TraceContext — the propagation machinery
    # (contextvar reads, site-tag lookups) stays on its None fast path
    # and no span is ever built.  The *rate* of head-based sampling is a
    # per-server knob (ServerOptions.trace_sample_rate, default
    # paxml.obs.trace.DEFAULT_SAMPLE_RATE); this bit is the process-wide
    # kill switch.
    tracing: bool = True
    # Relevance-guided lazy scheduling (paxml.analysis.relevance +
    # paxml.kernel): with the flag off, ``EvaluationKernel.enable_lazy``
    # and ``enable_fire_once`` become no-ops, so every run is eager even
    # when a caller passes ``lazy_for=...`` — the equivalence-oracle
    # configuration.  The bit only matters for callers that opt in; it
    # changes nothing for plain eager runs.
    lazy_scheduling: bool = True

    def set_all(self, enabled: bool) -> None:
        for f in fields(self):
            setattr(self, f.name, enabled and f.name not in _ENV_DISABLED)

    def snapshot(self) -> Dict[str, bool]:
        """The current flag settings as a plain dict (worker-config safe)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def apply(self, settings: Dict[str, bool]) -> None:
        """Restore a :meth:`snapshot`, honouring ``PAXML_DISABLE_FLAGS``.

        Shard workers call this with the coordinator's snapshot so every
        process runs the same configuration *explicitly* — a spawned
        worker starts from a fresh module with default flags, and a
        forked one inherits whatever the parent had mid-run; neither
        ambient state is the contract.  Unknown keys are ignored
        (forward compatibility across mixed versions).
        """
        known = {f.name for f in fields(self)}
        for name, enabled in settings.items():
            if name in known:
                setattr(self, name, bool(enabled) and name not in _ENV_DISABLED)


@dataclass
class Stats:
    """Monotone counters; reset with :meth:`reset`, snapshot with :meth:`snapshot`."""

    subsumption_hits: int = 0
    subsumption_misses: int = 0
    canonical_key_hits: int = 0
    canonical_key_misses: int = 0
    delta_evaluations: int = 0
    full_evaluations: int = 0
    input_tree_hits: int = 0
    input_tree_misses: int = 0
    # Query-compiler counters (paxml.query.plan): plans built, evaluations
    # routed through a plan, and constant-subpattern subsumption shortcuts.
    plan_compilations: int = 0
    planned_evaluations: int = 0
    planned_delta_evaluations: int = 0
    const_subpattern_tests: int = 0
    # Child-index counters (paxml.tree.index): bucket lookups answered from
    # a live entry vs rebuilt, in-place patches on the graft path, and
    # value-probe lookups that narrowed a sibling join.
    index_hits: int = 0
    index_misses: int = 0
    index_graft_patches: int = 0
    probe_lookups: int = 0
    # Subsumption early rejects: recursive searches skipped because a child
    # marking of the candidate has no counterpart bucket in the target.
    subsumption_early_rejects: int = 0
    # Mirrored headline counters of the async runtime (paxml.runtime):
    # attempts started, retries scheduled, per-attempt timeouts, and
    # circuit-breaker trips, accumulated across runs in this process.
    async_attempts: int = 0
    async_retries: int = 0
    async_timeouts: int = 0
    async_circuit_trips: int = 0
    # Mirrored observability-bus counters (paxml.obs.bus): events emitted
    # while tracing was on, and subscriber errors swallowed.
    obs_events: int = 0
    obs_dropped: int = 0
    # Evaluation-kernel counters (paxml.kernel): graft-log records
    # retained, checkpoint bundles written, kernels resumed from a
    # bundle, and incremental site cutoffs restored on resume.
    graft_log_records: int = 0
    checkpoints_written: int = 0
    kernel_resumes: int = 0
    site_cutoffs_restored: int = 0
    # Shared-forest fast path of ``constant_service``: calls answered by
    # returning the frozen reduced forest without copying or re-reducing.
    constant_calls_shared: int = 0
    # Columnar-store counters (paxml.tree.store): subtree re-indexes forced
    # by a stale row (untracked mutation healed at read time), in-place
    # graft-path patches, candidate pairs rejected by a packed-bitset
    # subset test, and store rows materialized back into Node facades.
    store_rebuild_patches: int = 0
    store_graft_patches: int = 0
    bitset_rejects: int = 0
    facade_materializations: int = 0
    # Closure-compilation counter (paxml.query.plan): plans lowered to
    # specialized closures (once per plan, on first closure execution).
    closure_compilations: int = 0
    # Causal-tracing counters (paxml.obs.trace): head-sampling decisions
    # at request admission, finished spans dispatched to sinks, and
    # sessions the serve watchdog flagged as stalled.
    trace_requests_sampled: int = 0
    trace_requests_unsampled: int = 0
    trace_spans: int = 0
    watchdog_stalls: int = 0
    # Shard-layer counters (paxml.shard): packed graft batches encoded and
    # their total bytes (the PXG1 codec, also used by checkpoint bundles),
    # records shipped to / applied from peers, cross-shard routed calls,
    # and BSP replication rounds driven to completion.
    graft_batches_encoded: int = 0
    graft_batch_bytes: int = 0
    shard_records_shipped: int = 0
    shard_records_applied: int = 0
    shard_remote_calls: int = 0
    shard_rounds: int = 0
    # Lazy-scheduling counters (paxml.kernel.scheduler): call sites parked
    # dormant because no registered query can benefit from them, dormant
    # sites promoted back to fresh by a graft or reseed, and sites retired
    # outright by the fire-once policy.
    calls_skipped_unneeded: int = 0
    dormant_promotions: int = 0
    fire_once_retired: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def hit_rates(self) -> Dict[str, float]:
        return {
            "subsumption_cache": self._rate(self.subsumption_hits,
                                            self.subsumption_misses),
            "canonical_key_cache": self._rate(self.canonical_key_hits,
                                              self.canonical_key_misses),
            "input_tree_cache": self._rate(self.input_tree_hits,
                                           self.input_tree_misses),
            "child_index": self._rate(self.index_hits, self.index_misses),
        }


flags = Flags()
flags.set_all(True)  # apply any PAXML_DISABLE_FLAGS to the defaults
stats = Stats()

# Cache-clearing callbacks registered by the modules that own caches; kept as
# callbacks so this module never imports them (no cycles).
_cache_clearers: List[Callable[[], None]] = []


def register_cache(clearer: Callable[[], None]) -> None:
    _cache_clearers.append(clearer)


def clear_caches() -> None:
    """Drop every registered process-level cache (stats are kept)."""
    for clearer in _cache_clearers:
        clearer()


def incremental_enabled() -> bool:
    return flags.incremental_matching
