"""Static and semantic analyses: termination, graph representations,
q-finiteness, lazy evaluation, and the ψ translation (Sections 3–5)."""

from .finiteness import (
    Finiteness,
    QFinitenessReport,
    is_q_finite,
    match_pattern_graph,
    snapshot_over_graphs,
)
from .graphrep import GraphRepresentation, build_graph_representation
from .lazy import (
    LazyResult,
    RelevanceReport,
    Verdict,
    eager_evaluate,
    full_query_result,
    is_possible_answer,
    is_q_stable,
    is_unneeded,
    is_weakly_stable,
    lazy_evaluate,
    weakly_relevant_calls,
)
from .relevance import RelevanceTracker
from .termination import (
    TerminationAnalyzer,
    TerminationReport,
    TerminationStatus,
    analyze_termination,
)
from .translation import (
    ANNOTATION_SERVICE,
    TranslationError,
    TranslationResult,
    strip_annotations,
    strip_forest,
    translate,
)

__all__ = [
    "ANNOTATION_SERVICE",
    "Finiteness",
    "GraphRepresentation",
    "LazyResult",
    "QFinitenessReport",
    "RelevanceReport",
    "RelevanceTracker",
    "TerminationAnalyzer",
    "TerminationReport",
    "TerminationStatus",
    "TranslationError",
    "TranslationResult",
    "Verdict",
    "analyze_termination",
    "build_graph_representation",
    "eager_evaluate",
    "full_query_result",
    "is_possible_answer",
    "is_q_finite",
    "is_q_stable",
    "is_unneeded",
    "is_weakly_stable",
    "lazy_evaluate",
    "match_pattern_graph",
    "snapshot_over_graphs",
    "strip_annotations",
    "strip_forest",
    "translate",
    "weakly_relevant_calls",
]
