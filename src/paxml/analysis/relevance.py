"""Incremental weak-relevance tracking (Section 4, wired into the runtime).

:mod:`paxml.analysis.lazy` implements the paper's *weak relevance*
over-approximation as a batch computation: rerun the goal fixpoint over
the whole system and return the relevant call set.  That is the right
shape for an offline report but the wrong one for a scheduler that asks
"did this graft wake anything?" thousands of times per run.

:class:`RelevanceTracker` maintains the same fixpoint *incrementally*.
The key property making that sound is monotonicity: for a fixed goal set,
growing a document can only grow each pattern node's relaxed-embedding
image set (sibling completeness is ignored, so existing images never die),
hence can only grow the extendable-position set and the relevant-call set.
A graft therefore only ever *adds* relevance, and the tracker only needs
to rescan the goals that read the grafted document (plus any service-body
goals those rescans transitively introduce).  Shrinking is only possible
when the *goal set* changes — :meth:`reseed` recomputes from scratch for
that case (query unsubscribed, tenant retargeted).

Beyond the per-document goal rescan the tracker keeps two positional
registries that the batch code handles inline:

* **param hosts** — every relevant call node: calls grafted anywhere under
  its parameter forest feed its ``input`` and are relevant;
* **context hosts** — the parent of every relevant call whose service
  reads ``context``: calls grafted anywhere under that parent feed the
  call's ``context`` and are relevant.

On a graft the tracker walks the inserted trees' ancestor chain against
these registries, so positionally-relevant calls are caught even when no
goal pattern reaches them.

The closure here is slightly *more* conservative than
:func:`~paxml.analysis.lazy.weakly_relevant_calls`: every call marked
relevant — including ones found positionally inside parameters or context
— also contributes its service's body patterns as goals (the batch code
only does this for calls found via a goal position).  More relevant calls
can never make lazy evaluation unsound, only slightly less lazy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..query.pattern import PatternNode, RegexSpec
from ..query.rule import PositiveQuery
from ..query.variables import FunVar, LabelVar, TreeVar, ValueVar
from ..tree.document import CONTEXT, INPUT, Document
from ..tree.node import Label, Node
from ..system.service import QueryService, UnionQueryService
from ..system.system import AXMLSystem


# ----------------------------------------------------------------------
# relaxed top-down embedding (shared with analysis.lazy)
# ----------------------------------------------------------------------


def spec_compatible(spec, marking) -> bool:
    """Relaxed node test: can this pattern node ever map onto this marking?"""
    if isinstance(spec, RegexSpec):
        # The path may *start* here only at a label node; deeper growth is
        # handled by treating regex nodes as always-extendable (see below).
        return isinstance(marking, Label)
    if isinstance(spec, TreeVar):
        return True
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        return spec.admits(marking)
    return spec == marking


def reachable_images(pattern: PatternNode, root: Node) -> Dict[int, Set[int]]:
    """Top-down relaxed embedding: pattern-node-id → candidate doc node uids.

    Sibling patterns and cross-pattern variable consistency are ignored —
    a sound over-approximation of where each pattern node can map.
    Regex-spec nodes may map to any label descendant of their parent's
    images (the path can wander), which keeps the analysis linear.
    """
    images: Dict[int, Set[int]] = {}

    def descend(pnode: PatternNode, candidates: List[Node]) -> None:
        mine = [n for n in candidates if spec_compatible(pnode.spec, n.marking)]
        if isinstance(pnode.spec, RegexSpec):
            # Any label node on a downward path can be the end node.
            widened: List[Node] = []
            stack = list(mine)
            seen: Set[int] = set()
            while stack:
                node = stack.pop()
                if node.uid in seen:
                    continue
                seen.add(node.uid)
                widened.append(node)
                stack.extend(c for c in node.children
                             if isinstance(c.marking, Label))
            mine = widened
        images.setdefault(id(pnode), set()).update(n.uid for n in mine)
        child_candidates = [c for n in mine for c in n.children]
        for child in pnode.children:
            descend(child, child_candidates)

    descend(pattern, [root])
    return images


def extendable_positions(pattern: PatternNode, root: Node) -> Set[int]:
    """Doc-node uids where appended children could extend a match.

    These are the images of pattern nodes that still have children to
    satisfy (any non-leaf pattern node: a new sibling may begin a *new*
    assignment even when old ones exist), plus images of regex nodes (the
    path can grow through fresh data).
    """
    images = reachable_images(pattern, root)
    positions: Set[int] = set()
    for pnode in pattern.iter_nodes():
        if pnode.children or isinstance(pnode.spec, RegexSpec) \
                or isinstance(pnode.spec, TreeVar):
            positions |= images.get(id(pnode), set())
    return positions


# ----------------------------------------------------------------------
# the incremental tracker
# ----------------------------------------------------------------------


Site = Tuple[Document, Node]


class RelevanceTracker:
    """Incrementally maintained weakly-relevant call set for a goal set.

    ``seed``/``reseed`` run the full goal fixpoint; :meth:`on_graft` does
    the delta work for one graft and returns the uids of calls that just
    became relevant (so a scheduler can promote them out of dormancy).
    """

    def __init__(self, system: AXMLSystem,
                 queries: Sequence[PositiveQuery] = (),
                 use_service_bodies: bool = True):
        self.system = system
        self.use_service_bodies = use_service_bodies
        self.queries: List[PositiveQuery] = []
        self._goals: List[Tuple[str, PatternNode]] = []
        self._goals_by_doc: Dict[str, List[int]] = {}
        self._processed_services: Set[str] = set()
        self._relevant: Dict[int, Site] = {}
        self._param_hosts: Set[int] = set()
        self._context_hosts: Set[int] = set()
        self.reseed(queries)

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._relevant)

    def is_relevant(self, node: Node) -> bool:
        return node.uid in self._relevant

    @property
    def relevant_uids(self) -> Dict[int, Site]:
        """uid → (document, node) view; supports ``in`` without copying."""
        return self._relevant

    @property
    def goal_count(self) -> int:
        return len(self._goals)

    def relevant_sites(self) -> List[Site]:
        return list(self._relevant.values())

    # -- (re)seeding -----------------------------------------------------

    def reseed(self, queries: Sequence[PositiveQuery]) -> Set[int]:
        """Full recompute for a new goal set; returns all relevant uids.

        The only operation that can *shrink* the relevant set — callers
        should diff against their previous view to demote sites.
        """
        self.queries = list(queries)
        self._goals = []
        self._goals_by_doc = {}
        self._processed_services = set()
        self._relevant = {}
        self._param_hosts = set()
        self._context_hosts = set()
        pending = []
        for query in self.queries:
            for atom in query.body:
                pending.append(self._add_goal(atom.document, atom.pattern))
        self._drain(pending)
        return set(self._relevant)

    # -- the graft delta -------------------------------------------------

    def on_graft(self, document: Document, node: Optional[Node],
                 inserted: Sequence[Node] = ()) -> Set[int]:
        """Absorb one graft; returns uids of *newly* relevant calls.

        Monotone: rescans the goals reading ``document`` (their images can
        only have grown) and checks the inserted trees against the
        positional host registries.  Any service-body goals introduced by
        new relevance are drained to the usual fixpoint.
        """
        if not self._goals and not self._relevant:
            return set()
        new: Set[int] = set()
        queue: List[int] = []
        # Positional relevance: new calls under a relevant call's params
        # or under a context host's subtree.
        for tree in inserted:
            if not self._hosted(tree):
                continue
            for call in self._tree_calls(tree):
                self._mark(document, call, new, queue)
        queue.extend(self._goals_by_doc.get(document.name, ()))
        self._drain(queue, new)
        return new

    def _hosted(self, tree: Node) -> bool:
        """Is any ancestor of ``tree`` a param host or context host?"""
        ancestor = tree.parent
        while ancestor is not None:
            if ancestor.uid in self._param_hosts \
                    or ancestor.uid in self._context_hosts:
                return True
            ancestor = ancestor.parent
        return False

    @staticmethod
    def _tree_calls(tree: Node) -> List[Node]:
        calls = tree.function_nodes()
        if tree.is_function:
            calls = [tree] + calls
        return calls

    # -- the goal fixpoint -----------------------------------------------

    def _add_goal(self, doc_name: str, pattern: PatternNode) -> int:
        index = len(self._goals)
        self._goals.append((doc_name, pattern))
        self._goals_by_doc.setdefault(doc_name, []).append(index)
        return index

    def _drain(self, queue: List[int],
               new: Optional[Set[int]] = None) -> Set[int]:
        if new is None:
            new = set()
        cursor = 0
        while cursor < len(queue):
            self._scan_goal(queue[cursor], new, queue)
            cursor += 1
        return new

    def _scan_goal(self, goal_index: int, new: Set[int],
                   queue: List[int]) -> None:
        doc_name, pattern = self._goals[goal_index]
        document = self.system.documents.get(doc_name)
        if document is None:
            return
        positions = extendable_positions(pattern, document.root)
        if not positions:
            return
        for call, parent in document.root.iter_with_parents():
            if parent is None or not call.is_function:
                continue
            if parent.uid in positions:
                self._mark(document, call, new, queue)

    def _mark(self, document: Document, call: Node, new: Set[int],
              queue: List[int]) -> None:
        """Mark one call relevant and close over its positional/goal duties."""
        if call.uid in self._relevant:
            return
        self._relevant[call.uid] = (document, call)
        new.add(call.uid)
        self._param_hosts.add(call.uid)
        # Calls inside the parameters feed the service's ``input``.
        for param in call.children:
            for descendant in param.function_nodes():
                self._mark(document, descendant, new, queue)
        service = self.system.services.get(call.marking.name)
        if service is None:
            return
        reads = service.reads_documents()
        parent = call.parent
        # Calls inside the context subtree feed ``context``.
        if CONTEXT in reads and parent is not None:
            self._context_hosts.add(parent.uid)
            for descendant in parent.function_nodes():
                if descendant is not call:
                    self._mark(document, descendant, new, queue)
        if service.name in self._processed_services:
            return
        self._processed_services.add(service.name)
        if self.use_service_bodies and isinstance(
                service, (QueryService, UnionQueryService)):
            for rule in service.queries:
                for atom in rule.body:
                    if atom.document in (INPUT, CONTEXT):
                        continue  # handled positionally above
                    queue.append(self._add_goal(atom.document, atom.pattern))
        elif not self.use_service_bodies:
            # Fully black-box: anything the service reads may feed it, so
            # every call in those documents becomes relevant.
            for name in reads - {INPUT, CONTEXT}:
                target = self.system.documents.get(name)
                if target is None:
                    continue
                for node in target.root.function_nodes():
                    self._mark(target, node, new, queue)
