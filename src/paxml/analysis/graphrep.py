"""Finite graph representations of ``[I]`` for simple systems (Lemma 3.2).

The termination analysis (:mod:`paxml.analysis.termination`) saturates a
simple system, suppressing productive repetitions along nesting chains and
recording a *loop edge* for each suppression: the suppressed call's parent
would keep receiving, one level deeper, exactly the productions of the
configuration's representative occurrence.

This module assembles those pieces into one :class:`RegularTreeGraph` per
document:

* every node of the saturated pre-limit becomes a vertex;
* tree edges become graph edges;
* each loop edge becomes back-edges from the suppressed call's parent to
  the representative production roots — the finitely many distinct
  subtrees of the regular limit are shared instead of unrolled.

``graph.is_finite()`` then decides termination (the Theorem 3.3 algorithm:
build the representation, look for cycles), and ``graph.unfold(depth)``
materialises arbitrary finite prefixes of the infinite semantics, which the
test-suite cross-checks against direct budgeted rewriting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tree.node import Node
from ..tree.reduction import canonical_key
from ..tree.regular import RegularTreeGraph
from ..system.system import AXMLSystem
from .termination import TerminationReport, analyze_termination


class GraphRepresentation:
    """Per-document regular-tree graphs plus the underlying report."""

    def __init__(self, report: TerminationReport):
        self.report = report
        self.graphs: Dict[str, RegularTreeGraph] = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        system = self.report.system
        # Live productions per configuration: grafted trees can later be
        # evicted by reduction; only surviving roots become edge targets.
        live_ids: Dict[int, str] = {}
        for name, document in system.documents.items():
            for node in document.root.iter_nodes():
                live_ids[id(node)] = name

        vertex_of: Dict[int, Tuple[str, int]] = {}
        for name, document in system.documents.items():
            graph = RegularTreeGraph()
            for node in document.root.iter_nodes():
                vertex_of[id(node)] = (name, graph.add_vertex(node.marking))
            for node in document.root.iter_nodes():
                src = vertex_of[id(node)][1]
                for child in node.children:
                    graph.add_edge(src, vertex_of[id(child)][1])
            graph.set_root(vertex_of[id(document.root)][1])
            self.graphs[name] = graph

        for loop in self.report.loop_edges:
            if id(loop.parent) not in vertex_of:
                continue  # the whole suppressed region was evicted
            doc_name, src = vertex_of[id(loop.parent)]
            graph = self.graphs[doc_name]
            for target in self._live_targets(loop.config, doc_name,
                                             live_ids, vertex_of):
                graph.add_edge(src, target)

    def _live_targets(self, config, doc_name: str,
                      live_ids: Dict[int, str],
                      vertex_of: Dict[int, Tuple[str, int]]) -> List[int]:
        targets: List[int] = []
        fallbacks: List[object] = []
        for produced in self.report.productions.get(config, ()):
            if live_ids.get(id(produced)) == doc_name:
                targets.append(vertex_of[id(produced)][1])
            else:
                fallbacks.append(canonical_key(produced))
        if targets or not fallbacks:
            return targets
        # Every representative production was evicted by reduction — an
        # equivalent (or larger) sibling absorbed it.  Point at any live
        # node with a matching canonical key instead; failing that, the
        # production is already represented by a subsuming subtree and the
        # edge can be dropped without losing ⊆-content.
        system = self.report.system
        wanted = set(fallbacks)
        for node in system.documents[doc_name].root.iter_nodes():
            if canonical_key(node) in wanted:
                targets.append(vertex_of[id(node)][1])
        return targets

    # ------------------------------------------------------------------

    def graph(self, document: str) -> RegularTreeGraph:
        return self.graphs[document]

    def is_finite(self) -> bool:
        """Does every document denote a finite tree? (Theorem 3.3 check.)"""
        return all(graph.is_finite() for graph in self.graphs.values())

    def unfold(self, document: str, depth: int) -> Node:
        """A depth-bounded prefix of ``[document]``."""
        return self.graphs[document].unfold(depth)

    def vertex_counts(self) -> Dict[str, int]:
        return {name: graph.vertex_count() for name, graph in self.graphs.items()}


def build_graph_representation(system: AXMLSystem,
                               max_steps: int = 200_000) -> GraphRepresentation:
    """Compute the Lemma 3.2 representation of a simple positive system.

    Raises :class:`ValueError` for non-simple systems — their semantics
    need not be regular (Example 3.3), so no finite representation exists
    in general.
    """
    if not system.is_simple:
        raise ValueError(
            "graph representations exist for *simple* positive systems only "
            "(Lemma 3.2); this system uses tree variables or black boxes"
        )
    report = analyze_termination(system, max_steps=max_steps)
    if report.status.value == "unknown":
        raise RuntimeError(
            "saturation budget exhausted before the representation closed; "
            "raise max_steps"
        )
    return GraphRepresentation(report)
