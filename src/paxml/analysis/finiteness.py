"""q-finiteness of systems (Propositions 3.2 and 3.3).

A system ``I`` is *q-finite* when the full query result ``[q](I)`` is
finite — the system itself may have infinite semantics.  The paper's
landscape, which this module implements:

* **simple query** — always q-finite: each variable ranges over the
  (finite) atom domain, so there are finitely many instantiations
  (Section 3.3);
* **acyclic system** — always q-finite: the system terminates, so ``[I]``
  and hence ``[q](I)`` are finite (Prop. 3.2(2));
* **simple system, arbitrary positive query** — decidable: match the body
  patterns against the finite graph representation of ``[I]``.  A tree
  variable binds the (possibly infinite) subtree unfolding from its image
  vertex; the result is finite iff no satisfying assignment puts a tree
  variable at a vertex that can reach a cycle (Prop. 3.2(3));
* **non-simple system, even with a simple query** — undecidable in
  general (Prop. 3.3: emptiness of ``[q](I)`` is undecidable); the
  implementation falls back to budgeted saturation and answers UNKNOWN
  when the budget runs out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..query.pattern import PatternNode, RegexSpec
from ..query.rule import PositiveQuery
from ..query.variables import FunVar, LabelVar, TreeVar, ValueVar
from ..query.matching import _inequalities_hold  # shared inequality logic
from ..tree.node import Label
from ..tree.regular import RegularTreeGraph
from ..system.dependency import is_acyclic
from ..system.system import AXMLSystem
from .graphrep import GraphRepresentation, build_graph_representation
from .termination import TerminationStatus, analyze_termination


class Finiteness(enum.Enum):
    FINITE = "finite"
    INFINITE = "infinite"
    UNKNOWN = "unknown"


@dataclass
class QFinitenessReport:
    status: Finiteness
    reason: str
    #: for INFINITE on simple systems: (document, vertex) pairs where a
    #: tree variable grabs an infinite subtree
    witnesses: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def finite(self) -> bool:
        return self.status is Finiteness.FINITE


# ----------------------------------------------------------------------
# pattern matching over regular-tree graphs
# ----------------------------------------------------------------------

GraphBinding = Dict[object, object]  # Variable -> marking | ("vertex", doc, id)


def match_pattern_graph(pattern: PatternNode, graph: RegularTreeGraph,
                        vertex: int, doc_name: str,
                        binding: Optional[GraphBinding] = None
                        ) -> Iterator[GraphBinding]:
    """All embeddings of ``pattern`` into the *unfolding* of ``graph`` at
    ``vertex``.

    Patterns have finite depth, so an embedding into the (possibly
    infinite) unfolding is exactly an embedding into the graph that follows
    edges; tree variables bind vertices (standing for the whole unfolding
    below them).
    """
    yield from _match_vertex(pattern, graph, vertex, doc_name,
                             dict(binding or {}))


def _match_vertex(pattern: PatternNode, graph: RegularTreeGraph, vertex: int,
                  doc_name: str, binding: GraphBinding) -> Iterator[GraphBinding]:
    spec = pattern.spec
    marking = graph.marking[vertex]
    if isinstance(spec, RegexSpec):
        for end in _regex_end_vertices(spec, graph, vertex):
            yield from _match_children(pattern.children, graph, end,
                                       doc_name, binding)
        return
    if isinstance(spec, TreeVar):
        extended = dict(binding)
        extended[spec] = ("vertex", doc_name, vertex)
        yield extended
        return
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        if not spec.admits(marking):
            return
        bound = binding.get(spec)
        if bound is not None:
            if bound != marking:
                return
            yield from _match_children(pattern.children, graph, vertex,
                                       doc_name, binding)
        else:
            extended = dict(binding)
            extended[spec] = marking
            yield from _match_children(pattern.children, graph, vertex,
                                       doc_name, extended)
        return
    if spec == marking:
        yield from _match_children(pattern.children, graph, vertex,
                                   doc_name, binding)


def _match_children(patterns: List[PatternNode], graph: RegularTreeGraph,
                    vertex: int, doc_name: str,
                    binding: GraphBinding) -> Iterator[GraphBinding]:
    if not patterns:
        yield binding
        return
    first, rest = patterns[0], patterns[1:]
    for successor in sorted(graph.succ[vertex]):
        for extended in _match_vertex(first, graph, successor, doc_name, binding):
            yield from _match_children(rest, graph, vertex, doc_name, extended)


def _regex_end_vertices(spec: RegexSpec, graph: RegularTreeGraph,
                        start: int) -> Iterator[int]:
    """End vertices of accepted paths in the unfolding; cycle-safe.

    Unlike trees, graphs revisit (vertex, state-set) pairs, so the walk
    memoises them — the NFA product is finite even when the unfolding is
    infinite.
    """
    if not isinstance(graph.marking[start], Label):
        return
    nfa = spec.nfa
    initial = nfa.step([nfa.initial], graph.marking[start].name)  # type: ignore[union-attr]
    if not initial:
        return
    seen: Set[Tuple[int, frozenset]] = set()
    stack: List[Tuple[int, frozenset]] = [(start, initial)]
    yielded: Set[int] = set()
    while stack:
        vertex, states = stack.pop()
        if (vertex, states) in seen:
            continue
        seen.add((vertex, states))
        if states & nfa.accepting and vertex not in yielded:
            yielded.add(vertex)
            yield vertex
        for successor in graph.succ[vertex]:
            marking = graph.marking[successor]
            if isinstance(marking, Label):
                next_states = nfa.step(states, marking.name)
                if next_states:
                    stack.append((successor, next_states))


# ----------------------------------------------------------------------
# the decision procedure
# ----------------------------------------------------------------------


def _cycle_reaching_vertices(graph: RegularTreeGraph) -> Set[int]:
    """Vertices whose unfolding is infinite (a cycle is reachable)."""
    infinite: Set[int] = set()
    reachable = graph.reachable()
    # A vertex unfolds infinitely iff it reaches a vertex on a cycle.
    on_cycle = {
        vertex for vertex in reachable
        if _reaches(graph, vertex, vertex, strict=True)
    }
    for vertex in reachable:
        if any(_reaches(graph, vertex, target) for target in on_cycle):
            infinite.add(vertex)
    return infinite


def _reaches(graph: RegularTreeGraph, source: int, target: int,
             strict: bool = False) -> bool:
    stack = list(graph.succ[source]) if strict else [source]
    seen: Set[int] = set()
    while stack:
        vertex = stack.pop()
        if vertex == target:
            return True
        if vertex in seen:
            continue
        seen.add(vertex)
        stack.extend(graph.succ[vertex])
    return False


def snapshot_over_graphs(representation: "GraphRepresentation",
                         query: PositiveQuery) -> "Forest":
    """``[q](I)`` for a *simple* query over a simple system's representation.

    Simple queries bind only markings, and their patterns have finite
    depth, so matching over the graphs is exactly matching over the
    (possibly infinite) limit ``[I]`` — this is how the library evaluates
    full results over divergent simple systems.
    """
    from ..query.matching import evaluate_snapshot  # noqa: F401  (doc pointer)
    from ..query.pattern import instantiate
    from ..tree.document import Forest
    from ..tree.reduction import reduce_forest

    if not query.is_simple:
        raise ValueError(
            "full results over infinite semantics are computed for simple "
            "queries only (tree variables may bind infinite subtrees — "
            "check is_q_finite first)"
        )
    bindings: List[GraphBinding] = [{}]
    for atom in query.body:
        graph = representation.graphs.get(atom.document)
        if graph is None or graph.root is None:
            return Forest.empty()
        extended: List[GraphBinding] = []
        seen: Set[frozenset] = set()
        for binding in bindings:
            for result in match_pattern_graph(atom.pattern, graph, graph.root,
                                              atom.document, binding):
                key = frozenset(result.items())
                if key not in seen:
                    seen.add(key)
                    extended.append(result)
        bindings = extended
        if not bindings:
            return Forest.empty()
    satisfying = [b for b in bindings if _inequalities_hold(query.inequalities, b)]
    return Forest(reduce_forest([instantiate(query.head, b) for b in satisfying]))


def is_q_finite(system: AXMLSystem, query: PositiveQuery,
                max_steps: int = 200_000) -> QFinitenessReport:
    """Decide (or semi-decide) whether ``[q](I)`` is finite."""
    if query.is_simple:
        return QFinitenessReport(
            Finiteness.FINITE,
            "simple queries always have finite results: every variable "
            "ranges over the finite atom domain (Section 3.3)",
        )
    if is_acyclic(system):
        return QFinitenessReport(
            Finiteness.FINITE,
            "acyclic systems terminate, so [I] and [q](I) are finite "
            "(Prop. 3.2(2))",
        )
    if system.is_simple:
        return _decide_on_graph(system, query, max_steps)
    report = analyze_termination(system, max_steps=max_steps)
    if report.status is TerminationStatus.TERMINATES:
        return QFinitenessReport(
            Finiteness.FINITE,
            "the system terminates (verified by saturation), so [q](I) is "
            "the finite snapshot over the finite [I]",
        )
    return QFinitenessReport(
        Finiteness.UNKNOWN,
        "non-simple system without a reachable fixpoint: q-finiteness is "
        "undecidable in general (Prop. 3.2(1), Prop. 3.3)",
    )


def _decide_on_graph(system: AXMLSystem, query: PositiveQuery,
                     max_steps: int) -> QFinitenessReport:
    representation = build_graph_representation(system, max_steps=max_steps)
    dangerous: Dict[str, Set[int]] = {
        name: _cycle_reaching_vertices(graph)
        for name, graph in representation.graphs.items()
    }
    witnesses: List[Tuple[str, int]] = []
    bindings: List[GraphBinding] = [{}]
    for atom in query.body:
        if atom.document not in representation.graphs:
            return QFinitenessReport(
                Finiteness.FINITE,
                f"document {atom.document!r} does not exist in the system, "
                "so the body is unsatisfiable and [q](I) is empty",
            )
        graph = representation.graphs[atom.document]
        extended: List[GraphBinding] = []
        for binding in bindings:
            assert graph.root is not None
            extended.extend(
                match_pattern_graph(atom.pattern, graph, graph.root,
                                    atom.document, binding)
            )
        bindings = extended
        if not bindings:
            return QFinitenessReport(
                Finiteness.FINITE, "the body has no match in [I]; [q](I) is empty"
            )
    for binding in bindings:
        marks = {k: v for k, v in binding.items() if not isinstance(v, tuple)}
        if not _inequalities_hold(query.inequalities, marks):
            continue
        for value in binding.values():
            if isinstance(value, tuple) and value[0] == "vertex":
                _tag, doc_name, vertex = value
                if vertex in dangerous[doc_name]:
                    witnesses.append((doc_name, vertex))
    if witnesses:
        return QFinitenessReport(
            Finiteness.INFINITE,
            "a tree variable can bind a subtree of [I] that unfolds through "
            "a cycle of the graph representation — [q](I) contains trees of "
            "unbounded size",
            witnesses,
        )
    return QFinitenessReport(
        Finiteness.FINITE,
        "every tree-variable image in every satisfying assignment unfolds "
        "to a finite subtree of [I]",
    )
