"""ψ — translating positive+reg systems and queries into plain positive
ones (Proposition 5.1).

Strategy, following the paper's proof sketch.  For every regular path
expression ``R`` (with ε-free NFA ``A_R``) appearing in the query or in a
service definition:

* every *label* node of every document receives one extra call child
  ``!axprop`` to a state-propagation service;
* ``axprop`` is a union of one or two rules per NFA move.  A fact
  ``axs{re{<R>}, st{<q>}}`` stored under node ``n`` means: some downward
  path ``n = n0 … nm`` has its label word accepted by ``A_R`` starting in
  state ``q``.  The recurrence runs *backwards* over moves
  ``δ(q, a) ∋ p``::

      fact(n, q)  ⇐  λ(n) = a  and  p accepting                  (base)
      fact(n, q)  ⇐  λ(n) = a  and  some child c has fact(c, p)  (step)

  which the services express over ``context`` (the subtree at ``n``);
* regex pattern nodes are rewritten to look the facts up:
  ``[R]`` becomes ``@w{axs{re{<R>}, st{<q0>}}}`` for a fresh label
  variable ``@w``;
* heads of the original services get the same ``!axprop`` call child on
  every label node, so *derived* data is annotated too.

**Regex nodes with children.**  The children patterns must match below the
path's *end node*, but the fact is consumed at the *start node* and the
model has no node identities to join the two.  The paper resolves this by
shipping information about the end node upward inside the fact.  Shipping
the end node's whole subtree would be non-monotone divergence bait (facts
would contain facts and grow forever), so ψ ships exactly what the query
consumes: the **bindings of the variables** occurring in the children
patterns, in a fixed-shape ``bnd{axv0{…}, axv1{…}}`` payload.  The base
rule matches the children patterns *in situ* at the end node and loads the
slots; step rules copy the slots verbatim.  Because slots hold single
markings, ψ preserves simplicity for *all* simple inputs
(Proposition 5.1(2)); tree or function variables below a regex node are
rejected (they would smuggle unbounded payloads back in).

``strip_annotations`` removes the ``axs`` facts and ``axprop`` calls from
result trees so that ``[q](I) = [q'](I')`` can be checked literally
(experiment E9 does, against the native NFA-walking evaluation of
positive+reg queries).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..automata.nfa import NFA
from ..query.pattern import PatternNode, RegexSpec
from ..query.rule import BodyAtom, PositiveQuery
from ..query.variables import FunVar, LabelVar, TreeVar, ValueVar, Variable
from ..tree.document import CONTEXT, Document, Forest
from ..tree.node import FunName, Label, Node
from ..system.service import QueryService, Service, UnionQueryService
from ..system.system import AXMLSystem

#: names the translation reserves; input systems must not use them
ANNOTATION_SERVICE = "axprop"
FACT_LABEL = "axs"
RE_LABEL = "re"
STATE_LABEL = "st"
BINDINGS_LABEL = "bnd"
_RESERVED_LABELS = {FACT_LABEL, RE_LABEL, STATE_LABEL, BINDINGS_LABEL}


class TranslationError(ValueError):
    """The input cannot be translated (reserved vocabulary, or an
    unsupported variable kind below a regex node)."""


@dataclass
class _RegexEntry:
    """One propagation unit: a regex, or a regex *occurrence* with children."""

    ident: str                     # label naming this unit, e.g. "axr0"
    nfa: NFA
    children: List[PatternNode] = field(default_factory=list)
    payload_vars: List[Variable] = field(default_factory=list)

    @property
    def has_payload(self) -> bool:
        return bool(self.children)


@dataclass
class TranslationResult:
    """ψ(I, q) plus the bookkeeping Proposition 5.1 promises."""

    system: AXMLSystem
    query: PositiveQuery
    regex_index: Dict[str, str]        # ident -> regex text
    call_map: Dict[int, Node] = field(default_factory=dict)
    #: True when ψ introduced no tree variables — always holds for simple
    #: inputs (Prop. 5.1(2))
    preserves_simplicity: bool = True

    def map_calls(self, nodes: Sequence[Node]) -> List[Node]:
        """ψ(N): images of original call nodes in the translated system."""
        return [self.call_map[id(node)] for node in nodes
                if id(node) in self.call_map]


def _pattern_variables_ordered(patterns: Sequence[PatternNode]) -> List[Variable]:
    seen: List[Variable] = []
    for pattern in patterns:
        for node in pattern.iter_nodes():
            if isinstance(node.spec, (LabelVar, FunVar, ValueVar, TreeVar)) \
                    and node.spec not in seen:
                seen.append(node.spec)
    return seen


def _annotate_head(pattern: PatternNode) -> PatternNode:
    """Copy a head pattern, adding an ``!axprop`` call child to every node
    that will instantiate to a label node — so derived data gets annotated
    exactly like base data."""
    children = [_annotate_head(child) for child in pattern.children]
    duplicate = PatternNode(pattern.spec, children)
    if isinstance(pattern.spec, (Label, LabelVar)):
        duplicate.children.append(PatternNode(FunName(ANNOTATION_SERVICE)))
    return duplicate


class _Translator:
    def __init__(self, system: AXMLSystem, query: PositiveQuery):
        self.system = system
        self.user_query = query
        self.leaf_entries: Dict[str, _RegexEntry] = {}   # regex text -> entry
        self.entries: List[_RegexEntry] = []
        self._fresh = itertools.count()
        self.call_map: Dict[int, Node] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def _new_ident(self) -> str:
        return f"axr{len(self.entries)}"

    def _register_leaf(self, spec: RegexSpec) -> _RegexEntry:
        text = str(spec.regex)
        entry = self.leaf_entries.get(text)
        if entry is None:
            entry = _RegexEntry(self._new_ident(), spec.nfa)
            self.leaf_entries[text] = entry
            self.entries.append(entry)
        return entry

    def _register_occurrence(self, spec: RegexSpec,
                             children: List[PatternNode]) -> _RegexEntry:
        variables = _pattern_variables_ordered(children)
        for variable in variables:
            if isinstance(variable, (TreeVar, FunVar)):
                raise TranslationError(
                    f"{variable} occurs below a regular path expression; ψ "
                    "ships end-node bindings upward as atomic slots, which "
                    "tree and function variables cannot fill"
                )
        entry = _RegexEntry(self._new_ident(), spec.nfa,
                            children=children, payload_vars=variables)
        self.entries.append(entry)
        return entry

    def _fresh_var(self) -> LabelVar:
        return LabelVar(f"ax_w{next(self._fresh)}")

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _check_vocabulary(self) -> None:
        if ANNOTATION_SERVICE in self.system.services:
            raise TranslationError(
                f"service name {ANNOTATION_SERVICE!r} is reserved by ψ"
            )
        for service in self.system.services.values():
            if not isinstance(service, (QueryService, UnionQueryService)):
                raise TranslationError(
                    "ψ is defined for positive(+reg) systems; service "
                    f"{service.name!r} is a black box"
                )
        bad: Set[str] = set()
        for document in self.system.documents.values():
            for node in document.root.iter_nodes():
                if isinstance(node.marking, Label) and (
                    node.marking.name in _RESERVED_LABELS
                    or node.marking.name.startswith("axr")
                    or node.marking.name.startswith("axq")
                ):
                    bad.add(node.marking.name)
        if bad:
            raise TranslationError(
                f"document labels {sorted(bad)} collide with ψ's reserved "
                "annotation vocabulary"
            )

    # ------------------------------------------------------------------
    # fact pattern builders
    # ------------------------------------------------------------------

    @staticmethod
    def _state_label(entry: _RegexEntry, state: int) -> Label:
        return Label(f"axq{entry.ident}_{state}")

    def _fact_pattern(self, entry: _RegexEntry, state: int,
                      slot_values: Optional[Sequence[PatternNode]]) -> PatternNode:
        parts = [
            PatternNode(Label(RE_LABEL), [PatternNode(Label(entry.ident))]),
            PatternNode(Label(STATE_LABEL),
                        [PatternNode(self._state_label(entry, state))]),
        ]
        if slot_values is not None:
            slots = [
                PatternNode(Label(f"axv{i}"), [value])
                for i, value in enumerate(slot_values)
            ]
            parts.append(PatternNode(Label(BINDINGS_LABEL), slots))
        return PatternNode(Label(FACT_LABEL), parts)

    # ------------------------------------------------------------------
    # pattern rewriting
    # ------------------------------------------------------------------

    def _rewrite_pattern(self, pattern: PatternNode) -> PatternNode:
        children = [self._rewrite_pattern(child) for child in pattern.children]
        spec = pattern.spec
        if not isinstance(spec, RegexSpec):
            return PatternNode(spec, children)
        if not children:
            entry = self._register_leaf(spec)
            fact = self._fact_pattern(entry, entry.nfa.initial, None)
        else:
            entry = self._register_occurrence(spec, children)
            slots = [PatternNode(variable) for variable in entry.payload_vars]
            fact = self._fact_pattern(entry, entry.nfa.initial, slots)
        return PatternNode(self._fresh_var(), [fact])

    def _rewrite_query(self, query: PositiveQuery,
                       annotate_head: bool) -> PositiveQuery:
        body = [BodyAtom(atom.document, self._rewrite_pattern(atom.pattern))
                for atom in query.body]
        head = _annotate_head(query.head) if annotate_head else query.head.copy()
        return PositiveQuery(head, body, list(query.inequalities),
                             name=query.name)

    # ------------------------------------------------------------------
    # the propagation service
    # ------------------------------------------------------------------

    def _propagation_rules(self) -> List[PositiveQuery]:
        rules: List[PositiveQuery] = []
        for entry in self.entries:
            for (src, letter, dst) in entry.nfa.moves():
                rules.extend(self._rules_for_move(entry, src, letter, dst))
        return rules

    def _rules_for_move(self, entry: _RegexEntry, src: int,
                        letter: Optional[str], dst: int) -> List[PositiveQuery]:
        def context_root(children: List[PatternNode]) -> PatternNode:
            spec = Label(letter) if letter is not None else self._fresh_var()
            return PatternNode(spec, children)

        rules: List[PositiveQuery] = []
        # Base: the path is the single node n, accepted iff dst accepts;
        # for payload entries the children patterns must match *here* and
        # their variable bindings are loaded into the slots.
        if dst in entry.nfa.accepting:
            if entry.has_payload:
                slots = [PatternNode(variable) for variable in entry.payload_vars]
                head = self._fact_pattern(entry, src, slots)
                body = [BodyAtom(CONTEXT, context_root(
                    [child.copy() for child in entry.children]
                ))]
            else:
                head = self._fact_pattern(entry, src, None)
                body = [BodyAtom(CONTEXT, context_root([]))]
            rules.append(PositiveQuery(head, body, name=ANNOTATION_SERVICE))
        # Step: λ(n) is consumed by (src → dst); a child carries fact(dst)
        # and its slots (if any) are copied verbatim.
        if entry.has_payload:
            carried = [
                PatternNode(type(variable)(f"ax_p{i}"))
                for i, variable in enumerate(entry.payload_vars)
            ]
            child_fact = self._fact_pattern(entry, dst, carried)
            head = self._fact_pattern(
                entry, src,
                [PatternNode(node.spec) for node in carried],
            )
        else:
            child_fact = self._fact_pattern(entry, dst, None)
            head = self._fact_pattern(entry, src, None)
        child = PatternNode(self._fresh_var(), [child_fact])
        body = [BodyAtom(CONTEXT, context_root([child]))]
        rules.append(PositiveQuery(head, body, name=ANNOTATION_SERVICE))
        return rules

    # ------------------------------------------------------------------
    # document annotation
    # ------------------------------------------------------------------

    def _annotate_tree(self, node: Node) -> Node:
        children = [self._annotate_tree(child) for child in node.children]
        duplicate = Node(node.marking, children)
        if isinstance(node.marking, Label):
            duplicate.add_child(Node(FunName(ANNOTATION_SERVICE)))
        if node.is_function:
            self.call_map[id(node)] = duplicate
        return duplicate

    # ------------------------------------------------------------------

    def _has_any_regex(self) -> bool:
        patterns = [self.user_query.head] + [a.pattern for a in self.user_query.body]
        for service in self.system.services.values():
            if isinstance(service, (QueryService, UnionQueryService)):
                for rule in service.queries:
                    patterns.append(rule.head)
                    patterns.extend(atom.pattern for atom in rule.body)
        return any(
            isinstance(node.spec, RegexSpec)
            for pattern in patterns
            for node in pattern.iter_nodes()
        )

    def run(self) -> TranslationResult:
        self._check_vocabulary()
        annotate = self._has_any_regex()
        new_query = self._rewrite_query(self.user_query, annotate_head=False)
        new_services: List[Service] = []
        for service in self.system.services.values():
            assert isinstance(service, (QueryService, UnionQueryService))
            rewritten = [self._rewrite_query(rule, annotate_head=annotate)
                         for rule in service.queries]
            if len(rewritten) == 1:
                new_services.append(QueryService(service.name, rewritten[0]))
            else:
                new_services.append(UnionQueryService(service.name, rewritten))
        if self.entries:
            new_services.append(
                UnionQueryService(ANNOTATION_SERVICE, self._propagation_rules())
            )
            new_documents = [
                Document(document.name, self._annotate_tree(document.root))
                for document in self.system.documents.values()
            ]
        else:
            # No regexes anywhere: ψ is the identity on documents.
            new_documents = []
            for document in self.system.documents.values():
                copy = document.copy()
                for original, duplicate in zip(
                    document.root.iter_nodes(), copy.root.iter_nodes()
                ):
                    if original.is_function:
                        self.call_map[id(original)] = duplicate
                new_documents.append(copy)
        new_system = AXMLSystem(new_documents, new_services)

        simple_preserved = new_query.is_simple and all(
            rule.is_simple
            for service in new_services
            if isinstance(service, (QueryService, UnionQueryService))
            for rule in service.queries
        )
        regex_index: Dict[str, str] = {}
        for text, entry in self.leaf_entries.items():
            regex_index[entry.ident] = text
        for entry in self.entries:
            if entry.has_payload:
                regex_index[entry.ident] = (
                    f"<occurrence with {len(entry.payload_vars)} payload slots>"
                )
        return TranslationResult(
            system=new_system,
            query=new_query,
            regex_index=regex_index,
            call_map=self.call_map,
            preserves_simplicity=simple_preserved,
        )


def translate(system: AXMLSystem, query: PositiveQuery) -> TranslationResult:
    """ψ(I, q): eliminate regular path expressions (Proposition 5.1).

    The input system and query are untouched; the result contains the
    translated system, the translated query, and a call-node mapping
    realising the proposition's ``ψ(N)`` clause.
    """
    return _Translator(system, query).run()


def strip_annotations(tree: Node) -> Node:
    """A copy of ``tree`` without ``axs`` facts and ``axprop`` calls."""

    def keep(node: Node) -> bool:
        if isinstance(node.marking, FunName):
            return node.marking.name != ANNOTATION_SERVICE
        if isinstance(node.marking, Label):
            return node.marking.name != FACT_LABEL
        return True

    def rebuild(node: Node) -> Node:
        return Node(node.marking,
                    [rebuild(child) for child in node.children if keep(child)])

    return rebuild(tree)


def strip_forest(forest: Forest) -> Forest:
    """Annotation-free copy of a forest, reduced."""
    return Forest(strip_annotations(tree) for tree in forest).reduced()
