"""Termination analysis (Corollary 3.1, Theorem 3.3) via configuration
saturation.

Termination of positive systems is undecidable in general (they simulate
Turing machines, Lemma 3.1) but decidable for *simple* positive systems.
The procedure here realises the decidable case and degrades to a sound
semi-decision on arbitrary systems:

**Configurations.**  Each invocation of a call ``v`` to service ``f`` is
summarised by ``(f, input-view, context-view)``, where the views are
canonical keys of the input/context trees *truncated at the depth f's query
patterns actually inspect* (the snapshot result of a simple query depends
on nothing deeper; simple queries cannot copy subtrees).  Over a simple
system the configuration space is finite: markings come from the finite
atom domain and depth-bounded reduced trees over a finite domain are
finitely many.

**Nesting chains.**  Every call created by grafting an answer inherits the
producer's chain of configurations.  Data-level saturation is finite (there
are finitely many instantiated heads), so a divergent simple system must
grow an infinite chain of *productive* nested invocations — along which
some configuration repeats (finitely many exist).  Conversely a productive
repeat pumps: the repeated invocation reproduces, one nesting level deeper
and with a ⊇ environment, at least the production that spawned it
(monotonicity), so the growth recurs forever.

**The procedure.**  Saturate fairly; when a call is about to make a
*productive* invocation whose configuration already occurs in its own
chain, suppress the call instead of grafting, record a *loop edge* to the
representative production of that configuration, and continue.  The loop
edges are exactly the back-edges of the finite graph representation of
Lemma 3.2 (assembled by :mod:`paxml.analysis.graphrep`).  The run always
halts on simple systems; it reports

* ``TERMINATES`` with the exact finite semantics when a fixpoint is
  reached with no loop edge,
* ``DIVERGES`` with a witness chain when a loop edge was recorded,
* ``UNKNOWN`` when the step budget ran out first (only possible for
  non-simple systems, whose tree variables make configurations unbounded —
  there the budget is the only safeguard, as undecidability demands).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..query.rule import PositiveQuery
from ..tree.document import CONTEXT, INPUT, Document
from ..tree.node import Node
from ..tree.reduction import truncated_key
from ..system.invocation import (
    StaleCallError,
    build_input_tree,
    call_path,
    evaluate_call,
    graft_answers,
    new_answers,
)
from ..system.service import QueryService, Service, UnionQueryService
from ..system.system import AXMLSystem

Config = Tuple[str, object, object]


class TerminationStatus(enum.Enum):
    TERMINATES = "terminates"
    DIVERGES = "diverges"
    UNKNOWN = "unknown"


@dataclass
class LoopEdge:
    """A suppressed production: ``parent`` would receive the answers of the
    representative occurrence of ``config`` (one nesting level up)."""

    document: str
    parent: Node
    config: Config
    suppressed_call: Node


@dataclass
class TerminationReport:
    """Outcome of the analysis; ``system`` holds the saturated pre-limit."""

    status: TerminationStatus
    system: AXMLSystem
    steps: int
    productive_steps: int
    configs_seen: int
    loop_edges: List[LoopEdge] = field(default_factory=list)
    witness: Optional[Tuple[Config, ...]] = None
    #: per-config cumulative productions at the representative occurrence
    productions: Dict[Config, List[Node]] = field(default_factory=dict)

    @property
    def terminates(self) -> bool:
        return self.status is TerminationStatus.TERMINATES

    @property
    def diverges(self) -> bool:
        return self.status is TerminationStatus.DIVERGES


@dataclass
class _CallState:
    chain: Tuple[Config, ...] = ()
    closed: bool = False


class _ServiceDepths:
    """How deeply a service's queries inspect ``input`` and ``context``."""

    def __init__(self, service: Service):
        self.input_depth = 0
        self.context_depth = 0
        self.reads_input = INPUT in service.reads_documents()
        self.reads_context = CONTEXT in service.reads_documents()
        queries: Sequence[PositiveQuery] = ()
        if isinstance(service, (QueryService, UnionQueryService)):
            queries = service.queries
        for query in queries:
            for atom in query.body:
                if atom.document == INPUT:
                    self.input_depth = max(self.input_depth, atom.pattern.depth())
                elif atom.document == CONTEXT:
                    self.context_depth = max(self.context_depth, atom.pattern.depth())


class TerminationAnalyzer:
    """Run the configuration-saturation procedure on one system.

    The system is rewritten in place (toward its semantics, minus the
    suppressed repetitions).  Use ``system.copy()`` first to keep the
    original.
    """

    def __init__(self, system: AXMLSystem, max_steps: int = 200_000,
                 suppressed: Optional[Sequence[Node]] = None):
        self.system = system
        self.max_steps = max_steps
        self.suppressed_ids = {id(node) for node in (suppressed or ())}
        self._depths = {name: _ServiceDepths(service)
                        for name, service in system.services.items()}
        self._states: Dict[int, _CallState] = {}
        self._queue: Deque[Tuple[Document, Node]] = deque()
        self._holders: Dict[int, Node] = {}
        for document, node in system.call_sites():
            self._push(document, node, ())

    # ------------------------------------------------------------------

    def _push(self, document: Document, node: Node, chain: Tuple[Config, ...]) -> None:
        if id(node) in self._states or id(node) in self.suppressed_ids:
            return
        self._states[id(node)] = _CallState(chain=chain)
        self._holders[id(node)] = node  # keep ids stable while tracked
        self._queue.append((document, node))

    def _config(self, node: Node, parent: Node) -> Config:
        name = node.marking.name  # type: ignore[union-attr]
        depths = self._depths[name]
        input_view = (
            truncated_key(build_input_tree(node), depths.input_depth + 1)
            if depths.reads_input else None
        )
        context_view = (
            truncated_key(parent, depths.context_depth)
            if depths.reads_context else None
        )
        return (name, input_view, context_view)

    # ------------------------------------------------------------------

    def run(self) -> TerminationReport:
        steps = 0
        productive = 0
        fruitless_streak = 0
        loop_edges: List[LoopEdge] = []
        witness: Optional[Tuple[Config, ...]] = None
        productions: Dict[Config, List[Node]] = {}

        while self._queue and fruitless_streak < len(self._queue):
            if steps >= self.max_steps:
                return TerminationReport(TerminationStatus.UNKNOWN, self.system,
                                         steps, productive, len(productions),
                                         loop_edges, witness, productions)
            document, node = self._queue.popleft()
            state = self._states[id(node)]
            if state.closed:
                continue
            try:
                path = call_path(document, node)
            except StaleCallError:
                state.closed = True
                continue
            parent = path[-2]
            config = self._config(node, parent)
            answers = evaluate_call(self.system, node, parent)
            steps += 1
            fresh = new_answers(parent, answers)
            if not fresh:
                fruitless_streak += 1
                self._queue.append((document, node))
                continue

            if config in state.chain:
                # Productive repeat along the nesting chain: pump detected.
                state.closed = True
                loop_edges.append(LoopEdge(document.name, parent, config, node))
                if witness is None:
                    start = state.chain.index(config)
                    witness = state.chain[start:] + (config,)
                fruitless_streak = 0
                continue

            inserted = graft_answers(path, answers)
            productive += 1
            fruitless_streak = 0
            productions.setdefault(config, []).extend(inserted)
            child_chain = state.chain + (config,)
            for tree in inserted:
                for descendant in tree.iter_nodes():
                    if descendant.is_function:
                        self._push(document, descendant, child_chain)
            self._queue.append((document, node))

        if loop_edges:
            status = TerminationStatus.DIVERGES
        else:
            status = TerminationStatus.TERMINATES
        return TerminationReport(status, self.system, steps, productive,
                                 len(productions), loop_edges, witness, productions)


def analyze_termination(system: AXMLSystem, max_steps: int = 200_000,
                        in_place: bool = False,
                        suppressed: Optional[Sequence[Node]] = None
                        ) -> TerminationReport:
    """Decide termination (exactly, for simple positive systems).

    By default the analysis runs on a copy; pass ``in_place=True`` to let it
    saturate the given system (the report's ``system`` attribute points at
    whichever was used).

    For simple systems the result is ``TERMINATES`` or ``DIVERGES``
    (Theorem 3.3); for non-simple systems ``TERMINATES`` is still exact
    (a fixpoint was reached), ``DIVERGES`` is backed by a productive
    configuration repeat, and ``UNKNOWN`` means the budget ran out — the
    general problem is undecidable (Corollary 3.1).
    """
    if in_place:
        target = system
        moved = suppressed
    elif suppressed:
        target, mapping = system.copy_with_node_map()
        moved = [mapping[id(node)] for node in suppressed if id(node) in mapping]
    else:
        target, moved = system.copy(), None
    return TerminationAnalyzer(target, max_steps=max_steps, suppressed=moved).run()
