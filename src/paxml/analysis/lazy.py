"""Lazy query evaluation (Section 4): relevance, q-unneeded sets,
q-stability, possible answers, and the PTIME "weak" approximations.

The paper's exact notions compare semantics:

* an answer document/forest ``α`` is a **possible answer** to ``q`` when
  ``[α] = [[q](I)]`` — same information once every embedded call is chased;
* a set ``N`` of call nodes is **q-unneeded** when ``[q](I↓N)`` (evaluate
  ``q`` over the limit of rewritings that never invoke ``N``) is a possible
  answer;
* ``I`` is **q-stable** when *all* its calls are q-unneeded — enough data
  is present, no call need fire.

All three are undecidable in general and expensive for simple systems
(Theorem 4.1); this module implements them exactly for terminating systems
(by materialisation) and for simple systems (by comparing finite graph
representations), plus the paper's *weak* PTIME variants that treat
services as independent monotone black boxes.

**Weak relevance.**  New data only ever appears as new siblings of an
invoked call; a root-anchored pattern can only gain matches from new data
at positions some pattern prefix already reaches.  A call is *weakly
relevant* when its parent is the image, under a relaxed top-down embedding
(constants must agree, variables match their kind, sibling completeness
ignored), of a non-leaf node of some goal pattern.  Goals start as the
query's body patterns; when the services are positive their bodies are
added transitively (a relevant call's service reads documents whose growth
feeds it), and calls inside a relevant call's parameters or context are
relevant too.  Weak stability — no call is weakly relevant — is sound:
no invocation can change the query's snapshot, so ``I`` is q-stable
(Section 4, "Weaker properties").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..query.rule import PositiveQuery
from ..query.matching import evaluate_snapshot
from ..tree.document import Document, Forest
from ..tree.node import Label, Node
from ..tree.regular import RegularTreeGraph
from ..system.invocation import StaleCallError, invoke
from ..system.rewriting import Status, materialize, materialize_excluding
from ..system.service import QueryService, UnionQueryService
from ..system.system import AXMLSystem
from .graphrep import GraphRepresentation, build_graph_representation
from .relevance import RelevanceTracker
from .termination import TerminationStatus, analyze_termination


# ----------------------------------------------------------------------
# weak relevance (PTIME) — the fixpoint itself lives in .relevance, as an
# incrementally maintainable tracker the runtime schedulers share; this
# module keeps the batch "run it once, get a report" surface.
# ----------------------------------------------------------------------


@dataclass
class RelevanceReport:
    """Weakly relevant calls and the goal patterns that justified them."""

    relevant: List[Tuple[Document, Node]] = field(default_factory=list)
    goal_count: int = 0

    @property
    def relevant_ids(self) -> Set[int]:
        return {id(node) for _doc, node in self.relevant}

    def __len__(self) -> int:
        return len(self.relevant)


def weakly_relevant_calls(system: AXMLSystem, query: PositiveQuery,
                          use_service_bodies: bool = True) -> RelevanceReport:
    """The PTIME relevance over-approximation described in the module doc.

    With ``use_service_bodies=False`` services are pure black boxes: the
    transitive closure then adds *every* call of every document a relevant
    call's service might read, which is the paper's fully-agnostic weak
    notion (coarser, still sound).
    """
    tracker = RelevanceTracker(system, [query],
                               use_service_bodies=use_service_bodies)
    return RelevanceReport(relevant=tracker.relevant_sites(),
                           goal_count=tracker.goal_count)


def is_weakly_stable(system: AXMLSystem, query: PositiveQuery,
                     use_service_bodies: bool = True) -> bool:
    """Sound PTIME stability: no call is weakly relevant ⇒ I is q-stable."""
    return not weakly_relevant_calls(system, query, use_service_bodies).relevant


# ----------------------------------------------------------------------
# the lazy evaluator
# ----------------------------------------------------------------------


@dataclass
class LazyResult:
    """Outcome of a lazy evaluation run."""

    answer: Forest
    invocations: int
    productive_invocations: int
    rounds: int
    stable: bool  # True when the loop ended because nothing was relevant


def lazy_evaluate(system: AXMLSystem, query: PositiveQuery,
                  max_rounds: int = 10_000,
                  max_invocations: int = 100_000,
                  use_service_bodies: bool = True) -> LazyResult:
    """Materialise *only* weakly relevant calls, then answer the query.

    The system is rewritten in place (pass a copy to preserve it).  Each
    round recomputes relevance — answers may create new relevant calls or
    make old ones irrelevant — and invokes every currently relevant call
    once.  The loop stops when no relevant call remains (weak stability:
    the snapshot result is then the full result) or a budget trips.
    """
    invocations = 0
    productive = 0
    rounds = 0
    stable = False
    while rounds < max_rounds and invocations < max_invocations:
        report = weakly_relevant_calls(system, query, use_service_bodies)
        if not report.relevant:
            stable = True
            break
        rounds += 1
        round_productive = 0
        for document, node in report.relevant:
            if invocations >= max_invocations:
                break
            try:
                result = invoke(system, document, node)
            except StaleCallError:
                continue
            invocations += 1
            if result.changed:
                round_productive += 1
        productive += round_productive
        if round_productive == 0:
            # Every relevant call is a no-op on the current state; since
            # nothing changed in between, the state is a fixpoint of the
            # relevant-call subsystem.
            stable = True
            break
    answer = evaluate_snapshot(query, system.environment())
    return LazyResult(answer, invocations, productive, rounds, stable)


def eager_evaluate(system: AXMLSystem, query: PositiveQuery,
                   max_steps: int = 100_000) -> Tuple[Forest, int, bool]:
    """Baseline: materialise everything, then answer.

    Returns ``(answer, invocations, terminated)``.
    """
    result = materialize(system, max_steps=max_steps)
    answer = evaluate_snapshot(query, system.environment())
    return answer, result.steps, result.terminated


# ----------------------------------------------------------------------
# exact notions (Theorem 4.1)
# ----------------------------------------------------------------------


class Verdict(enum.Enum):
    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"


_FRESH = itertools.count()


def _attach_forest(system: AXMLSystem, forest: Forest,
                   prefix: str) -> Tuple[AXMLSystem, List[str]]:
    """A system extending ``system`` with the forest as fresh documents.

    Fresh names are unknown to every service, so the original documents'
    semantics is untouched; the new documents' semantics is exactly the
    semantics of the answer forest within ``I``.
    """
    documents = [doc.copy() for doc in system.documents.values()]
    names: List[str] = []
    for tree in forest:
        name = f"{prefix}{next(_FRESH)}"
        names.append(name)
        root = tree.copy()
        if root.is_function:
            # Wrap bare calls (cannot be document roots, Def. 2.1(ii)).
            root = Node(Label("answer"), [root])
        documents.append(Document(name, root))
    extended = AXMLSystem(documents, list(system.services.values()),
                          validate=False)
    return extended, names


def _forest_semantics_graphs(system: AXMLSystem, forest: Forest,
                             max_steps: int) -> Optional[List[RegularTreeGraph]]:
    """Graph representations of ``[each tree of forest]`` within ``I``.

    Only available when the system is simple; returns None otherwise.
    """
    if not system.is_simple:
        return None
    extended, names = _attach_forest(system, forest, "__sem_")
    representation = build_graph_representation(extended, max_steps=max_steps)
    return [representation.graph(name) for name in names]


def _graphs_equivalent_as_forests(left: List[RegularTreeGraph],
                                  right: List[RegularTreeGraph]) -> bool:
    def subsumed(a: List[RegularTreeGraph], b: List[RegularTreeGraph]) -> bool:
        return all(any(RegularTreeGraph.simulates(x, y) for y in b) for x in a)

    return subsumed(left, right) and subsumed(right, left)


def _materialized_forest_semantics(system: AXMLSystem, forest: Forest,
                                   max_steps: int) -> Optional[Forest]:
    """Materialise ``[forest]`` within ``I``; None when the budget trips."""
    extended, names = _attach_forest(system, forest, "__mat_")
    run = materialize(extended, max_steps=max_steps)
    if not run.terminated:
        return None
    return Forest([extended.documents[name].root for name in names]).reduced()


def full_query_result(system: AXMLSystem, query: PositiveQuery,
                      max_steps: int = 100_000) -> Tuple[Forest, bool]:
    """``[q](I)`` by materialisation: ``(forest, exact)``.

    ``exact`` is False when the budget tripped first — the forest is then a
    sound lower approximation (everything in it is in ``[q](I)``).
    """
    working = system.copy()
    run = materialize(working, max_steps=max_steps)
    return evaluate_snapshot(query, working.environment()), run.terminated


def is_possible_answer(system: AXMLSystem, query: PositiveQuery,
                       candidate: Forest,
                       max_steps: int = 100_000) -> Verdict:
    """Is ``[candidate] = [[q](I)]``?  (Theorem 4.1(i).)

    Exact for terminating systems (materialise both sides) and for simple
    systems (compare graph representations, even when ``[I]`` is
    infinite); UNKNOWN otherwise — the problem is undecidable in general.
    """
    if system.is_simple:
        # Decide termination first (cheap: saturation suppresses pumping
        # loops) instead of burning the whole budget unrolling a divergent
        # system.
        report = analyze_termination(system, max_steps=max_steps)
        if report.status is TerminationStatus.DIVERGES and query.is_simple:
            result_full = _simple_full_result(system, query, max_steps)
            left_graphs = _forest_semantics_graphs(system, candidate, max_steps)
            right_graphs = _forest_semantics_graphs(system, result_full,
                                                    max_steps)
            if left_graphs is not None and right_graphs is not None:
                return (Verdict.YES
                        if _graphs_equivalent_as_forests(left_graphs,
                                                         right_graphs)
                        else Verdict.NO)
            return Verdict.UNKNOWN
        if report.status is not TerminationStatus.TERMINATES:
            return Verdict.UNKNOWN
    result, exact = full_query_result(system, query, max_steps=max_steps)
    if exact:
        left = _materialized_forest_semantics(system, candidate, max_steps)
        right = _materialized_forest_semantics(system, result, max_steps)
        if left is not None and right is not None:
            return Verdict.YES if left.equivalent_to(right) else Verdict.NO
    return Verdict.UNKNOWN


def _simple_full_result(system: AXMLSystem, query: PositiveQuery,
                        max_steps: int) -> Forest:
    """``[q](I)`` for a simple system and simple query: evaluate the query
    over the finite graph representation of the (possibly infinite) limit.
    """
    from .finiteness import snapshot_over_graphs

    representation = build_graph_representation(system, max_steps=max_steps)
    return snapshot_over_graphs(representation, query)


def is_unneeded(system: AXMLSystem, query: PositiveQuery,
                calls: Iterable[Node],
                max_steps: int = 100_000) -> Verdict:
    """Is the call set q-unneeded?  (Definition 4.1, Theorem 4.1(ii).)

    Computes ``[q](I↓N)`` on a copy (translating node identities), then
    asks whether that forest is a possible answer.
    """
    call_list = list(calls)
    working, mapping = system.copy_with_node_map()
    suppressed = [mapping[id(node)] for node in call_list
                  if id(node) in mapping]
    run = materialize_excluding(working, suppressed, max_steps=max_steps)
    if run.terminated:
        restricted_answer = evaluate_snapshot(query, working.environment())
        return is_possible_answer(system, query, restricted_answer,
                                  max_steps=max_steps)
    if system.is_simple and query.is_simple:
        # [I↓N] is infinite but regular: evaluate q over its graphs.
        from .finiteness import snapshot_over_graphs

        report = analyze_termination(system, max_steps=max_steps,
                                     suppressed=call_list)
        if report.status is not TerminationStatus.UNKNOWN:
            restricted_answer = snapshot_over_graphs(
                GraphRepresentation(report), query
            )
            return is_possible_answer(system, query, restricted_answer,
                                      max_steps=max_steps)
    return Verdict.UNKNOWN


def is_q_stable(system: AXMLSystem, query: PositiveQuery,
                max_steps: int = 100_000) -> Verdict:
    """Is the system q-stable — are *all* its calls q-unneeded?

    (Theorem 4.1(iii).)  Equivalently: is the plain snapshot already a
    possible answer?
    """
    all_calls = [node for _doc, node in system.call_sites()]
    return is_unneeded(system, query, all_calls, max_steps=max_steps)
