"""``paxml.runtime`` — concurrent async evaluation of AXML systems.

Confluence (Lemma 2.1 / Theorem 2.1) makes the semantics ``[I]``
independent of the invocation order, so independent call sites may run
concurrently; this package supplies the asyncio engine that does, with
the robustness a remote-service execution model needs: per-call
timeouts, retries with exponential backoff, circuit breakers, graceful
degradation, deterministic fault injection and a metrics snapshot.

Quickstart::

    from paxml.runtime import materialize_async, LocalTransport

    result = materialize_async(system, concurrency=8, call_timeout=2.0)
    assert result.terminated
    print(result.metrics.snapshot())

See DESIGN.md §7 for the correctness argument and the failure model.
"""

from .engine import (
    AsyncRuntime,
    CallFailure,
    RuntimeResult,
    RuntimeStatus,
    TransportTimeout,
    materialize_async,
    materialize_peers_async,
)
from .faults import Fault, FaultInjector, FaultKind, NO_FAULT
from .metrics import LatencyHistogram, RuntimeMetrics
from .policy import CircuitBreaker, CircuitState, RetryPolicy, RuntimeConfig
from .transport import (
    CallRequest,
    LocalTransport,
    PeerTransport,
    Transport,
    TransportError,
    TransientServiceError,
)

__all__ = [
    "AsyncRuntime",
    "CallFailure",
    "CallRequest",
    "CircuitBreaker",
    "CircuitState",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "LatencyHistogram",
    "LocalTransport",
    "NO_FAULT",
    "PeerTransport",
    "RetryPolicy",
    "RuntimeConfig",
    "RuntimeMetrics",
    "RuntimeResult",
    "RuntimeStatus",
    "Transport",
    "TransportError",
    "TransientServiceError",
    "TransportTimeout",
    "materialize_async",
    "materialize_peers_async",
]
