"""Deterministic fault injection for the concurrent runtime.

The failure model is the standard unreliable-RPC quartet:

* **drop**  — the response never arrives; surfaces as a call timeout;
* **delay** — the response is late by a sampled amount (may still beat the
  per-call deadline, may not);
* **duplicate** — the response arrives twice; grafting is idempotent
  (antichain insertion plus canonical-key dedup), so this must be a no-op
  on the result, and the injector is how tests prove it;
* **error** — the owner fails transiently (``TransientServiceError``);
  retryable by definition.

Determinism is the whole point: the decision for attempt ``k`` of call
site ``s`` against service ``f`` is a pure function of
``(seed, f, s, k)`` — *not* of the order in which the event loop happens
to schedule tasks.  Re-running a seeded workload replays the exact same
fault schedule regardless of interleaving, which makes every failure path
a deterministic test case rather than a flake.

``max_attempt`` bounds the schedule: attempts beyond it are never
faulted, so a workload with ``max_attempts > max_attempt`` provably
converges — every injected fault is retried past, none can exhaust a
call's retry budget.  (With ``max_attempt=None`` faults apply to every
attempt and exhaustion becomes possible; the engine then *reports* the
failed site rather than silently dropping it.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from .policy import keyed_rng


class FaultKind(enum.Enum):
    NONE = "none"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    ERROR = "error"


@dataclass(frozen=True)
class Fault:
    kind: FaultKind
    delay: float = 0.0  # meaningful for DELAY only

    @property
    def is_failure(self) -> bool:
        """Does this fault make the attempt fail (vs. merely perturb it)?"""
        return self.kind in (FaultKind.DROP, FaultKind.ERROR)


NO_FAULT = Fault(FaultKind.NONE)


@dataclass
class FaultInjector:
    """A seeded, interleaving-independent schedule of injected faults.

    Rates are per-attempt probabilities, evaluated in the fixed order
    drop → error → delay → duplicate (at most one fault per attempt).
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    error_rate: float = 0.0
    delay_seconds: float = 0.05   # mean injected delay
    max_attempt: Optional[int] = None  # only fault attempts ≤ this (None = all)
    injected: Dict[str, int] = field(
        default_factory=lambda: {kind.value: 0 for kind in FaultKind
                                 if kind is not FaultKind.NONE})

    def __post_init__(self) -> None:
        for rate in (self.drop_rate, self.delay_rate,
                     self.duplicate_rate, self.error_rate):
            if not (0.0 <= rate <= 1.0):
                raise ValueError("fault rates must lie in [0, 1]")

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    @property
    def injected_failures(self) -> int:
        """Faults that made their attempt fail (drop + error)."""
        return (self.injected[FaultKind.DROP.value]
                + self.injected[FaultKind.ERROR.value])

    def decide(self, service: str, site: Hashable, attempt: int) -> Fault:
        """The fault (or :data:`NO_FAULT`) for this exact attempt."""
        fault = self.peek(service, site, attempt)
        if fault.kind is not FaultKind.NONE:
            self.injected[fault.kind.value] += 1
        return fault

    def peek(self, service: str, site: Hashable, attempt: int) -> Fault:
        """Like :meth:`decide` but without recording the injection."""
        if self.max_attempt is not None and attempt > self.max_attempt:
            return NO_FAULT
        rng = keyed_rng(self.seed, "fault", service, site, attempt)
        roll = rng.random()
        if roll < self.drop_rate:
            return Fault(FaultKind.DROP)
        roll -= self.drop_rate
        if roll < self.error_rate:
            return Fault(FaultKind.ERROR)
        roll -= self.error_rate
        if roll < self.delay_rate:
            # Sampled from the same keyed stream: still deterministic.
            return Fault(FaultKind.DELAY,
                         delay=self.delay_seconds * (0.5 + rng.random()))
        roll -= self.delay_rate
        if roll < self.duplicate_rate:
            return Fault(FaultKind.DUPLICATE)
        return NO_FAULT
