"""Observability for the concurrent runtime.

One :class:`RuntimeMetrics` instance accompanies each engine run and
records what the run *did* rather than what it produced:

* an in-flight gauge (current / high-water mark — the realized
  concurrency, bounded by the configured window);
* per-service latency histograms over successful attempts;
* counters for attempts, failures, retries, timeouts, breaker
  short-circuits, stale calls and duplicate deliveries.

The headline counters are mirrored into the process-wide
:mod:`paxml.perf` switchboard (``perf.stats.async_*``) so benchmark
harnesses that already read ``perf.stats.snapshot()`` see the async
engine's work alongside the cache counters, without importing this
module.  At the end of every run the whole bag is additionally folded
into the unified metrics registry (:mod:`paxml.obs.metrics`, labeled
counters and latency histograms per service), which is the one API that
sees this module, ``perf.stats`` and any custom families together.

The accounting invariant the fault-injection tests assert — *no failure
is silently dropped* — is::

    attempts_failed == retries + exhausted

every failed attempt is either retried (a later attempt exists) or it
exhausted the call's budget, in which case the engine records the call in
``RuntimeResult.failures``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .. import perf
from ..obs.metrics import nearest_rank

_HISTOGRAM_CAP = 10_000  # samples kept per service (enough for the benches)


@dataclass
class LatencyHistogram:
    """Latency samples (seconds) of successful attempts for one service.

    ``count``/``total`` stay exact past the reservoir cap — an overflowed
    observation bumps ``dropped`` instead of vanishing, so ``count`` in
    :meth:`summary` is the true number of observations and ``mean`` the
    true mean; only the quantiles degrade to the retained prefix.
    """

    samples: List[float] = field(default_factory=list)
    dropped: int = 0
    count: int = 0
    total: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if len(self.samples) < _HISTOGRAM_CAP:
            self.samples.append(seconds)
        else:
            self.dropped += 1

    def summary(self) -> Dict[str, float]:
        """Exact count/mean, extrema and nearest-rank p50/p95/p99.

        ``dropped`` is always reported so a capped histogram is visibly
        capped; quantiles use nearest-rank indexing
        (``ordered[ceil(q·n) - 1]``), which is well-defined for every
        sample count including exactly at the cap boundary — the previous
        ``int(q·n)`` indexing read one rank too high whenever ``q·n`` was
        integral.
        """
        if not self.samples:
            return {"count": self.count, "dropped": self.dropped}
        ordered = sorted(self.samples)
        return {
            "count": self.count,
            "dropped": self.dropped,
            "mean": self.total / self.count,
            "min": ordered[0],
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
            "max": ordered[-1],
        }


@dataclass
class RuntimeMetrics:
    """Counters and gauges for one engine run."""

    attempts: int = 0            # transport attempts started
    attempts_failed: int = 0     # attempts that timed out or errored
    retries: int = 0             # failed attempts followed by another attempt
    exhausted: int = 0           # calls whose retry budget ran out (reported)
    timeouts: int = 0            # failed attempts that were timeouts
    transient_errors: int = 0    # failed attempts that were service errors
    short_circuits: int = 0      # calls parked by an open circuit
    circuit_trips: int = 0       # closed→open transitions
    stale_calls: int = 0         # call nodes pruned away before/while in flight
    duplicate_deliveries: int = 0  # extra deliveries (injected duplicates)
    grafts_applied: int = 0      # productive graft batches
    answers_deduplicated: int = 0  # answers skipped by the canonical-key set
    in_flight: int = 0
    in_flight_peak: int = 0
    latency: Dict[str, LatencyHistogram] = field(default_factory=dict)

    # -- gauge -----------------------------------------------------------

    def enter_flight(self) -> None:
        self.in_flight += 1
        self.in_flight_peak = max(self.in_flight_peak, self.in_flight)

    def exit_flight(self) -> None:
        self.in_flight -= 1

    # -- counters (perf mirror on the headline ones) ---------------------

    def record_attempt(self, service: str) -> None:
        self.attempts += 1
        perf.stats.async_attempts += 1

    def record_success(self, service: str, seconds: float) -> None:
        histogram = self.latency.get(service)
        if histogram is None:
            histogram = self.latency[service] = LatencyHistogram()
        histogram.observe(seconds)

    def record_failure(self, service: str, *, timeout: bool) -> None:
        self.attempts_failed += 1
        if timeout:
            self.timeouts += 1
            perf.stats.async_timeouts += 1
        else:
            self.transient_errors += 1

    def record_retry(self, service: str) -> None:
        self.retries += 1
        perf.stats.async_retries += 1

    def record_exhausted(self, service: str) -> None:
        self.exhausted += 1

    def record_trip(self) -> None:
        self.circuit_trips += 1
        perf.stats.async_circuit_trips += 1

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "attempts_failed": self.attempts_failed,
            "retries": self.retries,
            "exhausted": self.exhausted,
            "timeouts": self.timeouts,
            "transient_errors": self.transient_errors,
            "short_circuits": self.short_circuits,
            "circuit_trips": self.circuit_trips,
            "stale_calls": self.stale_calls,
            "duplicate_deliveries": self.duplicate_deliveries,
            "grafts_applied": self.grafts_applied,
            "answers_deduplicated": self.answers_deduplicated,
            "in_flight": self.in_flight,
            "in_flight_peak": self.in_flight_peak,
            "latency": {name: histogram.summary()
                        for name, histogram in sorted(self.latency.items())},
        }
