"""Transports: where a concurrent call's answer actually comes from.

The engine is agnostic about *who* evaluates a service.  It builds a
:class:`CallRequest` — the same data a remote invocation ships in the
peers simulator: service name, ``θ(input)`` over the call's parameters,
and the context subtree — and awaits ``transport.call(request)`` for the
answer forest.  Two implementations:

* :class:`LocalTransport` — the centralized model: services evaluate
  against one :class:`~paxml.system.system.AXMLSystem`'s documents, as in
  :func:`paxml.system.invocation.evaluate_call`.  The snapshot the
  service sees is whatever the documents hold *when the coroutine reaches
  the evaluation step*; by monotonicity that is always a legal (possibly
  newer) environment for the call, so interleaving never threatens
  soundness (DESIGN.md §7).
* :class:`PeerTransport` — the distributed model: each service is owned
  by exactly one :class:`~paxml.peers.peer.Peer` and evaluates against
  the *owner's* documents; the context ships as a copy, exactly like a
  :class:`~paxml.peers.network.CallRequest` on the simulated wire.

Both accept a ``latency`` spec (a float, or a per-service mapping) that
is awaited before evaluation — the stand-in for network round-trip plus
service compute time that the benchmarks and timeout tests turn up.

Service evaluation itself is synchronous Python: a transport never yields
between reading the environment and finishing the evaluation, so a
concurrently applied graft can never observe or produce a half-read tree.
"""

from __future__ import annotations

import abc
import asyncio
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Union

from ..peers.peer import Peer, PeerError
from ..system.invocation import _validate_answers
from ..system.system import AXMLSystem
from ..tree.document import CONTEXT, INPUT, Forest
from ..tree.node import Node

LatencySpec = Union[None, float, Mapping[str, float]]

LOCAL_PEER = "local"  # the pseudo-peer name of the centralized transport


class TransportError(RuntimeError):
    """A call failed in a way that is NOT retryable (bad request)."""


class TransientServiceError(RuntimeError):
    """A call failed in a way that IS retryable (injected or simulated)."""


@dataclass
class CallRequest:
    """One in-flight invocation, as shipped to a transport."""

    service: str
    site: int                     # uid of the invoking call node
    input_tree: Node              # θ(input) — copies of the parameters
    context_tree: Optional[Node]  # θ(context) — the call's parent subtree
    caller_document: str


class Transport(abc.ABC):
    """An async answer source for service calls."""

    @abc.abstractmethod
    def peer_of(self, service: str) -> str:
        """The peer that owns ``service`` (circuit-breaker key half)."""

    @abc.abstractmethod
    async def call(self, request: CallRequest) -> Forest:
        """Evaluate the call and return its answer forest."""

    # -- shared latency handling ----------------------------------------

    def __init__(self, latency: LatencySpec = None):
        self._latency = latency

    def latency_for(self, service: str) -> float:
        if self._latency is None:
            return 0.0
        if isinstance(self._latency, Mapping):
            return float(self._latency.get(service, 0.0))
        return float(self._latency)

    async def _simulate_latency(self, service: str) -> None:
        seconds = self.latency_for(service)
        if seconds > 0:
            await asyncio.sleep(seconds)


class LocalTransport(Transport):
    """Evaluate services in-process against one system's documents.

    Uses full snapshot evaluation (not the per-site delta path): under
    retries and injected drops a delta that was computed but never
    *applied* would be lost for good, because the incremental evaluator
    marks it delivered.  Snapshot answers are always safe to recompute —
    grafting drops what the document already subsumes.
    """

    def __init__(self, system: AXMLSystem, latency: LatencySpec = None):
        super().__init__(latency)
        self.system = system

    def peer_of(self, service: str) -> str:
        return LOCAL_PEER

    async def call(self, request: CallRequest) -> Forest:
        await self._simulate_latency(request.service)
        service = self.system.services.get(request.service)
        if service is None:
            raise TransportError(
                f"call names undeclared service {request.service!r}")
        environment: Dict[str, Node] = dict(self.system.environment())
        environment[INPUT] = request.input_tree
        if request.context_tree is not None:
            environment[CONTEXT] = request.context_tree
        answers = service.evaluate(environment)
        _validate_answers(service.name, answers)
        return answers


class PeerTransport(Transport):
    """Route each call to the single peer that offers its service."""

    def __init__(self, peers: Iterable[Peer], latency: LatencySpec = None):
        super().__init__(latency)
        self.peers: Dict[str, Peer] = {}
        self._owner: Dict[str, str] = {}
        for peer in peers:
            if peer.name in self.peers:
                raise PeerError(f"duplicate peer name {peer.name!r}")
            self.peers[peer.name] = peer
            for service_name in peer.services:
                if service_name in self._owner:
                    raise PeerError(
                        f"service {service_name!r} offered by two peers "
                        f"({self._owner[service_name]!r} and {peer.name!r})")
                self._owner[service_name] = peer.name

    def peer_of(self, service: str) -> str:
        owner = self._owner.get(service)
        if owner is None:
            raise TransportError(f"no peer offers service {service!r}")
        return owner

    async def call(self, request: CallRequest) -> Forest:
        owner = self.peers[self.peer_of(request.service)]
        await self._simulate_latency(request.service)
        # Remote calls ship copies (the wire serializes); the live parent
        # must not leak to another peer's evaluation.
        context = (request.context_tree.copy()
                   if request.context_tree is not None else None)
        answers = owner.execute(request.service, request.input_tree, context)
        _validate_answers(request.service, answers)
        return answers
