"""The concurrent asyncio evaluation engine.

Confluence (Lemma 2.1 / Theorem 2.1) says the limit ``[I]`` of a fair
rewriting sequence does not depend on the invocation order.  This engine
cashes that in: it keeps up to ``concurrency`` call invocations in flight
at once and grafts answer forests as they complete, and the result is
still ``[I]`` — the interleaving is just *one more fair order*.

Soundness is arranged by construction rather than by locking:

* **single-writer apply loop** — documents are mutated only inside
  :meth:`AsyncRuntime._apply`, which runs on the coordinator between
  ``asyncio.wait`` wake-ups.  In-flight coroutines only *read* trees, and
  only inside synchronous transport evaluation (no await between reading
  the environment and finishing the match), so no graft can interleave
  with a half-done read.
* **monotone snapshots** — an answer computed against an older (smaller)
  document state is still an answer against the newer state, so a late
  response grafts soundly no matter how much landed meanwhile; grafting
  dedupes by a per-site canonical-key set and by antichain insertion.
* **generation-stamped no-op verdicts** — "this call added nothing" is
  only evidence for termination if nothing changed since the call read
  its snapshot.  Every productive graft bumps a generation counter;
  a no-op completing with a stale generation goes back in the queue
  instead of the proven-no-op pool.  The run terminates exactly when
  every live call is a proven no-op *at the current generation* and
  nothing is in flight — the same certificate the sequential engine's
  two-queue scheduler produces.

Failures degrade gracefully: a call that exhausts its retry budget is
recorded in ``RuntimeResult.failures`` (never silently dropped) and the
rest of the system still runs to its fixpoint (status ``DEGRADED``);
global budget or deadline exhaustion stops the run with the partial
prefix, every tree of which is in ``[I]`` by monotonicity.
"""

from __future__ import annotations

import asyncio
import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs.metrics import absorb_runtime
from ..obs.provenance import graft_record
from ..peers.peer import Peer
from ..query.plan import warm_system
from ..system.invocation import (
    StaleCallError,
    build_input_tree,
    call_path,
    graft_answers,
)
from ..system.system import AXMLSystem
from ..tree.document import Document, Forest
from ..tree.node import Node
from ..tree.reduction import canonical_key
from .faults import Fault, FaultInjector, FaultKind, NO_FAULT
from .metrics import RuntimeMetrics
from .policy import CircuitBreaker, RetryPolicy, RuntimeConfig
from .transport import (
    CallRequest,
    LocalTransport,
    PeerTransport,
    Transport,
    TransportError,
    TransientServiceError,
)

Site = Tuple[Document, Node]


class TransportTimeout(RuntimeError):
    """One attempt exceeded the per-call deadline (retryable)."""


class RuntimeStatus(enum.Enum):
    TERMINATED = "terminated"           # fixpoint: no live call can add data
    DEGRADED = "degraded"               # fixpoint of the rest; some calls failed
    BUDGET_EXHAUSTED = "budget"         # attempt budget hit; prefix computed
    DEADLINE_EXHAUSTED = "deadline"     # wall-clock budget hit; prefix computed


@dataclass
class CallFailure:
    """A call whose retry budget ran out — reported, never dropped."""

    document: str
    service: str
    site: int
    attempts: int
    reason: str


@dataclass
class RuntimeResult:
    """Summary of one concurrent run; the documents were grafted in place."""

    status: RuntimeStatus
    invocations: int                 # completed invocations (any verdict)
    attempts: int                    # transport attempts started (≥ invocations)
    productive_grafts: int
    invocations_by_service: Dict[str, int] = field(default_factory=dict)
    failures: List[CallFailure] = field(default_factory=list)
    duration_seconds: float = 0.0
    cancelled_in_flight: int = 0
    metrics: Optional[RuntimeMetrics] = None

    @property
    def terminated(self) -> bool:
        return self.status in (RuntimeStatus.TERMINATED, RuntimeStatus.DEGRADED)

    @property
    def steps(self) -> int:
        """Alias aligning with :class:`~paxml.system.rewriting.RewriteResult`."""
        return self.invocations


@dataclass
class _Outcome:
    """What one in-flight invocation coroutine reports back to the loop."""

    document: Document
    node: Node
    generation: int = -1
    deliveries: List[Forest] = field(default_factory=list)
    attempts: int = 0
    error: Optional[BaseException] = None
    parked_for: Optional[float] = None
    stale: bool = False
    aborted: bool = False  # budget ran out mid-retry; site stays unresolved


async def _never() -> None:
    await asyncio.Event().wait()


class AsyncRuntime:
    """Drive a system (or a peer federation) to ``[I]`` concurrently."""

    def __init__(self, system: Optional[AXMLSystem] = None, *,
                 transport: Optional[Transport] = None,
                 sites: Optional[Sequence[Site]] = None,
                 config: Optional[RuntimeConfig] = None,
                 injector: Optional[FaultInjector] = None):
        if transport is None:
            if system is None:
                raise ValueError("need a system or an explicit transport")
            transport = LocalTransport(system)
        self.system = system
        self.transport = transport
        self.config = config or RuntimeConfig()
        self.injector = injector
        self.retry = RetryPolicy(self.config)
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_cooldown)
        self.metrics = RuntimeMetrics()
        self.failures: List[CallFailure] = []
        self.invocations_by_service: Dict[str, int] = {}
        self._fresh: Deque[Site] = deque()
        self._tried: List[Site] = []
        self._parked: List[Tuple[float, Site]] = []
        self._enqueued: Set[int] = set()
        self._generation = 0
        self._productive = 0
        self._invocations = 0
        self._attempts_started = 0
        self._delivered: Dict[int, Set[object]] = {}
        self._site_attempts: Dict[int, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        if sites is None:
            if system is None:
                raise ValueError("need a system or explicit call sites")
            sites = list(system.call_sites())
        for document, node in sites:
            self._enqueue(document, node)
        if system is not None:
            # Pre-compile positive services' match plans before the first
            # attempt launches (no-op when the planner is off).
            warm_system(system)

    # -- constructors ----------------------------------------------------

    @classmethod
    def for_peers(cls, peers: Sequence[Peer], *,
                  latency=None, **kwargs) -> "AsyncRuntime":
        """A runtime over a peer federation: each call runs at its owner."""
        transport = PeerTransport(peers, latency=latency)
        sites = [site for peer in peers for site in peer.call_sites()]
        return cls(transport=transport, sites=sites, **kwargs)

    # -- queue maintenance ----------------------------------------------

    def _enqueue(self, document: Document, node: Node) -> None:
        if node.uid in self._enqueued:
            return
        self._enqueued.add(node.uid)
        self._fresh.append((document, node))
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.CALL_SCHEDULED, document=document.name,
                         service=node.marking.name,  # type: ignore[union-attr]
                         site=node.uid)

    def _forget(self, node: Node) -> None:
        self._enqueued.discard(node.uid)
        self._site_attempts.pop(node.uid, None)

    def _promote_tried(self) -> None:
        if self._tried:
            self._fresh.extend(self._tried)
            self._tried.clear()

    def _unpark(self, now: float) -> None:
        still_parked = []
        for ready_at, site in self._parked:
            if ready_at <= now:
                self._fresh.append(site)
            else:
                still_parked.append((ready_at, site))
        self._parked = still_parked

    def _budget_spent(self) -> bool:
        budget = self.config.max_invocations
        return budget is not None and self._attempts_started >= budget

    # -- the coordinator loop -------------------------------------------

    def run(self) -> RuntimeResult:
        """Synchronous entry point: own event loop, blocks until done."""
        return asyncio.run(self.arun())

    async def arun(self) -> RuntimeResult:
        loop = asyncio.get_running_loop()
        self._loop = loop
        start = loop.time()
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RUN_STARTED, engine="async",
                         concurrency=self.config.concurrency,
                         sites=len(self._fresh))
        deadline_at = (start + self.config.deadline
                       if self.config.deadline is not None else None)
        pending: Set[asyncio.Task] = set()
        stop: Optional[RuntimeStatus] = None
        cancelled = 0

        while True:
            now = loop.time()
            self._unpark(now)
            if deadline_at is not None and now >= deadline_at:
                stop = RuntimeStatus.DEADLINE_EXHAUSTED
                break
            while (self._fresh and len(pending) < self.config.concurrency
                   and not self._budget_spent()):
                document, node = self._fresh.popleft()
                pending.add(loop.create_task(self._invoke_site(document, node)))
            if not pending:
                if self._budget_spent() and (self._fresh or self._parked):
                    stop = RuntimeStatus.BUDGET_EXHAUSTED
                    break
                if self._parked:
                    next_ready = min(ready for ready, _ in self._parked)
                    await asyncio.sleep(max(next_ready - now, 0.001))
                    continue
                break  # fixpoint: nothing fresh, in flight, or parked
            wait_timeout = (None if deadline_at is None
                            else max(deadline_at - now, 0.0))
            done, pending = await asyncio.wait(
                pending, timeout=wait_timeout,
                return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                self._apply(task.result())

        if stop is RuntimeStatus.DEADLINE_EXHAUSTED:
            # Hard stop: late answers are abandoned; what is grafted stays
            # a sound prefix of [I].
            cancelled = len(pending)
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        else:
            # Soft stop (budget) or fixpoint: let in-flight work land.
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    self._apply(task.result())

        if stop is None:
            stop = (RuntimeStatus.DEGRADED if self.failures
                    else RuntimeStatus.TERMINATED)
        absorb_runtime(self.metrics,
                       invocations_by_service=self.invocations_by_service)
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RUN_FINISHED, engine="async",
                         status=stop.value, steps=self._invocations,
                         productive=self._productive,
                         seconds=loop.time() - start)
        return RuntimeResult(
            status=stop,
            invocations=self._invocations,
            attempts=self._attempts_started,
            productive_grafts=self._productive,
            invocations_by_service=dict(self.invocations_by_service),
            failures=list(self.failures),
            duration_seconds=loop.time() - start,
            cancelled_in_flight=cancelled,
            metrics=self.metrics,
        )

    # -- one in-flight invocation ---------------------------------------

    async def _invoke_site(self, document: Document, node: Node) -> _Outcome:
        service: str = node.marking.name  # type: ignore[union-attr]
        site = node.uid
        try:
            peer = self.transport.peer_of(service)
        except TransportError as exc:
            return _Outcome(document, node, error=exc)
        key = (peer, service)
        attempts = self._site_attempts.get(site, 0)

        while True:
            assert self._loop is not None
            allowed, wait = self.breaker.allow(key, self._loop.time())
            if not allowed:
                self.metrics.short_circuits += 1
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.SHORT_CIRCUIT, service=service,
                                 site=site, wait=wait)
                return _Outcome(document, node, parked_for=wait)
            try:
                path = call_path(document, node)
            except StaleCallError:
                return _Outcome(document, node, stale=True)
            generation = self._generation
            request = CallRequest(
                service=service,
                site=site,
                input_tree=build_input_tree(node),
                context_tree=path[-2],
                caller_document=document.name,
            )
            attempts += 1
            self._site_attempts[site] = attempts
            self._attempts_started += 1
            self.metrics.record_attempt(service)
            fault = (self.injector.decide(service, site, attempts)
                     if self.injector is not None else NO_FAULT)
            started = self._loop.time()
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_STARTED,
                             document=document.name, service=service,
                             site=site, attempt=attempts)
            self.metrics.enter_flight()
            try:
                forest = await self._attempt_once(request, fault)
            except (TransportTimeout, TransientServiceError) as exc:
                self.metrics.exit_flight()
                timed_out = isinstance(exc, TransportTimeout)
                self.metrics.record_failure(service, timeout=timed_out)
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.ATTEMPT_FAILED,
                                 document=document.name, service=service,
                                 site=site, attempt=attempts,
                                 seconds=self._loop.time() - started,
                                 reason=str(exc), timeout=timed_out)
                if self.breaker.record_failure(key, self._loop.time()):
                    self.metrics.record_trip()
                    if obs_bus.ACTIVE:
                        obs_bus.emit(obs_events.CIRCUIT_TRIP,
                                     peer=str(key[0]), service=service)
                if attempts >= self.config.max_attempts:
                    self.metrics.record_exhausted(service)
                    return _Outcome(document, node, error=exc,
                                    attempts=attempts)
                if self._budget_spent():
                    return _Outcome(document, node, aborted=True,
                                    attempts=attempts)
                self.metrics.record_retry(service)
                delay = self.retry.delay(service, site, attempts)
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.RETRY, service=service, site=site,
                                 attempt=attempts, delay=delay)
                await asyncio.sleep(delay)
                continue
            except TransportError as exc:
                self.metrics.exit_flight()
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.ATTEMPT_FAILED,
                                 document=document.name, service=service,
                                 site=site, attempt=attempts,
                                 seconds=self._loop.time() - started,
                                 reason=str(exc), timeout=False)
                return _Outcome(document, node, error=exc, attempts=attempts)
            self.metrics.exit_flight()
            self.metrics.record_success(service, self._loop.time() - started)
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_FINISHED,
                             document=document.name, service=service,
                             site=site, attempt=attempts,
                             seconds=self._loop.time() - started,
                             answers=len(forest))
            self.breaker.record_success(key)
            self._site_attempts.pop(site, None)
            deliveries = ([forest, forest]
                          if fault.kind is FaultKind.DUPLICATE else [forest])
            return _Outcome(document, node, generation=generation,
                            deliveries=deliveries, attempts=attempts)

    async def _attempt_once(self, request: CallRequest, fault: Fault) -> Forest:
        timeout = self.config.call_timeout
        if timeout is None and fault.kind is FaultKind.DROP:
            # With no deadline nothing would ever cancel the wait for a
            # dropped response; surface the loss immediately instead.
            raise TransportTimeout(
                f"response for {request.service!r} dropped (no call timeout)")
        coroutine = self._faulted_call(request, fault)
        if timeout is None:
            return await coroutine
        try:
            return await asyncio.wait_for(coroutine, timeout)
        except asyncio.TimeoutError:
            raise TransportTimeout(
                f"call to {request.service!r} exceeded {timeout}s") from None

    async def _faulted_call(self, request: CallRequest, fault: Fault) -> Forest:
        if fault.kind is FaultKind.ERROR:
            raise TransientServiceError(
                f"injected transient error calling {request.service!r}")
        if fault.kind is FaultKind.DROP:
            await _never()
        if fault.kind is FaultKind.DELAY:
            await asyncio.sleep(fault.delay)
        return await self.transport.call(request)

    # -- the single-writer apply step -----------------------------------

    def _apply(self, out: _Outcome) -> None:
        assert self._loop is not None
        if out.parked_for is not None:
            self._parked.append(
                (self._loop.time() + out.parked_for, (out.document, out.node)))
            return
        if out.stale:
            self.metrics.stale_calls += 1
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.STALE_CALL,
                             document=out.document.name,
                             service=out.node.marking.name,  # type: ignore[union-attr]
                             site=out.node.uid)
            self._forget(out.node)
            return
        if out.aborted:
            # Unresolved: put the site back so the budget status is honest.
            self._fresh.append((out.document, out.node))
            return
        service: str = out.node.marking.name  # type: ignore[union-attr]
        self._invocations += 1
        self.invocations_by_service[service] = (
            self.invocations_by_service.get(service, 0) + 1)
        if out.error is not None:
            self.failures.append(CallFailure(
                document=out.document.name, service=service,
                site=out.node.uid, attempts=out.attempts,
                reason=str(out.error)))
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.CALL_EXHAUSTED,
                             document=out.document.name, service=service,
                             site=out.node.uid, attempts=out.attempts,
                             reason=str(out.error))
            self._forget(out.node)
            return
        try:
            path = call_path(out.document, out.node)
        except StaleCallError:
            self.metrics.stale_calls += 1
            self._forget(out.node)
            return
        delivered = self._delivered.setdefault(out.node.uid, set())
        inserted_all: List[Node] = []
        for index, forest in enumerate(out.deliveries):
            if index:
                self.metrics.duplicate_deliveries += 1
            novel: List[Node] = []
            for tree in forest:
                tree_key = canonical_key(tree)
                if tree_key in delivered:
                    self.metrics.answers_deduplicated += 1
                    continue
                delivered.add(tree_key)
                novel.append(tree)
            if novel:
                inserted_all.extend(graft_answers(path, novel))
        if inserted_all:
            self.metrics.grafts_applied += 1
            self._productive += 1
            self._generation += 1
            if obs_bus.ACTIVE:
                obs_bus.emit(
                    obs_events.GRAFT_APPLIED, document=out.document.name,
                    service=service, site=out.node.uid,
                    step=self._invocations - 1,
                    trees=[graft_record(t) for t in inserted_all])
            self._promote_tried()
            for tree in inserted_all:
                for new_node in tree.iter_nodes():
                    if new_node.is_function:
                        self._enqueue(out.document, new_node)
            self._fresh.append((out.document, out.node))
        elif out.generation == self._generation:
            # Proven no-op on the current state: counts toward termination.
            self._tried.append((out.document, out.node))
        else:
            # The verdict is stale — something landed since this call read
            # its snapshot; it must be re-examined (fairness).
            self._fresh.append((out.document, out.node))


def materialize_async(system: AXMLSystem, *,
                      transport: Optional[Transport] = None,
                      config: Optional[RuntimeConfig] = None,
                      injector: Optional[FaultInjector] = None,
                      **config_kwargs) -> RuntimeResult:
    """Convenience wrapper: concurrently rewrite ``system`` toward ``[I]``.

    Keyword arguments other than ``transport``/``config``/``injector``
    are forwarded to :class:`RuntimeConfig` (e.g. ``concurrency=8``,
    ``deadline=2.0``).  Must not be called from inside a running event
    loop — use :meth:`AsyncRuntime.arun` there.
    """
    if config is not None and config_kwargs:
        raise ValueError("pass either a config object or config kwargs")
    if config is None:
        config = RuntimeConfig(**config_kwargs)
    runtime = AsyncRuntime(system, transport=transport, config=config,
                           injector=injector)
    return runtime.run()


def materialize_peers_async(peers: Sequence[Peer], *,
                            latency=None,
                            config: Optional[RuntimeConfig] = None,
                            injector: Optional[FaultInjector] = None,
                            **config_kwargs) -> RuntimeResult:
    """Concurrently drive a peer federation to global quiescence."""
    if config is not None and config_kwargs:
        raise ValueError("pass either a config object or config kwargs")
    if config is None:
        config = RuntimeConfig(**config_kwargs)
    runtime = AsyncRuntime.for_peers(list(peers), latency=latency,
                                     config=config, injector=injector)
    return runtime.run()
