"""The concurrent asyncio evaluation engine.

Confluence (Lemma 2.1 / Theorem 2.1) says the limit ``[I]`` of a fair
rewriting sequence does not depend on the invocation order.  This engine
cashes that in: it keeps up to ``concurrency`` call invocations in flight
at once and grafts answer forests as they complete, and the result is
still ``[I]`` — the interleaving is just *one more fair order*.

Soundness is arranged by construction rather than by locking:

* **single-writer apply loop** — documents are mutated only inside
  :meth:`AsyncRuntime._apply`, which runs on the coordinator between
  ``asyncio.wait`` wake-ups.  In-flight coroutines only *read* trees, and
  only inside synchronous transport evaluation (no await between reading
  the environment and finishing the match), so no graft can interleave
  with a half-done read.
* **monotone snapshots** — an answer computed against an older (smaller)
  document state is still an answer against the newer state, so a late
  response grafts soundly no matter how much landed meanwhile; grafting
  dedupes by a per-site canonical-key set and by antichain insertion.
* **generation-stamped no-op verdicts** — "this call added nothing" is
  only evidence for termination if nothing changed since the call read
  its snapshot.  Every productive graft bumps the kernel's generation;
  a no-op completing with a stale generation goes back in the queue
  instead of the proven-no-op pool.  The run terminates exactly when
  every live call is a proven no-op *at the current generation* and
  nothing is in flight — the same certificate the sequential engine's
  two-queue scheduler produces.

Failures degrade gracefully: a call that exhausts its retry budget is
recorded in ``RunResult.failures`` (never silently dropped) and the
rest of the system still runs to its fixpoint (status ``DEGRADED``);
global budget or deadline exhaustion stops the run with the partial
prefix, every tree of which is in ``[I]`` by monotonicity.

Scheduling, counting, grafting and checkpointing live in the shared
:mod:`paxml.kernel` (this runtime and the sequential engine run on the
same :class:`~paxml.kernel.EvaluationKernel`); what remains here is the
concurrency layer — the coordinator loop, in-flight invocation
coroutines with retry/breaker/fault handling, and the single-writer
apply step.  ``RuntimeStatus``/``RuntimeResult``/``CallFailure`` are
deprecated aliases of the kernel's unified result types.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..kernel import CallFailure, EvaluationKernel, RunResult, RunStatus
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..obs.metrics import absorb_runtime
from ..peers.peer import Peer
from ..query.plan import warm_system
from ..system.invocation import (
    StaleCallError,
    build_input_tree,
    call_path,
)
from ..system.system import AXMLSystem
from ..tree.document import Document, Forest
from ..tree.node import Node
from .faults import Fault, FaultInjector, FaultKind, NO_FAULT
from .metrics import RuntimeMetrics
from .policy import CircuitBreaker, RetryPolicy, RuntimeConfig
from .transport import (
    CallRequest,
    LocalTransport,
    PeerTransport,
    Transport,
    TransportError,
    TransientServiceError,
)

Site = Tuple[Document, Node]

# Deprecated aliases of the unified kernel result types.
RuntimeStatus = RunStatus
RuntimeResult = RunResult


class TransportTimeout(RuntimeError):
    """One attempt exceeded the per-call deadline (retryable)."""


@dataclass
class _Outcome:
    """What one in-flight invocation coroutine reports back to the loop."""

    document: Document
    node: Node
    generation: int = -1
    deliveries: List[Forest] = field(default_factory=list)
    attempts: int = 0
    error: Optional[BaseException] = None
    parked_for: Optional[float] = None
    stale: bool = False
    aborted: bool = False  # budget ran out mid-retry; site stays unresolved
    # The invocation's causal span (a child of the context the call node
    # was grafted under, if any): _apply re-activates it around the
    # graft so the kernel stamps the record and the new call sites.
    trace: Optional[obs_trace.TraceContext] = None


async def _never() -> None:
    await asyncio.Event().wait()


class AsyncRuntime:
    """Drive a system (or a peer federation) to ``[I]`` concurrently.

    ``checkpoint_every`` writes a resumable bundle to ``checkpoint_path``
    every N completed invocations; the snapshot is taken on the
    coordinator between apply steps, with in-flight sites folded back
    into the untried frontier (their outcomes would die with a crash
    anyway).  A bundle-constructed kernel (see
    :func:`paxml.kernel.resume`) continues a suspended run.
    """

    def __init__(self, system: Optional[AXMLSystem] = None, *,
                 transport: Optional[Transport] = None,
                 sites: Optional[Sequence[Site]] = None,
                 config: Optional[RuntimeConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 kernel: Optional[EvaluationKernel] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_path: Optional[str] = None,
                 lazy_for: Optional[Sequence] = None,
                 fire_once: bool = False):
        if transport is None:
            if system is None:
                raise ValueError("need a system or an explicit transport")
            transport = LocalTransport(system)
        self.system = system
        self.transport = transport
        self.config = config or RuntimeConfig()
        self.injector = injector
        self.retry = RetryPolicy(self.config)
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_cooldown)
        self.metrics = RuntimeMetrics()
        self.failures: List[CallFailure] = []
        if kernel is None:
            kernel = EvaluationKernel(system, sites=sites,
                                      promote_front=False,
                                      dedup_delivered=True,
                                      budget=self.config.max_invocations)
        else:
            # Adopting a resumed kernel: this runtime appends proven
            # no-ops behind the untried remainder, dedups deliveries per
            # site, and enforces its own attempt budget.
            kernel.scheduler.promote_front = False
            kernel.dedup_delivered = True
            kernel.scheduler.budget = self.config.max_invocations
        self.kernel = kernel
        self.scheduler = kernel.scheduler
        # Relevance-guided laziness (kernel no-ops when the perf flag is
        # off): sites unneeded for the goal queries go dormant and are
        # never launched.
        if lazy_for is not None and kernel.system is not None:
            kernel.enable_lazy(lazy_for)
        if fire_once and kernel.system is not None:
            kernel.enable_fire_once()
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self._site_attempts: Dict[int, int] = {}
        self._in_flight: Dict[asyncio.Task, Site] = {}
        self._last_checkpoint_steps = kernel.steps
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Graceful drain: requested via request_drain(), observed at the
        # top of the coordinator loop and mid-wait through _drain_event.
        self._drain_requested = False
        self._drain_event: Optional[asyncio.Event] = None
        # Call uids whose in-flight evaluation was cut short by a hard
        # stop: their incremental cutoffs stay excluded from every later
        # checkpoint of this run (an advanced cutoff without the graft
        # landing would lose answers on resume).
        self._dirty_cutoff_uids: Set[int] = set()
        # Per-slice serving reuses one runtime across many arun() calls;
        # pushing the cumulative metrics bag into the global registry on
        # every slice would multiply-count, so the serve layer absorbs
        # deltas itself and turns this off.
        self.absorb_metrics = True
        if system is not None:
            # Pre-compile positive services' match plans before the first
            # attempt launches (no-op when the planner is off).
            warm_system(system)

    # -- constructors ----------------------------------------------------

    @classmethod
    def for_peers(cls, peers: Sequence[Peer], *,
                  latency=None, **kwargs) -> "AsyncRuntime":
        """A runtime over a peer federation: each call runs at its owner."""
        transport = PeerTransport(peers, latency=latency)
        sites = [site for peer in peers for site in peer.call_sites()]
        return cls(transport=transport, sites=sites, **kwargs)

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Snapshot the run to a resumable bundle.

        In-flight sites re-enter the frontier untried, and their
        incremental cutoffs are withheld from the bundle — as are the
        cutoffs of sites a hard stop cancelled mid-evaluation earlier in
        the run: an evaluation that advanced a cutoff without its graft
        landing would otherwise lose those answers on resume.
        """
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        in_flight = list(self._in_flight.values())
        exclude = {node.uid for _, node in in_flight}
        exclude.update(self._dirty_cutoff_uids)
        return self.kernel.checkpoint(
            target, engine="async", extra_fresh=in_flight,
            exclude_sites=exclude)

    def request_drain(self) -> None:
        """Ask a running :meth:`arun` to stop gracefully.

        The coordinator stops launching new attempts, lets (or cancels
        and flushes) in-flight work, folds parked and cancelled sites
        back into the untried frontier, and — when a checkpoint path is
        configured — emits a final resumable bundle.  The run returns
        with :attr:`RunStatus.DRAINED`.  Safe to call from any task on
        the runtime's event loop; calling it before :meth:`arun` drains
        immediately on entry.
        """
        self._drain_requested = True
        if self._drain_event is not None:
            self._drain_event.set()

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_every is None:
            return
        if (self.kernel.steps - self._last_checkpoint_steps
                >= self.checkpoint_every):
            self._last_checkpoint_steps = self.kernel.steps
            self.checkpoint()

    # -- the coordinator loop -------------------------------------------

    def run(self) -> RunResult:
        """Synchronous entry point: own event loop, blocks until done."""
        return asyncio.run(self.arun())

    async def arun(self) -> RunResult:
        loop = asyncio.get_running_loop()
        self._loop = loop
        kernel = self.kernel
        scheduler = self.scheduler
        start = loop.time()
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RUN_STARTED, engine="async",
                         concurrency=self.config.concurrency,
                         sites=scheduler.fresh_count(),
                         **kernel.obs_labels)
        deadline_at = (start + self.config.deadline
                       if self.config.deadline is not None else None)
        stop: Optional[RunStatus] = None
        cancelled = 0
        self._drain_event = asyncio.Event()
        if self._drain_requested:
            self._drain_event.set()
        drain_waiter = loop.create_task(self._drain_event.wait())

        while True:
            now = loop.time()
            scheduler.unpark(now)
            if self._drain_requested:
                stop = RunStatus.DRAINED
                break
            if deadline_at is not None and now >= deadline_at:
                stop = RunStatus.DEADLINE_EXHAUSTED
                break
            while (scheduler.has_fresh()
                   and len(self._in_flight) < self.config.concurrency
                   and not scheduler.budget_spent()):
                document, node = scheduler.pop()
                task = loop.create_task(self._invoke_site(document, node))
                self._in_flight[task] = (document, node)
            if not self._in_flight:
                if scheduler.budget_spent() and (scheduler.has_fresh()
                                                 or scheduler.parked_count()):
                    stop = RunStatus.BUDGET_EXHAUSTED
                    break
                if scheduler.parked_count():
                    next_ready = scheduler.next_parked_ready()
                    assert next_ready is not None
                    # Sleep until the cooldown, but wake early on drain.
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(drain_waiter),
                            timeout=max(next_ready - now, 0.001))
                    except asyncio.TimeoutError:
                        pass
                    continue
                break  # fixpoint: nothing fresh, in flight, or parked
            wait_timeout = (None if deadline_at is None
                            else max(deadline_at - now, 0.0))
            done, _ = await asyncio.wait(
                set(self._in_flight) | {drain_waiter}, timeout=wait_timeout,
                return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task is drain_waiter:
                    continue
                self._in_flight.pop(task, None)
                self._apply(task.result())
            self._maybe_checkpoint()

        if stop in (RunStatus.DEADLINE_EXHAUSTED, RunStatus.DRAINED):
            # Hard stop: cancel what is still in flight — but *flush*
            # outcomes of tasks that completed before the cancel landed
            # (past their last await point cancellation is ineffective;
            # dropping a computed outcome would waste a delivered answer).
            # Truly cancelled sites re-enter the untried frontier and keep
            # their incremental cutoffs out of later checkpoints.
            pending = list(self._in_flight)
            for task in pending:
                task.cancel()
            results = await asyncio.gather(*pending, return_exceptions=True)
            for task, result in zip(pending, results):
                site = self._in_flight.pop(task, None)
                if isinstance(result, _Outcome):
                    self._apply(result)
                elif site is not None:
                    cancelled += 1
                    scheduler.requeue(site)
                    self._dirty_cutoff_uids.add(site[1].uid)
        else:
            # Soft stop (budget) or fixpoint: let in-flight work land.
            while self._in_flight:
                done, _ = await asyncio.wait(
                    set(self._in_flight), return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    self._in_flight.pop(task, None)
                    self._apply(task.result())
                self._maybe_checkpoint()
        drain_waiter.cancel()
        try:
            await drain_waiter
        except asyncio.CancelledError:
            pass
        # A drain is consumed by the run it stopped: the same runtime can
        # ``arun`` again afterwards and keep going from the frontier.
        self._drain_requested = False
        self._drain_event = None

        if stop is None:
            # A clean fixpoint with dormant sites remaining is weak
            # q-stability: every goal query is fully answered, but the
            # dormant calls were never proven no-ops.
            stop = (RunStatus.DEGRADED if self.failures
                    else RunStatus.STABILIZED if scheduler.dormant_count()
                    else RunStatus.TERMINATED)
        if (self.checkpoint_every is not None
                or (stop is RunStatus.DRAINED
                    and self.checkpoint_path is not None)):
            # Periodic checkpointing, or the drain contract: a graceful
            # stop flushes the graft-log tail and the full frontier
            # (parked and cancelled sites included) to a final bundle.
            self.checkpoint()
        if self.absorb_metrics:
            absorb_runtime(self.metrics,
                           invocations_by_service=kernel.invocations_by_service)
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RUN_FINISHED, engine="async",
                         status=stop.value, steps=kernel.steps,
                         productive=kernel.productive,
                         seconds=loop.time() - start,
                         **kernel.obs_labels)
        return RunResult(
            status=stop,
            steps=kernel.steps,
            productive=kernel.productive,
            invocations_by_service=dict(kernel.invocations_by_service),
            attempts=scheduler.attempts,
            failures=list(self.failures),
            duration_seconds=loop.time() - start,
            cancelled_in_flight=cancelled,
            metrics=self.metrics,
            checkpoints=kernel.checkpoints,
            resumed_from=kernel.resumed_from,
        )

    # -- one in-flight invocation ---------------------------------------

    async def _invoke_site(self, document: Document, node: Node) -> _Outcome:
        service: str = node.marking.name  # type: ignore[union-attr]
        site = node.uid
        # Causal propagation: one dict.get on the (normally empty) tag
        # map; a hit means this call node was grafted under a sampled
        # request and the whole invocation becomes a child span of it.
        site_ctx = self.kernel.site_traces.get(site)
        ctx = site_ctx.child() if site_ctx is not None else None
        span_start = time.perf_counter() if ctx is not None else 0.0
        try:
            peer = self.transport.peer_of(service)
        except TransportError as exc:
            return _Outcome(document, node, error=exc, trace=ctx)
        key = (peer, service)
        attempts = self._site_attempts.get(site, 0)

        while True:
            assert self._loop is not None
            allowed, wait = self.breaker.allow(key, self._loop.time())
            if not allowed:
                self.metrics.short_circuits += 1
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.SHORT_CIRCUIT, service=service,
                                 site=site, wait=wait,
                                 **self.kernel.obs_labels)
                return _Outcome(document, node, parked_for=wait)
            try:
                path = call_path(document, node)
            except StaleCallError:
                return _Outcome(document, node, stale=True)
            generation = self.kernel.generation
            request = CallRequest(
                service=service,
                site=site,
                input_tree=build_input_tree(node),
                context_tree=path[-2],
                caller_document=document.name,
            )
            attempts += 1
            self._site_attempts[site] = attempts
            self.scheduler.note_attempt()
            self.metrics.record_attempt(service)
            fault = (self.injector.decide(service, site, attempts)
                     if self.injector is not None else NO_FAULT)
            started = self._loop.time()
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_STARTED,
                             document=document.name, service=service,
                             site=site, attempt=attempts,
                             **self.kernel.obs_labels)
            self.metrics.enter_flight()
            try:
                forest = await self._attempt_once(request, fault)
            except (TransportTimeout, TransientServiceError) as exc:
                self.metrics.exit_flight()
                timed_out = isinstance(exc, TransportTimeout)
                self.metrics.record_failure(service, timeout=timed_out)
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.ATTEMPT_FAILED,
                                 document=document.name, service=service,
                                 site=site, attempt=attempts,
                                 seconds=self._loop.time() - started,
                                 reason=str(exc), timeout=timed_out,
                                 **self.kernel.obs_labels)
                if self.breaker.record_failure(key, self._loop.time()):
                    self.metrics.record_trip()
                    if obs_bus.ACTIVE:
                        obs_bus.emit(obs_events.CIRCUIT_TRIP,
                                     peer=str(key[0]), service=service)
                if attempts >= self.config.max_attempts:
                    self.metrics.record_exhausted(service)
                    if ctx is not None:
                        obs_trace.emit_span(
                            ctx, f"invoke:!{service}", span_start,
                            time.perf_counter(), status="error",
                            site=site, attempts=attempts, reason=str(exc))
                    return _Outcome(document, node, error=exc,
                                    attempts=attempts, trace=ctx)
                if self.scheduler.budget_spent():
                    return _Outcome(document, node, aborted=True,
                                    attempts=attempts, trace=ctx)
                self.metrics.record_retry(service)
                delay = self.retry.delay(service, site, attempts)
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.RETRY, service=service, site=site,
                                 attempt=attempts, delay=delay,
                                 **self.kernel.obs_labels)
                await asyncio.sleep(delay)
                continue
            except TransportError as exc:
                self.metrics.exit_flight()
                if obs_bus.ACTIVE:
                    obs_bus.emit(obs_events.ATTEMPT_FAILED,
                                 document=document.name, service=service,
                                 site=site, attempt=attempts,
                                 seconds=self._loop.time() - started,
                                 reason=str(exc), timeout=False,
                                 **self.kernel.obs_labels)
                if ctx is not None:
                    obs_trace.emit_span(
                        ctx, f"invoke:!{service}", span_start,
                        time.perf_counter(), status="error",
                        site=site, attempts=attempts, reason=str(exc))
                return _Outcome(document, node, error=exc, attempts=attempts,
                                trace=ctx)
            self.metrics.exit_flight()
            self.metrics.record_success(service, self._loop.time() - started)
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.ATTEMPT_FINISHED,
                             document=document.name, service=service,
                             site=site, attempt=attempts,
                             seconds=self._loop.time() - started,
                             answers=len(forest),
                             **self.kernel.obs_labels)
            self.breaker.record_success(key)
            self._site_attempts.pop(site, None)
            deliveries = ([forest, forest]
                          if fault.kind is FaultKind.DUPLICATE else [forest])
            if ctx is not None:
                obs_trace.emit_span(
                    ctx, f"invoke:!{service}", span_start,
                    time.perf_counter(), site=site, attempts=attempts,
                    answers=len(forest))
            return _Outcome(document, node, generation=generation,
                            deliveries=deliveries, attempts=attempts,
                            trace=ctx)

    async def _attempt_once(self, request: CallRequest, fault: Fault) -> Forest:
        timeout = self.config.call_timeout
        if timeout is None and fault.kind is FaultKind.DROP:
            # With no deadline nothing would ever cancel the wait for a
            # dropped response; surface the loss immediately instead.
            raise TransportTimeout(
                f"response for {request.service!r} dropped (no call timeout)")
        coroutine = self._faulted_call(request, fault)
        if timeout is None:
            return await coroutine
        try:
            return await asyncio.wait_for(coroutine, timeout)
        except asyncio.TimeoutError:
            raise TransportTimeout(
                f"call to {request.service!r} exceeded {timeout}s") from None

    async def _faulted_call(self, request: CallRequest, fault: Fault) -> Forest:
        if fault.kind is FaultKind.ERROR:
            raise TransientServiceError(
                f"injected transient error calling {request.service!r}")
        if fault.kind is FaultKind.DROP:
            await _never()
        if fault.kind is FaultKind.DELAY:
            await asyncio.sleep(fault.delay)
        return await self.transport.call(request)

    # -- the single-writer apply step -----------------------------------

    def _apply(self, out: _Outcome) -> None:
        assert self._loop is not None
        kernel = self.kernel
        scheduler = self.scheduler
        if out.parked_for is not None:
            scheduler.park((out.document, out.node),
                           self._loop.time() + out.parked_for)
            return
        if out.stale:
            self.metrics.stale_calls += 1
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.STALE_CALL,
                             document=out.document.name,
                             service=out.node.marking.name,  # type: ignore[union-attr]
                             site=out.node.uid, **kernel.obs_labels)
            self._forget(out.node)
            return
        if out.aborted:
            # Unresolved: put the site back so the budget status is honest.
            scheduler.requeue((out.document, out.node))
            return
        service: str = out.node.marking.name  # type: ignore[union-attr]
        kernel.note_invocation(service)
        if out.error is not None:
            self.failures.append(CallFailure(
                document=out.document.name, service=service,
                site=out.node.uid, attempts=out.attempts,
                reason=str(out.error)))
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.CALL_EXHAUSTED,
                             document=out.document.name, service=service,
                             site=out.node.uid, attempts=out.attempts,
                             reason=str(out.error), **kernel.obs_labels)
            self._forget(out.node)
            return
        try:
            path = call_path(out.document, out.node)
        except StaleCallError:
            self.metrics.stale_calls += 1
            self._forget(out.node)
            return
        pre_generation = kernel.generation
        if out.trace is not None:
            # Re-activate the invocation's span around the graft so the
            # kernel stamps the record (and the freshly grafted call
            # sites) with the causing chain.
            token = obs_trace.activate(out.trace)
            try:
                inserted = kernel.apply_graft(out.document, out.node, path,
                                              out.deliveries,
                                              metrics=self.metrics)
            finally:
                obs_trace.restore(token)
        else:
            inserted = kernel.apply_graft(out.document, out.node, path,
                                          out.deliveries,
                                          metrics=self.metrics)
        if (out.generation == pre_generation
                and kernel.maybe_retire(out.document, out.node)):
            # Fire-once: the outcome reflects the pre-apply state (nothing
            # landed since its snapshot), the site's feeders are quiesced
            # and its service is provably single-shot — it is complete.
            return
        if inserted:
            scheduler.requeue((out.document, out.node))
        elif out.generation == kernel.generation:
            # Proven no-op on the current state: counts toward termination.
            scheduler.mark_tried((out.document, out.node))
        else:
            # The verdict is stale — something landed since this call read
            # its snapshot; it must be re-examined (fairness).
            scheduler.requeue((out.document, out.node))

    def _forget(self, node: Node) -> None:
        self.scheduler.forget(node)
        self._site_attempts.pop(node.uid, None)
        self.kernel.site_traces.pop(node.uid, None)


def materialize_async(system: AXMLSystem, *,
                      transport: Optional[Transport] = None,
                      config: Optional[RuntimeConfig] = None,
                      injector: Optional[FaultInjector] = None,
                      lazy_for: Optional[Sequence] = None,
                      fire_once: bool = False,
                      **config_kwargs) -> RunResult:
    """Convenience wrapper: concurrently rewrite ``system`` toward ``[I]``.

    Keyword arguments other than ``transport``/``config``/``injector``/
    ``lazy_for``/``fire_once`` are forwarded to :class:`RuntimeConfig`
    (e.g. ``concurrency=8``, ``deadline=2.0``).  Must not be called from
    inside a running event loop — use :meth:`AsyncRuntime.arun` there.
    """
    if config is not None and config_kwargs:
        raise ValueError("pass either a config object or config kwargs")
    if config is None:
        config = RuntimeConfig(**config_kwargs)
    runtime = AsyncRuntime(system, transport=transport, config=config,
                           injector=injector, lazy_for=lazy_for,
                           fire_once=fire_once)
    return runtime.run()


def materialize_peers_async(peers: Sequence[Peer], *,
                            latency=None,
                            config: Optional[RuntimeConfig] = None,
                            injector: Optional[FaultInjector] = None,
                            **config_kwargs) -> RunResult:
    """Concurrently drive a peer federation to global quiescence."""
    if config is not None and config_kwargs:
        raise ValueError("pass either a config object or config kwargs")
    if config is None:
        config = RuntimeConfig(**config_kwargs)
    runtime = AsyncRuntime.for_peers(list(peers), latency=latency,
                                     config=config, injector=injector)
    return runtime.run()
