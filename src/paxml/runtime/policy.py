"""Robustness policies for the concurrent runtime.

Remote service calls fail: they stall (timeout), error transiently, or
keep failing long enough that hammering the owner is counterproductive.
This module holds the three knobs the engine turns:

* :class:`RuntimeConfig` — one frozen bag of parameters (concurrency
  window, per-call deadline, retry budget, backoff shape, breaker
  thresholds, global budgets);
* :class:`RetryPolicy` — exponential backoff with deterministic jitter.
  The delay for attempt ``k`` of a given call site is a pure function of
  ``(seed, service, site, k)``, so a run's sleep schedule does not depend
  on task interleaving — the property tests rely on this;
* :class:`CircuitBreaker` — per ``(peer, service)`` failure isolation.
  ``threshold`` consecutive failures *open* the circuit; calls to an open
  circuit are short-circuited (parked by the engine, not counted as
  attempts) until ``cooldown`` elapses, after which one *half-open* probe
  is admitted.  A successful probe closes the circuit, a failed one
  re-opens it.

Everything here is synchronous and event-loop-free; the engine owns all
awaiting.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

BreakerKey = Tuple[str, str]  # (peer, service)


@dataclass(frozen=True)
class RuntimeConfig:
    """Parameters of one :class:`~paxml.runtime.engine.AsyncRuntime` run."""

    concurrency: int = 8           # max calls in flight at once
    call_timeout: Optional[float] = 5.0   # per-attempt deadline (seconds)
    max_attempts: int = 4          # total tries per invocation (1 = no retry)
    backoff_base: float = 0.05     # first retry delay (seconds)
    backoff_factor: float = 2.0    # exponential growth per retry
    backoff_max: float = 2.0       # delay ceiling
    jitter: float = 0.1            # ± fraction of the delay
    breaker_threshold: int = 5     # consecutive failures that trip a circuit
    breaker_cooldown: float = 1.0  # seconds an open circuit stays closed to calls
    max_invocations: Optional[int] = None  # global attempt budget
    deadline: Optional[float] = None       # global wall-clock budget (seconds)
    seed: Optional[int] = None     # drives jitter and fault schedules

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be ≥ 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be ≥ 1")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ValueError("call_timeout must be positive (or None)")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must lie in [0, 1]")


def keyed_rng(seed: Optional[int], *key: Hashable) -> random.Random:
    """A PRNG whose stream depends only on ``(seed, *key)``.

    Task interleaving must never change a retry delay or a fault decision,
    so nothing in the runtime may *share* a consumption-ordered PRNG;
    every draw derives a fresh generator from its logical coordinates.
    """
    return random.Random(f"{seed}:{':'.join(str(part) for part in key)}")


class RetryPolicy:
    """Exponential backoff with deterministic, coordinate-keyed jitter."""

    def __init__(self, config: RuntimeConfig):
        self.config = config

    def delay(self, service: str, site: Hashable, attempt: int) -> float:
        """Sleep before retrying ``attempt`` (1-based, the one that failed)."""
        config = self.config
        raw = config.backoff_base * (config.backoff_factor ** (attempt - 1))
        raw = min(raw, config.backoff_max)
        if config.jitter:
            rng = keyed_rng(config.seed, "retry", service, site, attempt)
            raw *= 1.0 + config.jitter * rng.uniform(-1.0, 1.0)
        return max(raw, 0.0)


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class _Circuit:
    state: CircuitState = CircuitState.CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_in_flight: bool = False


@dataclass
class CircuitBreaker:
    """Per-(peer, service) consecutive-failure circuit breakers."""

    threshold: int
    cooldown: float
    trips: int = 0
    _circuits: Dict[BreakerKey, _Circuit] = field(default_factory=dict)

    def _circuit(self, key: BreakerKey) -> _Circuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    def allow(self, key: BreakerKey, now: float) -> Tuple[bool, float]:
        """May a call to ``key`` proceed at time ``now``?

        Returns ``(allowed, retry_after)``; ``retry_after`` is how long the
        caller should park the call when it is not allowed (0 otherwise).
        An open circuit whose cooldown elapsed admits exactly one probe.
        """
        circuit = self._circuit(key)
        if circuit.state is CircuitState.CLOSED:
            return True, 0.0
        if circuit.state is CircuitState.OPEN:
            elapsed = now - circuit.opened_at
            if elapsed < self.cooldown:
                return False, self.cooldown - elapsed
            circuit.state = CircuitState.HALF_OPEN
            circuit.probe_in_flight = False
        if circuit.probe_in_flight:
            return False, self.cooldown
        circuit.probe_in_flight = True
        return True, 0.0

    def record_success(self, key: BreakerKey) -> None:
        circuit = self._circuit(key)
        circuit.state = CircuitState.CLOSED
        circuit.consecutive_failures = 0
        circuit.probe_in_flight = False

    def record_failure(self, key: BreakerKey, now: float) -> bool:
        """Record one failed attempt; returns True when the circuit trips."""
        circuit = self._circuit(key)
        circuit.consecutive_failures += 1
        circuit.probe_in_flight = False
        should_open = (circuit.state is CircuitState.HALF_OPEN
                       or circuit.consecutive_failures >= self.threshold)
        if should_open and circuit.state is not CircuitState.OPEN:
            circuit.state = CircuitState.OPEN
            circuit.opened_at = now
            self.trips += 1
            return True
        if should_open:
            circuit.opened_at = now
        return False

    def state_of(self, key: BreakerKey) -> CircuitState:
        return self._circuit(key).state
