"""Compiling datalog programs into simple positive AXML systems.

Generalises the paper's Example 3.2 (transitive closure).  The encoding:

* one document ``edb`` holds the extensional facts;
* one document ``idb`` holds the derived facts plus one call per rule;
* a tuple ``R(c1, …, ck)`` becomes the tree ``t_R{c0{c1}, …}`` — the
  paper writes ``t{1, 2}``, but its trees are *unordered*, so positional
  column labels ``c0, c1, …`` are required to keep ``R(1,2)`` and
  ``R(2,1)`` distinct (the paper's Example 3.1 uses exactly this labelled
  encoding; Example 3.2's bare pairs are shorthand);
* each rule becomes one service whose body patterns read ``edb`` (for EDB
  predicates) and ``idb`` (for IDB predicates) and whose head emits the
  head tuple.  All services are *simple* — datalog variables range over
  constants, never trees.

The resulting system terminates for every program (datalog has finite
least models), and its ``idb`` document carries exactly the engine's
fixpoint — asserted by :func:`facts_of_document` round-tripping.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..query.pattern import PatternNode
from ..query.rule import BodyAtom, PositiveQuery
from ..query.variables import ValueVar
from ..tree.document import Document
from ..tree.node import Label, Node, Value, fun, label, val
from ..system.service import QueryService
from ..system.system import AXMLSystem
from .engine import Fact
from .program import Atom, Constant, Program, Var

EDB_DOC = "edb"
IDB_DOC = "idb"
_TUPLE_PREFIX = "t_"
_COLUMN_PREFIX = "c"


def _tuple_tree(predicate: str, terms: Sequence[Constant]) -> Node:
    return label(
        _TUPLE_PREFIX + predicate,
        *[label(f"{_COLUMN_PREFIX}{i}", val(term)) for i, term in enumerate(terms)],
    )


def _atom_pattern(atom: Atom, var_map: Dict[Var, ValueVar]) -> PatternNode:
    columns: List[PatternNode] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Var):
            leaf = PatternNode(var_map.setdefault(term, ValueVar(term.name)))
        else:
            leaf = PatternNode(Value(term))
        columns.append(PatternNode(Label(f"{_COLUMN_PREFIX}{index}"), [leaf]))
    return PatternNode(Label(_TUPLE_PREFIX + atom.predicate), columns)


def compile_program(program: Program) -> AXMLSystem:
    """Build the simple positive system simulating ``program``."""
    idb_predicates = program.idb_predicates()

    edb_root = label("r", *[_tuple_tree(f.predicate, f.terms)
                            for f in program.facts])
    idb_children: List[Node] = []
    services: List[QueryService] = []
    for index, datalog_rule in enumerate(program.rules):
        name = f"rule{index}"
        var_map: Dict[Var, ValueVar] = {}
        body: List[BodyAtom] = []
        for atom in datalog_rule.body:
            doc = IDB_DOC if atom.predicate in idb_predicates else EDB_DOC
            body.append(BodyAtom(doc, PatternNode(Label("r"),
                                                  [_atom_pattern(atom, var_map)])))
        head = _atom_pattern(datalog_rule.head, var_map)
        services.append(QueryService(name, PositiveQuery(head, body, name=name)))
        idb_children.append(fun(name))

    return AXMLSystem(
        documents=[Document(EDB_DOC, edb_root),
                   Document(IDB_DOC, label("r", *idb_children))],
        services=services,
    )


def facts_of_document(system: AXMLSystem, document: str = IDB_DOC) -> Set[Fact]:
    """Decode the tuple trees of a document back into datalog facts."""
    facts: Set[Fact] = set()
    root = system.documents[document].root
    for child in root.children:
        if not isinstance(child.marking, Label):
            continue
        name = child.marking.name
        if not name.startswith(_TUPLE_PREFIX):
            continue
        predicate = name[len(_TUPLE_PREFIX):]
        columns: Dict[int, Constant] = {}
        for column in child.children:
            if isinstance(column.marking, Label) \
                    and column.marking.name.startswith(_COLUMN_PREFIX):
                index = int(column.marking.name[len(_COLUMN_PREFIX):])
                leaf = column.children[0]
                assert isinstance(leaf.marking, Value)
                columns[index] = leaf.marking.value  # type: ignore[assignment]
        facts.add((predicate, tuple(columns[i] for i in sorted(columns))))
    return facts


def edb_facts(program: Program) -> Set[Fact]:
    return {(f.predicate, tuple(f.terms)) for f in program.facts}
