"""Semi-naive bottom-up evaluation of positive datalog.

The reference fixpoint engine for the simulation claim of Section 3.2: the
facts it derives are exactly the tuples the compiled simple positive system
accumulates (experiment E4 checks both results and relative cost).

Semi-naive evaluation joins each rule against the *delta* of the previous
round (every new derivation must use at least one new fact), which is the
standard optimisation of the naive fixpoint; the engine can run in naive
mode too for comparison.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .program import Atom, Constant, Program, Rule, Var

Fact = Tuple[str, Tuple[Constant, ...]]


def _fact(atom: Atom) -> Fact:
    return (atom.predicate, tuple(atom.terms))  # ground by construction


@dataclass
class EvaluationResult:
    """Derived facts plus fixpoint statistics."""

    facts: Set[Fact]
    rounds: int
    derivations: int

    def relation(self, predicate: str) -> Set[Tuple[Constant, ...]]:
        return {terms for pred, terms in self.facts if pred == predicate}

    def __len__(self) -> int:
        return len(self.facts)


def _match_atom(atom: Atom, tuples: Iterable[Tuple[Constant, ...]],
                binding: Dict[Var, Constant]
                ) -> Iterable[Dict[Var, Constant]]:
    for candidate in tuples:
        extended = dict(binding)
        ok = True
        for term, value in zip(atom.terms, candidate):
            if isinstance(term, Var):
                bound = extended.get(term)
                if bound is None:
                    extended[term] = value
                elif bound != value:
                    ok = False
                    break
            elif term != value:
                ok = False
                break
        if ok:
            yield extended


def _evaluate_rule(rule: Rule,
                   total: Dict[str, Set[Tuple[Constant, ...]]],
                   delta: Optional[Dict[str, Set[Tuple[Constant, ...]]]]
                   ) -> Iterable[Fact]:
    """All head facts derivable; with ``delta`` given, at least one body
    atom must match a delta tuple (the semi-naive discipline)."""
    if not rule.body:
        # A bodiless rule is a ground fact (safety forces groundness);
        # yield it unconditionally — the caller dedupes against the total.
        yield _fact(rule.head)
        return
    positions = range(len(rule.body))
    delta_slots: Iterable[Optional[int]] = [None] if delta is None else positions
    seen: Set[Fact] = set()
    for delta_slot in delta_slots:
        bindings: List[Dict[Var, Constant]] = [{}]
        viable = True
        for index, atom in enumerate(rule.body):
            if delta is not None and index == delta_slot:
                source = delta.get(atom.predicate, set())
            else:
                source = total.get(atom.predicate, set())
            next_bindings: List[Dict[Var, Constant]] = []
            for binding in bindings:
                next_bindings.extend(_match_atom(atom, source, binding))
            bindings = next_bindings
            if not bindings:
                viable = False
                break
        if not viable:
            continue
        for binding in bindings:
            fact = _fact(rule.head.substitute(binding))
            if fact not in seen:
                seen.add(fact)
                yield fact


def evaluate(program: Program, semi_naive: bool = True,
             max_rounds: int = 100_000) -> EvaluationResult:
    """Bottom-up fixpoint of a positive program.

    Always terminates: positive datalog over a finite constant domain has a
    finite least model (the AXML contrast — Corollary 3.1 — is exactly that
    positive *AXML* does not).
    """
    total: Dict[str, Set[Tuple[Constant, ...]]] = defaultdict(set)
    for fact_atom in program.facts:
        predicate, terms = _fact(fact_atom)
        total[predicate].add(terms)
    delta: Dict[str, Set[Tuple[Constant, ...]]] = {
        predicate: set(tuples) for predicate, tuples in total.items()
    }
    rounds = 0
    derivations = 0
    while rounds < max_rounds:
        rounds += 1
        fresh: Dict[str, Set[Tuple[Constant, ...]]] = defaultdict(set)
        for rule in program.rules:
            source_delta = delta if semi_naive else None
            for predicate, terms in _evaluate_rule(rule, total, source_delta):
                if terms not in total[predicate]:
                    fresh[predicate].add(terms)
                    derivations += 1
        if not fresh:
            break
        for predicate, tuples in fresh.items():
            total[predicate] |= tuples
        delta = dict(fresh)
    facts = {(predicate, terms)
             for predicate, tuples in total.items() for terms in tuples}
    return EvaluationResult(facts=facts, rounds=rounds, derivations=derivations)
