"""Datalog substrate: the deductive-database side of Section 3.2."""

from .compile import EDB_DOC, IDB_DOC, compile_program, edb_facts, facts_of_document
from .engine import EvaluationResult, evaluate
from .program import (
    Atom,
    Program,
    Rule,
    Var,
    atom,
    rule,
    same_generation_program,
    transitive_closure_program,
)

__all__ = [
    "Atom",
    "EDB_DOC",
    "EvaluationResult",
    "IDB_DOC",
    "Program",
    "Rule",
    "Var",
    "atom",
    "compile_program",
    "edb_facts",
    "evaluate",
    "facts_of_document",
    "rule",
    "same_generation_program",
    "transitive_closure_program",
]
