"""Positive datalog: atoms, rules, programs.

The paper observes (after Example 3.2) that *any datalog program can be
simulated by a simple positive system*.  This subpackage provides the
ground truth for that claim: a standalone datalog representation, a
semi-naive bottom-up engine (:mod:`paxml.datalog.engine`), and a compiler
into simple positive AXML systems (:mod:`paxml.datalog.compile`).

Only positive datalog is modelled — no negation, no arithmetic — matching
the monotone fragment the paper works in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple, Union

Constant = Union[str, int]


@dataclass(frozen=True)
class Var:
    """A datalog variable."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


Term = Union[Var, Constant]


@dataclass(frozen=True)
class Atom:
    """``predicate(t1, …, tk)``."""

    predicate: str
    terms: Tuple[Term, ...]

    def __post_init__(self):
        if not self.predicate:
            raise ValueError("empty predicate name")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Set[Var]:
        return {term for term in self.terms if isinstance(term, Var)}

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, binding: Dict[Var, Constant]) -> "Atom":
        return Atom(self.predicate, tuple(
            binding.get(term, term) if isinstance(term, Var) else term
            for term in self.terms
        ))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Rule:
    """``head :- body``, range-restricted (head vars occur in the body)."""

    head: Atom
    body: Tuple[Atom, ...]

    def __post_init__(self):
        body_vars: Set[Var] = set()
        for atom in self.body:
            body_vars |= atom.variables()
        unsafe = self.head.variables() - body_vars
        if unsafe:
            names = sorted(v.name for v in unsafe)
            raise ValueError(f"unsafe rule: head variables {names} not in body")

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."


class Program:
    """A positive datalog program: rules plus extensional facts."""

    def __init__(self, rules: Iterable[Rule] = (), facts: Iterable[Atom] = ()):
        self.rules: List[Rule] = list(rules)
        self.facts: List[Atom] = []
        for fact in facts:
            self.add_fact(fact)
        self._check_arities()

    def add_fact(self, fact: Atom) -> None:
        if not fact.is_ground():
            raise ValueError(f"facts must be ground, got {fact}")
        self.facts.append(fact)

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)
        self._check_arities()

    def _check_arities(self) -> None:
        arity: Dict[str, int] = {}
        for atom in self.facts + [r.head for r in self.rules] \
                + [a for r in self.rules for a in r.body]:
            known = arity.setdefault(atom.predicate, atom.arity)
            if known != atom.arity:
                raise ValueError(
                    f"predicate {atom.predicate!r} used with arities "
                    f"{known} and {atom.arity}"
                )

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by rules (intensional)."""
        return {rule.head.predicate for rule in self.rules}

    def edb_predicates(self) -> Set[str]:
        """Predicates appearing only as facts / body atoms (extensional)."""
        mentioned = {fact.predicate for fact in self.facts}
        for rule in self.rules:
            mentioned |= {atom.predicate for atom in rule.body}
        return mentioned - self.idb_predicates()

    def __str__(self) -> str:
        lines = [f"{fact}." for fact in self.facts]
        lines += [str(rule) for rule in self.rules]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------


def atom(predicate: str, *terms: Term) -> Atom:
    return Atom(predicate, tuple(terms))


def rule(head: Atom, *body: Atom) -> Rule:
    return Rule(head, tuple(body))


def transitive_closure_program(edges: Sequence[Tuple[Constant, Constant]],
                               edge_pred: str = "edge",
                               tc_pred: str = "tc") -> Program:
    """The paper's running recursion: TC of a binary relation (Example 3.2)."""
    x, y, z = Var("x"), Var("y"), Var("z")
    return Program(
        rules=[
            rule(atom(tc_pred, x, y), atom(edge_pred, x, y)),
            rule(atom(tc_pred, x, y), atom(tc_pred, x, z), atom(tc_pred, z, y)),
        ],
        facts=[atom(edge_pred, a, b) for a, b in edges],
    )


def same_generation_program(parents: Sequence[Tuple[Constant, Constant]]
                            ) -> Program:
    """Classic non-linear recursion: same-generation over a parent relation."""
    x, y, xp, yp = Var("x"), Var("y"), Var("xp"), Var("yp")
    return Program(
        rules=[
            rule(atom("sg", x, x), atom("person", x)),
            rule(atom("sg", x, y),
                 atom("parent", x, xp), atom("sg", xp, yp), atom("parent", y, yp)),
            rule(atom("person", x), atom("parent", x, y)),
            rule(atom("person", y), atom("parent", x, y)),
        ],
        facts=[atom("parent", a, b) for a, b in parents],
    )
