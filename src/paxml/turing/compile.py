"""Compiling Turing machines into positive AXML systems (Lemma 3.1).

The construction follows the paper's proof sketch:

* the tape is a line tree; every configuration the machine goes through is
  accumulated, as a ``cfg`` tree, in a single document ``run`` whose root
  carries the initial configuration and one call ``!step``;
* ``step`` is a positive service (a union of *non-simple* rules — tree
  variables shuttle the untouched halves of the tape) with one rule per
  transition, plus lazy blank-padding rules for the two tape ends and a
  result-extraction rule that fires in the accept state;
* the system is monotone: configurations are only ever added, and the
  rewriting terminates exactly when the machine's reachable-configuration
  graph is finite and fully explored (for non-cycling machines: when the
  machine halts) — which is why termination of positive AXML is
  undecidable (Corollary 3.1).

Nondeterministic machines work unchanged: all branches accumulate in the
same document, mirroring :func:`paxml.turing.machine.run`'s breadth-first
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..tree.document import Document
from ..tree.node import Label, Node, fun, label
from ..system.rewriting import materialize
from ..system.service import UnionQueryService
from ..system.system import AXMLSystem
from .encoding import (
    CFG_LABEL,
    EOT_LABEL,
    LEFT_LABEL,
    RIGHT_LABEL,
    STATE_LABEL,
    configuration_to_tree,
    state_label,
    symbol_label,
    tree_to_configuration,
)
from .machine import BLANK, Configuration, Machine, Move

RUN_DOC = "run"
STEP_SERVICE = "step"
RESULT_LABEL = "result"


def _transition_rule(state: str, read: str, next_state: str, write: str,
                     move: Move) -> str:
    q, p = state_label(state), state_label(next_state)
    a, b = symbol_label(read), symbol_label(write)
    if move is Move.RIGHT:
        # Write b, push it onto the left stack, pop the right stack.
        head = f"{CFG_LABEL}{{{STATE_LABEL}{{{p}}}, {LEFT_LABEL}{{{b}{{*L}}}}, {RIGHT_LABEL}{{*R}}}}"
    else:
        # Write b, pop the left stack's top symbol @c onto the right stack.
        head = (f"{CFG_LABEL}{{{STATE_LABEL}{{{p}}}, {LEFT_LABEL}{{*L}}, "
                f"{RIGHT_LABEL}{{@c{{{b}{{*R}}}}}}}}")
    body_cfg = (f"{CFG_LABEL}{{{STATE_LABEL}{{{q}}}, "
                f"{LEFT_LABEL}{{{'@c{*L}' if move is Move.LEFT else '*L'}}}, "
                f"{RIGHT_LABEL}{{{a}{{*R}}}}}}")
    rule = f"{head} :- {RUN_DOC}/confs{{{body_cfg}}}"
    if move is Move.LEFT:
        rule += f", @c != {EOT_LABEL}"
    return rule


def _padding_rules() -> List[str]:
    blank = symbol_label(BLANK)
    pad_right = (
        f"{CFG_LABEL}{{{STATE_LABEL}{{@s}}, {LEFT_LABEL}{{*L}}, "
        f"{RIGHT_LABEL}{{{blank}{{{EOT_LABEL}}}}}}} "
        f":- {RUN_DOC}/confs{{{CFG_LABEL}{{{STATE_LABEL}{{@s}}, "
        f"{LEFT_LABEL}{{*L}}, {RIGHT_LABEL}{{{EOT_LABEL}}}}}}}"
    )
    pad_left = (
        f"{CFG_LABEL}{{{STATE_LABEL}{{@s}}, {LEFT_LABEL}{{{blank}{{{EOT_LABEL}}}}}, "
        f"{RIGHT_LABEL}{{*R}}}} "
        f":- {RUN_DOC}/confs{{{CFG_LABEL}{{{STATE_LABEL}{{@s}}, "
        f"{LEFT_LABEL}{{{EOT_LABEL}}}, {RIGHT_LABEL}{{*R}}}}}}"
    )
    return [pad_right, pad_left]


def _result_rule(machine: Machine) -> str:
    acc = state_label(machine.accept)
    return (
        f"{RESULT_LABEL}{{lft{{*L}}, rgt{{*R}}}} "
        f":- {RUN_DOC}/confs{{{CFG_LABEL}{{{STATE_LABEL}{{{acc}}}, "
        f"{LEFT_LABEL}{{*L}}, {RIGHT_LABEL}{{*R}}}}}}"
    )


def compile_machine(machine: Machine, word: str) -> AXMLSystem:
    """The positive AXML system simulating ``machine`` on ``word``."""
    rules: List[str] = []
    for options in machine.transitions.values():
        for transition in options:
            rules.append(_transition_rule(
                transition.state, transition.read,
                transition.next_state, transition.write, transition.move,
            ))
    rules.extend(_padding_rules())
    rules.append(_result_rule(machine))
    step = UnionQueryService.parse(STEP_SERVICE, ";\n".join(rules))
    assert not step.is_simple, "the TM encoding is inherently non-simple"

    initial = machine.initial_configuration(word)
    root = label("confs", fun(STEP_SERVICE), configuration_to_tree(initial))
    return AXMLSystem(documents=[Document(RUN_DOC, root)], services=[step])


@dataclass
class SimulationResult:
    accepted: bool
    terminated: bool
    steps: int
    configurations: Set[Configuration]
    result_tapes: Set[str]


def simulate(machine: Machine, word: str,
             max_steps: int = 100_000) -> SimulationResult:
    """Run the AXML simulation and decode what it accumulated.

    ``configurations`` holds every configuration tree in the run document
    (normalised); ``result_tapes`` the tapes extracted by the accept rule.
    """
    system = compile_machine(machine, word)
    outcome = materialize(system, max_steps=max_steps)
    root = system.documents[RUN_DOC].root
    configurations: Set[Configuration] = set()
    result_tapes: Set[str] = set()
    accepted = False
    for child in root.children:
        if not isinstance(child.marking, Label):
            continue
        if child.marking.name == CFG_LABEL:
            configurations.add(tree_to_configuration(child).normalized())
        elif child.marking.name == RESULT_LABEL:
            accepted = True
            result_tapes.add(_decode_result(child))
    return SimulationResult(
        accepted=accepted,
        terminated=outcome.terminated,
        steps=outcome.steps,
        configurations=configurations,
        result_tapes=result_tapes,
    )


def _decode_result(result: Node) -> str:
    from .encoding import line_to_word

    left: Tuple[str, ...] = ()
    right: Tuple[str, ...] = ()
    for child in result.children:
        if isinstance(child.marking, Label) and child.children:
            if child.marking.name == "lft":
                left = tuple(line_to_word(child.children[0]))
            elif child.marking.name == "rgt":
                right = tuple(line_to_word(child.children[0]))
    return Configuration("acc", left, right).tape()
