"""A Turing machine simulator — the substrate for Lemma 3.1.

Machines are single-tape, possibly nondeterministic, with explicit accept
and reject states.  Configurations use the two-stack representation
(state, reversed-left, right-from-head), which is exactly the shape the
AXML encoding mirrors with "line trees" (:mod:`paxml.turing.encoding`).

The paper restricts attention to non-cycling machines (its simulation
accumulates configurations monotonically); :func:`Machine.run` enforces a
step budget instead and reports whether a halting state was reached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

BLANK = "_"


class Move(enum.Enum):
    LEFT = "L"
    RIGHT = "R"


@dataclass(frozen=True)
class Transition:
    state: str
    read: str
    next_state: str
    write: str
    move: Move


@dataclass(frozen=True)
class Configuration:
    """(state, tape-left-of-head reversed, tape-from-head-on)."""

    state: str
    left: Tuple[str, ...]
    right: Tuple[str, ...]

    @property
    def head_symbol(self) -> str:
        return self.right[0] if self.right else BLANK

    def tape(self) -> str:
        """The tape contents, blanks trimmed at both ends."""
        cells = list(reversed(self.left)) + list(self.right)
        text = "".join(cells)
        return text.strip(BLANK)

    def normalized(self) -> "Configuration":
        """Trim redundant blanks at both tape ends (keeping ≥1 head cell).

        The AXML simulation pads lazily, so the same logical configuration
        can appear with different amounts of explicit blank padding; this
        is the canonical form both sides are compared in.
        """
        left = list(self.left)
        while left and left[-1] == BLANK:
            left.pop()
        right = list(self.right)
        while len(right) > 1 and right[-1] == BLANK:
            right.pop()
        if not right:
            right = [BLANK]
        return Configuration(self.state, tuple(left), tuple(right))

    def __str__(self) -> str:
        left = "".join(reversed(self.left))
        right = "".join(self.right)
        return f"{left}[{self.state}]{right}"


class Machine:
    """A (possibly nondeterministic) single-tape Turing machine."""

    def __init__(self, states: Iterable[str], alphabet: Iterable[str],
                 transitions: Iterable[Transition], initial: str,
                 accept: str, reject: Optional[str] = None):
        self.states: Set[str] = set(states)
        self.alphabet: Set[str] = set(alphabet) | {BLANK}
        self.initial = initial
        self.accept = accept
        self.reject = reject
        self.transitions: Dict[Tuple[str, str], List[Transition]] = {}
        for transition in transitions:
            if transition.state not in self.states:
                raise ValueError(f"unknown state {transition.state!r}")
            if transition.next_state not in self.states:
                raise ValueError(f"unknown state {transition.next_state!r}")
            if transition.read not in self.alphabet \
                    or transition.write not in self.alphabet:
                raise ValueError(f"unknown symbol in {transition}")
            key = (transition.state, transition.read)
            self.transitions.setdefault(key, []).append(transition)
        if initial not in self.states or accept not in self.states:
            raise ValueError("initial/accept states must be declared states")
        if reject is not None and reject not in self.states:
            raise ValueError("reject state must be a declared state")

    @property
    def is_deterministic(self) -> bool:
        return all(len(options) == 1 for options in self.transitions.values())

    def halting(self, state: str) -> bool:
        return state == self.accept or (self.reject is not None
                                        and state == self.reject)

    def initial_configuration(self, word: str) -> Configuration:
        for symbol in word:
            if symbol not in self.alphabet:
                raise ValueError(f"input symbol {symbol!r} not in the alphabet")
        return Configuration(self.initial, (), tuple(word) or (BLANK,))

    def successors(self, config: Configuration) -> List[Configuration]:
        if self.halting(config.state):
            return []
        symbol = config.head_symbol
        options = self.transitions.get((config.state, symbol), [])
        result: List[Configuration] = []
        for transition in options:
            left, right = list(config.left), list(config.right or (BLANK,))
            right[0] = transition.write
            if transition.move is Move.RIGHT:
                left.insert(0, right.pop(0))
                if not right:
                    right = [BLANK]
            else:
                if not left:
                    left = [BLANK]
                right.insert(0, left.pop(0))
            result.append(Configuration(transition.next_state,
                                        tuple(left), tuple(right)))
        return result


@dataclass
class RunResult:
    accepted: bool
    halted: bool
    steps: int
    final: Optional[Configuration]
    visited: Set[Configuration] = field(default_factory=set)


def run(machine: Machine, word: str, max_steps: int = 100_000) -> RunResult:
    """Breadth-first exploration of the configuration graph.

    For deterministic machines this is a plain run; for nondeterministic
    ones it accepts iff *some* branch accepts within the budget — the same
    "all branches accumulate" semantics as the AXML simulation.
    """
    start = machine.initial_configuration(word)
    frontier: List[Configuration] = [start]
    visited: Set[Configuration] = {start}
    steps = 0
    final: Optional[Configuration] = None
    while frontier and steps < max_steps:
        steps += 1
        next_frontier: List[Configuration] = []
        for config in frontier:
            if config.state == machine.accept:
                return RunResult(True, True, steps, config, visited)
            if machine.reject is not None and config.state == machine.reject:
                final = config
                continue
            for successor in machine.successors(config):
                if successor not in visited:
                    visited.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    halted = not frontier
    if final is None and halted:
        final = None
    return RunResult(False, halted, steps, final, visited)


# ----------------------------------------------------------------------
# a small machine zoo for tests, examples and benchmarks
# ----------------------------------------------------------------------


def unary_successor() -> Machine:
    """Appends a ``1`` to a unary number: 1^n ↦ 1^(n+1)."""
    return Machine(
        states={"scan", "write", "acc"},
        alphabet={"1"},
        transitions=[
            Transition("scan", "1", "scan", "1", Move.RIGHT),
            Transition("scan", BLANK, "write", "1", Move.RIGHT),
            Transition("write", BLANK, "acc", BLANK, Move.LEFT),
        ],
        initial="scan",
        accept="acc",
    )


def parity_checker() -> Machine:
    """Accepts words over {1} with an even number of 1s."""
    return Machine(
        states={"even", "odd", "acc", "rej"},
        alphabet={"1"},
        transitions=[
            Transition("even", "1", "odd", "1", Move.RIGHT),
            Transition("odd", "1", "even", "1", Move.RIGHT),
            Transition("even", BLANK, "acc", BLANK, Move.RIGHT),
            Transition("odd", BLANK, "rej", BLANK, Move.RIGHT),
        ],
        initial="even",
        accept="acc",
        reject="rej",
    )


def anbn_recognizer() -> Machine:
    """Accepts a^n b^n (n ≥ 1) — the classic mark-and-sweep machine."""
    return Machine(
        states={"start", "skipA", "skipB", "back", "check", "acc", "rej"},
        alphabet={"a", "b", "X", "Y"},
        transitions=[
            # Mark the first unmarked a.
            Transition("start", "a", "skipA", "X", Move.RIGHT),
            Transition("start", "Y", "check", "Y", Move.RIGHT),
            Transition("start", "b", "rej", "b", Move.RIGHT),
            Transition("start", BLANK, "rej", BLANK, Move.RIGHT),
            # Find the first unmarked b.
            Transition("skipA", "a", "skipA", "a", Move.RIGHT),
            Transition("skipA", "Y", "skipA", "Y", Move.RIGHT),
            Transition("skipA", "b", "back", "Y", Move.LEFT),
            Transition("skipA", BLANK, "rej", BLANK, Move.RIGHT),
            # Return to the leftmost unmarked a.
            Transition("back", "a", "back", "a", Move.LEFT),
            Transition("back", "Y", "back", "Y", Move.LEFT),
            Transition("back", "X", "start", "X", Move.RIGHT),
            # All a's marked: verify only Y's remain.
            Transition("check", "Y", "check", "Y", Move.RIGHT),
            Transition("check", "b", "rej", "b", Move.RIGHT),
            Transition("check", BLANK, "acc", BLANK, Move.RIGHT),
        ],
        initial="start",
        accept="acc",
        reject="rej",
    )


def binary_increment() -> Machine:
    """Increments a binary number written LSB-first: 011 (=6) ↦ 111 (=7)."""
    return Machine(
        states={"carry", "done", "acc"},
        alphabet={"0", "1"},
        transitions=[
            Transition("carry", "1", "carry", "0", Move.RIGHT),
            Transition("carry", "0", "done", "1", Move.RIGHT),
            Transition("carry", BLANK, "done", "1", Move.RIGHT),
            Transition("done", "0", "done", "0", Move.RIGHT),
            Transition("done", "1", "done", "1", Move.RIGHT),
            Transition("done", BLANK, "acc", BLANK, Move.LEFT),
        ],
        initial="carry",
        accept="acc",
    )
