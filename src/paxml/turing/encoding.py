"""Tree encodings for the Turing-machine simulation (Lemma 3.1).

The paper encodes a tape as a *line tree* ``#{a1{a2{…{an{#}}}}}``; here:

* a word ``w = w1 … wn`` becomes ``s_w1{s_w2{…{eot}}}`` — each symbol is a
  unary label node ``s_<symbol>``, terminated by the ``eot`` marker;
* a configuration becomes ``cfg{stt{<state>}, left{line}, right{line}}``,
  where ``right`` starts at the head and ``left`` is reversed (nearest
  cell outermost) — the two-stack representation of
  :class:`paxml.turing.machine.Configuration`, verbatim.

Symbols and states are sanitised into label-safe names (the blank ``_``
becomes ``s_blank``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..tree.node import Label, Node, label
from .machine import BLANK, Configuration

EOT_LABEL = "eot"
CFG_LABEL = "cfg"
STATE_LABEL = "stt"
LEFT_LABEL = "left"
RIGHT_LABEL = "right"


def symbol_label(symbol: str) -> str:
    if symbol == BLANK:
        return "s_blank"
    return f"s_{symbol}"


def state_label(state: str) -> str:
    return f"q_{state}"


def word_to_line(word: Sequence[str]) -> Node:
    """Encode a word as a line tree, innermost-first construction."""
    line = label(EOT_LABEL)
    for symbol in reversed(list(word)):
        line = Node(Label(symbol_label(symbol)), [line])
    return line


def line_to_word(line: Node) -> List[str]:
    """Decode a line tree; tolerates extra (annotation) children by taking
    the unique symbol/eot child at each level."""
    word: List[str] = []
    node: Optional[Node] = line
    while node is not None:
        if isinstance(node.marking, Label) and node.marking.name == EOT_LABEL:
            return word
        if not isinstance(node.marking, Label) \
                or not node.marking.name.startswith("s_"):
            raise ValueError(f"not a line tree at {node.marking!r}")
        name = node.marking.name[2:]
        word.append(BLANK if name == "blank" else name)
        successor = None
        for child in node.children:
            if isinstance(child.marking, Label) and (
                child.marking.name == EOT_LABEL
                or child.marking.name.startswith("s_")
            ):
                successor = child
                break
        node = successor
    raise ValueError("line tree missing its eot terminator")


def configuration_to_tree(config: Configuration) -> Node:
    return label(
        CFG_LABEL,
        label(STATE_LABEL, label(state_label(config.state))),
        label(LEFT_LABEL, word_to_line(config.left)),
        label(RIGHT_LABEL, word_to_line(config.right)),
    )


def tree_to_configuration(tree: Node) -> Configuration:
    if not (isinstance(tree.marking, Label) and tree.marking.name == CFG_LABEL):
        raise ValueError("not a configuration tree")
    state: Optional[str] = None
    left: Optional[List[str]] = None
    right: Optional[List[str]] = None
    for child in tree.children:
        if not isinstance(child.marking, Label):
            continue
        name = child.marking.name
        if name == STATE_LABEL and child.children:
            inner = child.children[0].marking
            assert isinstance(inner, Label) and inner.name.startswith("q_")
            state = inner.name[2:]
        elif name == LEFT_LABEL and child.children:
            left = line_to_word(child.children[0])
        elif name == RIGHT_LABEL and child.children:
            right = line_to_word(child.children[0])
    if state is None or left is None or right is None:
        raise ValueError("incomplete configuration tree")
    return Configuration(state, tuple(left), tuple(right))
