"""Turing machine substrate and the Lemma 3.1 simulation."""

from .compile import RUN_DOC, STEP_SERVICE, SimulationResult, compile_machine, simulate
from .encoding import (
    configuration_to_tree,
    line_to_word,
    tree_to_configuration,
    word_to_line,
)
from .machine import (
    BLANK,
    Configuration,
    Machine,
    Move,
    RunResult,
    Transition,
    anbn_recognizer,
    binary_increment,
    parity_checker,
    run,
    unary_successor,
)

__all__ = [
    "BLANK",
    "Configuration",
    "Machine",
    "Move",
    "RUN_DOC",
    "RunResult",
    "STEP_SERVICE",
    "SimulationResult",
    "Transition",
    "anbn_recognizer",
    "binary_increment",
    "compile_machine",
    "configuration_to_tree",
    "line_to_word",
    "parity_checker",
    "run",
    "simulate",
    "tree_to_configuration",
    "unary_successor",
    "word_to_line",
]
