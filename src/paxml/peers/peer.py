"""Peers: the distributed hosts of AXML documents and services (Section 6).

The paper frames AXML as P2P data management: each peer stores documents
and *offers* services; documents embed calls to services offered by other
peers, and answers stream back over the network.  Every theorem in the
paper is stated on the centralised model, with the distributed setting
discussed in the conclusion (termination "needs a distributed mechanism");
this subpackage supplies that mechanism as a deterministic simulator so
experiment E12 can exercise the stream-of-invocations semantics the formal
model abstracts (fair interleavings of deliveries ≈ fair rewritings).

A :class:`Peer` owns named documents and services.  Services evaluate over
the *owner's* documents (plus the caller-provided ``input``/``context``),
which is exactly how the paper's reserved names work: the caller ships the
parameters and context, the owner contributes its local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..tree.document import CONTEXT, INPUT, Document, Forest, RESERVED_NAMES
from ..tree.node import Node
from ..tree.parser import parse_tree
from ..query.matching import evaluate_snapshot
from ..system.invocation import (
    StaleCallError,
    build_input_tree,
    call_path,
    graft_answers,
)
from ..system.service import QueryService, Service, UnionQueryService


class PeerError(RuntimeError):
    pass


class Peer:
    """One node of the P2P network: local documents plus offered services."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("peer name must be non-empty")
        self.name = name
        self.documents: Dict[str, Document] = {}
        self.services: Dict[str, Service] = {}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def add_document(self, name: str, tree: Union[Node, str]) -> Document:
        if name in RESERVED_NAMES:
            raise PeerError(f"document name {name!r} is reserved")
        if name in self.documents:
            raise PeerError(f"peer {self.name!r} already hosts {name!r}")
        root = parse_tree(tree) if isinstance(tree, str) else tree
        document = Document(name, root)
        document.reduce()
        self.documents[name] = document
        return document

    def offer_service(self, service: Union[Service, Tuple[str, str]]) -> Service:
        if isinstance(service, tuple):
            name, text = service
            service = (UnionQueryService.parse(name, text) if ";" in text
                       else QueryService.parse(name, text))
        if service.name in self.services:
            raise PeerError(f"peer {self.name!r} already offers {service.name!r}")
        self.services[service.name] = service
        return service

    # ------------------------------------------------------------------
    # service execution (the owner side of a remote call)
    # ------------------------------------------------------------------

    def execute(self, service_name: str, input_tree: Node,
                context_tree: Optional[Node]) -> Forest:
        """Evaluate an offered service against this peer's local state."""
        service = self.services.get(service_name)
        if service is None:
            raise PeerError(f"peer {self.name!r} does not offer {service_name!r}")
        environment: Dict[str, Node] = {
            name: document.root for name, document in self.documents.items()
        }
        environment[INPUT] = input_tree
        if context_tree is not None:
            environment[CONTEXT] = context_tree
        return service.evaluate(environment)

    # ------------------------------------------------------------------
    # local call-site management (the caller side)
    # ------------------------------------------------------------------

    def call_sites(self) -> List[Tuple[Document, Node]]:
        return [(document, node)
                for document in self.documents.values()
                for node in document.root.function_nodes()]

    def graft(self, document: Document, call_node: Node,
              answers: Forest) -> List[Node]:
        """Append a (possibly remote) answer next to one of my calls."""
        try:
            path = call_path(document, call_node)
        except StaleCallError:
            return []
        return graft_answers(path, answers)

    def snapshot_query(self, query) -> Forest:
        """Evaluate a query against this peer's current local state."""
        return evaluate_snapshot(
            query, {name: doc.root for name, doc in self.documents.items()}
        )

    def total_size(self) -> int:
        return sum(document.size() for document in self.documents.values())

    def __repr__(self) -> str:
        return (f"Peer({self.name!r}, docs={sorted(self.documents)}, "
                f"services={sorted(self.services)})")
