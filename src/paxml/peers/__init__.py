"""Simulated P2P substrate: peers, the wire, and termination detection."""

from .network import (
    CallRequest,
    CallResponse,
    Mode,
    Network,
    NetworkStats,
)
from .peer import Peer, PeerError

__all__ = [
    "CallRequest",
    "CallResponse",
    "Mode",
    "Network",
    "NetworkStats",
    "Peer",
    "PeerError",
]
