"""A deterministic message-passing network of AXML peers.

Remote invocations are split into a *request* (the caller ships copies of
the call's parameters and context) and a *response* (the owner ships the
answer forest); both travel through FIFO queues, one per ordered peer
pair, so delivery is deterministic given the scheduler seed.

Two delivery modes, matching Section 2.2's discussion:

* **pull** — the caller re-issues a request for every live call whenever
  it gets scheduled; a call that brought no new data twice in a row backs
  off until some local document changes (this keeps runs finite on
  quiescent systems while preserving fairness);
* **push** — the first request subscribes the caller; the owner re-sends
  the (re-evaluated) answer whenever one of its local documents changes.
  Calls need only be activated once; the models are equivalent in the
  limit (Section 2.2), which experiment E12 demonstrates.

Termination is detected with a Dijkstra–Safra-style token: a token
carrying a message-count accumulator and a colour circulates the ring;
a peer taints the token when it received messages since its last visit or
has a call that could still produce data.  A white token returning to the
initiator with a zero global count means global quiescence.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..tree.document import Document, Forest
from ..tree.node import Node
from ..system.invocation import StaleCallError, build_input_tree, call_path
from .peer import Peer, PeerError


class Mode(enum.Enum):
    PULL = "pull"
    PUSH = "push"


@dataclass
class CallRequest:
    request_id: int
    caller: str
    callee: str
    service: str
    input_tree: Node
    context_tree: Optional[Node]
    subscribe: bool = False


@dataclass
class CallResponse:
    request_id: int
    caller: str
    callee: str
    answers: Forest


Message = object  # CallRequest | CallResponse


@dataclass
class _PendingCall:
    document: Document
    node: Node
    peer: str
    idle_rounds: int = 0
    subscribed: bool = False


@dataclass
class _Subscription:
    request: CallRequest
    last_keys: Optional[frozenset] = None


@dataclass
class NetworkStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    requests: int = 0
    responses: int = 0
    grafts: int = 0
    termination_rounds: int = 0


class Network:
    """The simulated wire plus the driver loop."""

    def __init__(self, peers: Iterable[Peer], mode: Mode = Mode.PULL,
                 seed: Optional[int] = None,
                 drop_rate: float = 0.0, duplicate_rate: float = 0.0):
        self.peers: Dict[str, Peer] = {}
        for peer in peers:
            if peer.name in self.peers:
                raise PeerError(f"duplicate peer name {peer.name!r}")
            self.peers[peer.name] = peer
        self.mode = mode
        self.rng = random.Random(seed)
        if not (0.0 <= drop_rate < 1.0) or not (0.0 <= duplicate_rate < 1.0):
            raise ValueError("failure rates must lie in [0, 1)")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.queues: Dict[Tuple[str, str], Deque[Message]] = {}
        self.stats = NetworkStats()
        self._service_owner: Dict[str, str] = {}
        for peer in self.peers.values():
            for service_name in peer.services:
                if service_name in self._service_owner:
                    raise PeerError(
                        f"service {service_name!r} offered by two peers "
                        f"({self._service_owner[service_name]!r} and {peer.name!r})"
                    )
                self._service_owner[service_name] = peer.name
        self._pending: Dict[int, _PendingCall] = {}
        self._next_request = 0
        self._calls: Dict[int, _PendingCall] = {}  # id(node) -> record
        self._subscriptions: Dict[str, List[_Subscription]] = {}
        self._dirty: Set[str] = set(self.peers)  # peers whose docs changed
        self._received_since_token: Set[str] = set(self.peers)
        self._validate()
        self._collect_calls()

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        for peer in self.peers.values():
            for document in peer.documents.values():
                for node in document.root.function_nodes():
                    name = node.marking.name  # type: ignore[union-attr]
                    if name not in self._service_owner:
                        raise PeerError(
                            f"document {document.name!r} on peer {peer.name!r} "
                            f"calls {name!r}, which no peer offers"
                        )

    def _collect_calls(self) -> None:
        for peer in self.peers.values():
            for document, node in peer.call_sites():
                self._track_call(peer.name, document, node)

    def _track_call(self, peer_name: str, document: Document, node: Node) -> None:
        if id(node) not in self._calls:
            self._calls[id(node)] = _PendingCall(document, node, peer_name)

    def owner_of(self, service: str) -> str:
        """The peer offering ``service``; :class:`PeerError` if nobody does.

        Initial documents are validated up front, but a *grafted* answer
        can embed a call to a service no peer offers; this is where such
        a call surfaces, so the error must name the culprit rather than
        leak a bare ``KeyError``.
        """
        owner = self._service_owner.get(service)
        if owner is None:
            raise PeerError(
                f"call names service {service!r}, which no peer offers "
                f"(known services: {sorted(self._service_owner)})")
        return owner

    def peer(self, name: str) -> Peer:
        """The peer called ``name``; :class:`PeerError` if unknown."""
        found = self.peers.get(name)
        if found is None:
            raise PeerError(
                f"unknown peer {name!r} (known peers: {sorted(self.peers)})")
        return found

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def _send(self, source: str, target: str, message: Message) -> None:
        """Put a message on the wire, subject to injected failures.

        Duplication is harmless by monotonicity (grafting the same answer
        twice reduces to grafting it once); loss is recovered by the pull
        mode's re-polling.  In push mode a lost first answer can stall a
        subscription until the owner's data next changes — the classic
        at-most-once hazard, observable in the failure-injection tests.
        """
        self.stats.messages_sent += 1
        if self.drop_rate and self.rng.random() < self.drop_rate:
            self.stats.messages_dropped += 1
            return
        queue = self.queues.setdefault((source, target), deque())
        queue.append(message)
        if self.duplicate_rate and self.rng.random() < self.duplicate_rate:
            self.stats.messages_duplicated += 1
            queue.append(message)

    def _issue_request(self, record: _PendingCall) -> None:
        node = record.node
        try:
            path = call_path(record.document, node)
        except StaleCallError:
            return
        service = node.marking.name  # type: ignore[union-attr]
        owner = self.owner_of(service)
        request = CallRequest(
            request_id=self._next_request,
            caller=record.peer,
            callee=owner,
            service=service,
            input_tree=build_input_tree(node),
            context_tree=path[-2].copy(),
            subscribe=self.mode is Mode.PUSH,
        )
        self._next_request += 1
        self._pending[request.request_id] = record
        self.stats.requests += 1
        self._send(record.peer, owner, request)

    def _handle_request(self, owner: Peer, request: CallRequest) -> None:
        answers = owner.execute(request.service, request.input_tree,
                                request.context_tree)
        response = CallResponse(request.request_id, request.caller,
                                request.callee, answers)
        self.stats.responses += 1
        self._send(owner.name, request.caller, response)
        if request.subscribe:
            subscription = _Subscription(request, answers.canonical_keys())
            self._subscriptions.setdefault(owner.name, []).append(subscription)

    def _handle_response(self, caller: Peer, response: CallResponse) -> None:
        record = self._pending.get(response.request_id)
        if record is None:
            return
        inserted = caller.graft(record.document, record.node, response.answers)
        if inserted:
            self.stats.grafts += len(inserted)
            record.idle_rounds = 0
            self._dirty.add(caller.name)
            for tree in inserted:
                for node in tree.iter_nodes():
                    if node.is_function:
                        self._track_call(caller.name, record.document, node)
        else:
            record.idle_rounds += 1

    def _replay_subscriptions(self, owner: Peer) -> None:
        for subscription in self._subscriptions.get(owner.name, ()):
            answers = owner.execute(subscription.request.service,
                                    subscription.request.input_tree,
                                    subscription.request.context_tree)
            keys = answers.canonical_keys()
            if keys != subscription.last_keys:
                subscription.last_keys = keys
                response = CallResponse(subscription.request.request_id,
                                        subscription.request.caller,
                                        owner.name, answers)
                self.stats.responses += 1
                self._send(owner.name, subscription.request.caller, response)

    # ------------------------------------------------------------------
    # the driver loop
    # ------------------------------------------------------------------

    def _deliver_one(self) -> bool:
        """Deliver one message from a random non-empty queue."""
        occupied = [key for key, queue in self.queues.items() if queue]
        if not occupied:
            return False
        source, target = occupied[self.rng.randrange(len(occupied))]
        message = self.queues[(source, target)].popleft()
        self.stats.messages_delivered += 1
        peer = self.peer(target)
        self._received_since_token.add(target)
        if isinstance(message, CallRequest):
            self._handle_request(peer, message)
        else:
            self._handle_response(peer, message)
        return True

    def _issue_round(self) -> int:
        """Let every peer (re-)activate its live calls; returns #requests."""
        issued = 0
        for record in list(self._calls.values()):
            if self.mode is Mode.PUSH and record.subscribed:
                continue
            if self.mode is Mode.PULL and record.idle_rounds >= 2 \
                    and not self._dirty:
                continue  # back off until something changes *anywhere*:
                # answers depend on the owner's documents, which another
                # peer's graft may have fed, so only global quiet justifies
                # skipping a poll.
            self._issue_request(record)
            record.subscribed = True
            issued += 1
        self._dirty.clear()
        return issued

    def _push_round(self) -> None:
        for peer_name in list(self._dirty):
            self._replay_subscriptions(self.peers[peer_name])

    def quiescent(self) -> bool:
        """Global quiescence: empty wires and no call could produce data.

        This is the ground truth the token protocol is validated against.
        """
        if any(queue for queue in self.queues.values()):
            return False
        for record in self._calls.values():
            node = record.node
            try:
                path = call_path(record.document, node)
            except StaleCallError:
                continue
            owner = self.peers[self.owner_of(node.marking.name)]  # type: ignore[union-attr]
            answers = owner.execute(node.marking.name,  # type: ignore[union-attr]
                                    build_input_tree(node), path[-2])
            from ..system.invocation import new_answers

            if new_answers(path[-2], answers):
                return False
        return True

    def run(self, max_rounds: int = 10_000) -> NetworkStats:
        """Drive the network to quiescence (or the round budget).

        Each round: (pull) re-issue live calls / (push) replay dirty
        subscriptions, then drain the wires in random order.  The
        Safra-style token is circulated between rounds; the run stops when
        the token certifies two consecutive silent rounds.
        """
        # Under injected loss a silent round may just mean "everything got
        # dropped"; demand proportionally more consecutive silent tokens
        # before declaring quiescence.
        needed_silent = 2 if not self.drop_rate else max(
            3, int(12 * self.drop_rate) + 2
        )
        silent_tokens = 0
        for _round in range(max_rounds):
            if self.mode is Mode.PULL:
                self._issue_round()
            else:
                newly = [r for r in self._calls.values() if not r.subscribed]
                for record in newly:
                    self._issue_request(record)
                    record.subscribed = True
                self._push_round()
                self._dirty.clear()
            progressed = False
            while self._deliver_one():
                progressed = True
            # Token circulation: the token stays white when no peer
            # received a message since its last visit; the simulation
            # delivers everything within the round, so "no deliveries this
            # round" is exactly "every peer stayed white".
            self._received_since_token.clear()
            if progressed:
                silent_tokens = 0
            else:
                self.stats.termination_rounds += 1
                silent_tokens += 1
                if silent_tokens >= needed_silent:
                    return self.stats
        return self.stats

    # ------------------------------------------------------------------

    def total_size(self) -> int:
        return sum(peer.total_size() for peer in self.peers.values())
