"""Seeded workload generators for tests, examples and benchmarks.

Everything is deterministic given a seed, so experiment rows are
reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..tree.document import Document
from ..tree.node import FunName, Label, Node, Value, fun, label, val
from ..system.service import QueryService
from ..system.system import AXMLSystem

Edge = Tuple[int, int]


# ----------------------------------------------------------------------
# random trees (experiment E1: subsumption / reduction scaling)
# ----------------------------------------------------------------------


def random_tree(size: int, seed: int = 0, label_pool: int = 5,
                value_pool: int = 8, max_fanout: int = 4,
                function_pool: int = 0) -> Node:
    """A random tree with exactly ``size`` nodes.

    Small label pools make sibling subsumption (hence reduction work)
    likely; large pools make trees near-reduced.
    """
    if size < 1:
        raise ValueError("size must be ≥ 1")
    rng = random.Random(seed)
    labels = [f"l{i}" for i in range(label_pool)]
    functions = [f"f{i}" for i in range(function_pool)]
    root = label(rng.choice(labels))
    open_nodes: List[Node] = [root]
    for _ in range(size - 1):
        parent = rng.choice(open_nodes)
        kind = rng.random()
        if functions and kind < 0.1:
            child = fun(rng.choice(functions))
        elif kind < 0.3:
            child = val(rng.randrange(value_pool))
        else:
            child = label(rng.choice(labels))
        parent.add_child(child)
        if not child.is_value:
            open_nodes.append(child)
        if len(parent.children) >= max_fanout:
            open_nodes[:] = [n for n in open_nodes if n is not parent]
            if not open_nodes:
                open_nodes.append(child if not child.is_value else root)
    return root


def duplicate_heavy_tree(size: int, seed: int = 0) -> Node:
    """A tree with many equivalent siblings — worst-ish case for reduction."""
    return random_tree(size, seed=seed, label_pool=2, value_pool=2, max_fanout=8)


# ----------------------------------------------------------------------
# relations (experiments E3, E4, E10)
# ----------------------------------------------------------------------


def chain_edges(n: int) -> List[Edge]:
    return [(i, i + 1) for i in range(n)]


def cycle_edges(n: int) -> List[Edge]:
    return chain_edges(n - 1) + [(n - 1, 0)]


def random_edges(n: int, m: int, seed: int = 0) -> List[Edge]:
    if m > n * n:
        raise ValueError(f"cannot draw {m} distinct edges over {n} nodes")
    rng = random.Random(seed)
    seen: Set[Edge] = set()
    while len(seen) < m:
        seen.add((rng.randrange(n), rng.randrange(n)))
    return sorted(seen)


def grid_edges(width: int, height: int) -> List[Edge]:
    """Edges of a directed grid, nodes numbered row-major."""
    edges: List[Edge] = []
    for row in range(height):
        for col in range(width):
            node = row * width + col
            if col + 1 < width:
                edges.append((node, node + 1))
            if row + 1 < height:
                edges.append((node, node + width))
    return edges


def relation_tree(edges: Sequence[Edge], relation: str = "t") -> Node:
    """Encode a binary relation as ``r{t{c0{a}, c1{b}}, …}`` (Example 3.1)."""
    return label("r", *[
        label(relation, label("c0", val(a)), label("c1", val(b)))
        for a, b in edges
    ])


def tc_system(edges: Sequence[Edge]) -> AXMLSystem:
    """The paper's Example 3.2, parameterised by the base relation."""
    return AXMLSystem.build(
        documents={"d0": relation_tree(edges), "d1": "r{!g, !f}"},
        services={
            "g": "t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}",
            "f": "t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}",
        },
    )


# ----------------------------------------------------------------------
# portal workloads (experiments E2, E8, E12)
# ----------------------------------------------------------------------


def portal_system(n_cds: int, materialized_fraction: float = 0.5,
                  n_irrelevant: int = 5, seed: int = 0) -> AXMLSystem:
    """The paper's jazz-portal scenario, scaled.

    ``n_cds`` cd entries; a fraction carry an explicit rating, the rest an
    embedded ``!GetRating`` call.  ``n_irrelevant`` extra branches hold
    calls a ratings query never needs (``!FreeMusicDB``), giving lazy
    evaluation something to skip.
    """
    rng = random.Random(seed)
    cds: List[Node] = []
    ratings_entries: List[Node] = []
    for index in range(n_cds):
        title = f"song-{index}"
        stars = str(1 + rng.randrange(5))
        entry = [label("title", val(title)), label("singer", val(f"artist-{index % 7}"))]
        if rng.random() < materialized_fraction:
            entry.append(label("rating", val(stars)))
        else:
            entry.append(fun("GetRating", val(title)))
        ratings_entries.append(
            label("entry", label("song", val(title)), label("stars", val(stars)))
        )
        cds.append(label("cd", *entry))
    promos = label("promos", *[
        fun("FreeMusicDB", label("type", val(f"genre-{i}")))
        for i in range(n_irrelevant)
    ])
    directory = label("directory", *cds, promos)
    music_items = label("db", *[
        label("item", label("title", val(f"free-{i}"))) for i in range(3)
    ])
    return AXMLSystem.build(
        documents={
            "portal": Document("portal", directory),
            "ratingsdb": Document("ratingsdb", label("db", *ratings_entries)),
            "musicdb": Document("musicdb", music_items),
        },
        services={
            "GetRating": "rating{$s} :- input/input{$t}, "
                         "ratingsdb/db{entry{song{$t}, stars{$s}}}",
            "FreeMusicDB": "cd{title{$t}} :- musicdb/db{item{title{$t}}}",
        },
    )


# ----------------------------------------------------------------------
# simple-system families (experiments E5, E6)
# ----------------------------------------------------------------------


def nesting_chain_system(depth: int, diverge: bool) -> AXMLSystem:
    """A family of simple systems with a chain of nesting services.

    ``f0`` emits a call to ``f1``, which emits one to ``f2``, … — ``depth``
    levels.  With ``diverge=True`` the last service loops back to itself
    (Example 2.1 generalised); otherwise the chain bottoms out and the
    system terminates.  Configuration count grows with ``depth``, which is
    what makes the termination decision's cost scale (experiment E6).
    """
    if depth < 1:
        raise ValueError("depth must be ≥ 1")
    services: Dict[str, str] = {}
    for level in range(depth - 1):
        services[f"f{level}"] = f"n{level}{{!f{level + 1}}} :- "
    last = depth - 1
    if diverge:
        services[f"f{last}"] = f"n{last}{{!f{last}}} :- "
    else:
        services[f"f{last}"] = f"n{last}{{leaf}} :- "
    return AXMLSystem.build(documents={"d": "root{!f0}"}, services=services)


def random_acyclic_system(n_layers: int, seed: int = 0,
                          values_per_doc: int = 4) -> AXMLSystem:
    """A random acyclic system: layer k's services read only layer k-1.

    Layer 0 is a plain data document; each higher layer holds a document
    with calls to services that project values out of the layer below and
    re-emit them (wrapped one level deeper).  Acyclic by construction, so
    it always terminates (Section 3.2) — the workload for confluence and
    fire-once property tests.
    """
    if n_layers < 1:
        raise ValueError("need at least one layer")
    rng = random.Random(seed)
    documents: Dict[str, Node] = {
        "doc0": label("layer0", *[
            label("item", val(rng.randrange(10))) for _ in range(values_per_doc)
        ])
    }
    services: Dict[str, str] = {}
    for layer in range(1, n_layers):
        below = f"doc{layer - 1}"
        name = f"lift{layer}"
        services[name] = (
            f"item{{w{layer}{{$x}}}} :- {below}/@r{{item{{$x}}}}"
            if layer == 1 else
            f"item{{w{layer}{{$x}}}} :- {below}/@r{{item{{w{layer - 1}{{$x}}}}}}"
        )
        documents[f"doc{layer}"] = label(f"layer{layer}", fun(name))
    return AXMLSystem.build(documents=documents, services=services)


def fanout_divergent_system(width: int) -> AXMLSystem:
    """A divergent simple system whose loop has ``width`` parallel branches."""
    body_calls = ", ".join(f"!f{i}" for i in range(width))
    services = {
        f"f{i}": f"grow{{{body_calls}}} :- " for i in range(width)
    }
    return AXMLSystem.build(
        documents={"d": f"root{{{body_calls}}}"}, services=services
    )
