"""Deterministic workload generators for tests and benchmarks."""

from .generators import (
    random_acyclic_system,
    chain_edges,
    cycle_edges,
    duplicate_heavy_tree,
    fanout_divergent_system,
    grid_edges,
    nesting_chain_system,
    portal_system,
    random_edges,
    random_tree,
    relation_tree,
    tc_system,
)

__all__ = [
    "random_acyclic_system",
    "chain_edges",
    "cycle_edges",
    "duplicate_heavy_tree",
    "fanout_divergent_system",
    "grid_edges",
    "nesting_chain_system",
    "portal_system",
    "random_edges",
    "random_tree",
    "relation_tree",
    "tc_system",
]
