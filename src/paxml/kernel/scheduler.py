"""The shared two-queue fair call scheduler.

Both engines used to carry their own copy of the same machinery —
``_fresh``/``_tried`` deques, an enqueued-uid set, ``_promote_tried`` —
plus async-only extras (parking for circuit-breaker cooldowns, an attempt
budget).  This class is that machinery extracted once, with the extras
folded in behind capabilities that the sequential engine simply never
uses.

Invariant (the termination certificate of both engines): ``_tried`` holds
exactly the live calls proven to be no-ops since the last productive
graft.  A run terminates when ``_fresh`` is empty and nothing is in
flight or parked — every live call is then a proven no-op on the current
state, so no fair continuation can add data (Theorem 2.1 makes the limit
order-independent, which is also what lets a checkpointed frontier be
resumed by *either* engine).

Scheduling is O(1) amortised: a step pops from ``_fresh`` in O(1), the
termination test is ``not _fresh``, and a productive step promotes
``_tried`` back wholesale — each entry moves at most once per productive
step.  ``promote_front`` controls whether promoted entries re-enter ahead
of the untried remainder (the sequential engine's historical order) or
behind it (the async runtime's); both orders are fair.
"""

from __future__ import annotations

import random
from collections import deque
from typing import (Callable, Container, Deque, Dict, Iterable, List,
                    Optional, Sequence, Set, Tuple)

from .. import perf
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..tree.document import Document
from ..tree.node import Node

Site = Tuple[Document, Node]

SchedulerPolicy = str  # "round_robin" | "random" | "lifo"

POLICIES = ("round_robin", "random", "lifo")


class CallScheduler:
    """Two-queue fair scheduling over live call sites (see module docstring).

    Capabilities beyond the core two queues:

    * ``park(site, ready_at)`` / ``unpark(now)`` — a site held back until a
      circuit-breaker cooldown expires (async runtime);
    * ``budget`` / ``note_attempt()`` / ``budget_spent()`` — a global
      attempt budget (async runtime's ``max_invocations``);
    * ``suppressed`` — call nodes excluded from scheduling entirely, which
      is how ``[I↓N]`` runs are driven (sequential engine);
    * ``relevance`` — an optional predicate over call nodes (the lazy
      kernel installs the weak-relevance test): sites failing it are
      *dormant* — tracked but never popped — until :meth:`promote`
      wakes them.  Quiescence with dormant sites remaining is weak
      q-stability, not full termination;
    * ``retire(site)`` — the fire-once policy's terminal state: a retired
      site is never re-enqueued (but :meth:`unretire_all` can revive the
      whole set when external data arrives).
    """

    def __init__(self, policy: SchedulerPolicy = "round_robin",
                 seed: Optional[int] = None,
                 suppressed: Optional[Iterable[Node]] = None,
                 budget: Optional[int] = None,
                 promote_front: bool = True):
        if policy not in POLICIES:
            raise ValueError(f"unknown scheduler {policy!r}")
        self.policy = policy
        self.seed = seed
        self.rng = random.Random(seed)
        self.suppressed_uids: Set[int] = {n.uid for n in (suppressed or ())}
        self.budget = budget
        self.promote_front = promote_front
        self.attempts = 0
        self._fresh: Deque[Site] = deque()
        self._tried: Deque[Site] = deque()
        self._parked: List[Tuple[float, Site]] = []
        self._enqueued: Set[int] = set()
        # -- lazy scheduling (PR 10) --
        self.relevance: Optional[Callable[[Node], bool]] = None
        self._dormant: Dict[int, Site] = {}
        self._retired: Dict[int, Site] = {}
        self._live: Dict[str, int] = {}
        self.skipped_unneeded = 0
        self.dormant_promotions = 0
        self.fire_once_retired = 0

    # ------------------------------------------------------------------
    # queue maintenance
    # ------------------------------------------------------------------

    def enqueue(self, document: Document, node: Node) -> bool:
        """Schedule a call site once; no-op for duplicates and suppressed.

        Retired sites are refused outright; sites failing the relevance
        predicate are tracked as dormant (returned ``False``: the site is
        known, but will not be popped until a graft promotes it).
        """
        if node.uid in self._enqueued or node.uid in self.suppressed_uids \
                or node.uid in self._retired:
            return False
        if self.relevance is not None and not self.relevance(node):
            self._enqueued.add(node.uid)
            self._note_live(node, +1)
            self._dormant[node.uid] = (document, node)
            self.skipped_unneeded += 1
            perf.stats.calls_skipped_unneeded += 1
            return False
        self._enqueued.add(node.uid)
        self._note_live(node, +1)
        self._fresh.append((document, node))
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.CALL_SCHEDULED, document=document.name,
                         service=node.marking.name,  # type: ignore[union-attr]
                         site=node.uid)
        return True

    def enqueue_trees(self, document: Document,
                      trees: Sequence[Node]) -> None:
        """Schedule every call node inside freshly grafted subtrees."""
        for tree in trees:
            for node in tree.iter_nodes():
                if node.is_function:
                    self.enqueue(document, node)

    def requeue(self, site: Site) -> None:
        """Put an already-enqueued site back in the untried queue."""
        if self._divert(site):
            return
        self._fresh.append(site)

    def mark_tried(self, site: Site) -> None:
        """Record a proven no-op verdict for the current state."""
        if self._divert(site):
            return
        self._tried.append(site)

    def _divert(self, site: Site) -> bool:
        """Route a returning site to retired/dormant instead of a queue."""
        node = site[1]
        if node.uid in self._retired:
            return True
        if self.relevance is not None and not self.relevance(node):
            self._dormant[node.uid] = site
            return True
        return False

    def promote_tried(self) -> None:
        """After a productive step every no-op verdict is void again."""
        if not self._tried:
            return
        if self.promote_front:
            self._tried.extend(self._fresh)
            self._fresh = self._tried
            self._tried = deque()
        else:
            self._fresh.extend(self._tried)
            self._tried.clear()

    def forget(self, node: Node) -> None:
        """Drop a stale/failed call from the enqueued set for good."""
        if node.uid in self._retired:
            return
        if node.uid in self._enqueued:
            self._enqueued.discard(node.uid)
            self._note_live(node, -1)
        self._dormant.pop(node.uid, None)

    def pop(self) -> Site:
        """Pick the next untried call in O(1) (O(1) expected for random).

        The caller guarantees ``_fresh`` is non-empty.  Round-robin pops
        the oldest untried entry, LIFO the newest; random swaps a uniform
        entry to the end first (order inside ``_fresh`` is irrelevant
        then).
        """
        if self.policy == "round_robin":
            return self._fresh.popleft()
        if self.policy == "lifo":
            return self._fresh.pop()
        index = self.rng.randrange(len(self._fresh))
        if index != len(self._fresh) - 1:
            self._fresh[index], self._fresh[-1] = (self._fresh[-1],
                                                   self._fresh[index])
        return self._fresh.pop()

    # ------------------------------------------------------------------
    # parking (circuit-breaker cooldowns)
    # ------------------------------------------------------------------

    def park(self, site: Site, ready_at: float) -> None:
        self._parked.append((ready_at, site))

    def unpark(self, now: float) -> int:
        """Move every cooled-down parked site back to ``fresh``."""
        if not self._parked:
            return 0
        still_parked = []
        moved = 0
        for ready_at, site in self._parked:
            if ready_at <= now:
                self._fresh.append(site)
                moved += 1
            else:
                still_parked.append((ready_at, site))
        self._parked = still_parked
        return moved

    def next_parked_ready(self) -> Optional[float]:
        if not self._parked:
            return None
        return min(ready for ready, _ in self._parked)

    # ------------------------------------------------------------------
    # lazy scheduling: the dormant queue and fire-once retirement
    # ------------------------------------------------------------------

    def _note_live(self, node: Node, delta: int) -> None:
        """Track live (enqueued, not retired) sites per service name."""
        name = node.marking.name  # type: ignore[union-attr]
        self._live[name] = self._live.get(name, 0) + delta

    def live_count(self, service: str) -> int:
        """Live sites of one service — fire-once's feeder-quiescence test."""
        return self._live.get(service, 0)

    def promote(self, uids: Container[int]) -> int:
        """Wake every dormant site whose uid is in ``uids``; returns count.

        Called when a graft (or a reseed) made sites weakly relevant
        again — the lazy counterpart of :meth:`promote_tried`.
        """
        ready = [uid for uid in self._dormant if uid in uids]
        for uid in ready:
            document, node = self._dormant.pop(uid)
            self._fresh.append((document, node))
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.CALL_SCHEDULED,
                             document=document.name,
                             service=node.marking.name,  # type: ignore[union-attr]
                             site=node.uid)
        self.dormant_promotions += len(ready)
        perf.stats.dormant_promotions += len(ready)
        return len(ready)

    def wake_all_dormant(self) -> int:
        """Promote every dormant site (lazy mode switched off / torn down)."""
        woken = len(self._dormant)
        for site in self._dormant.values():
            self._fresh.append(site)
        self._dormant.clear()
        return woken

    def demote_irrelevant(self) -> int:
        """Move queued sites failing the relevance predicate to dormant.

        Only a *reseed* (goal-set shrink) needs this — graft deltas are
        monotone and never un-relevance a site.
        """
        if self.relevance is None:
            return 0
        moved = 0
        for attr in ("_fresh", "_tried"):
            queue = getattr(self, attr)
            keep: Deque[Site] = deque()
            for site in queue:
                if self.relevance(site[1]):
                    keep.append(site)
                else:
                    self._dormant[site[1].uid] = site
                    moved += 1
            setattr(self, attr, keep)
        still_parked = []
        for ready_at, site in self._parked:
            if self.relevance(site[1]):
                still_parked.append((ready_at, site))
            else:
                self._dormant[site[1].uid] = site
                moved += 1
        self._parked = still_parked
        if moved:
            self.skipped_unneeded += moved
            perf.stats.calls_skipped_unneeded += moved
        return moved

    def retire(self, site: Site) -> None:
        """Permanently drop a site (fire-once: provably complete).

        The site must not currently sit in a queue (engines retire right
        after the popped invocation's graft is applied).  The uid stays in
        ``_enqueued`` so duplicate enqueues keep bouncing, but it no
        longer counts as live.
        """
        node = site[1]
        if node.uid in self._retired:
            return
        self._retired[node.uid] = site
        self._dormant.pop(node.uid, None)
        if node.uid in self._enqueued:
            self._note_live(node, -1)
        else:
            self._enqueued.add(node.uid)
        self.fire_once_retired += 1
        perf.stats.fire_once_retired += 1

    def unretire_all(self) -> int:
        """Revive every retired site (external data may re-feed them)."""
        revived = len(self._retired)
        for site in self._retired.values():
            self._note_live(site[1], +1)
            if self.relevance is not None and not self.relevance(site[1]):
                self._dormant[site[1].uid] = site
            else:
                self._fresh.append(site)
        self._retired.clear()
        return revived

    def dormant_count(self) -> int:
        return len(self._dormant)

    def retired_count(self) -> int:
        return len(self._retired)

    def dormant_uids(self) -> Set[int]:
        return set(self._dormant)

    # ------------------------------------------------------------------
    # attempt budget
    # ------------------------------------------------------------------

    def note_attempt(self) -> None:
        self.attempts += 1

    def budget_spent(self) -> bool:
        return self.budget is not None and self.attempts >= self.budget

    def grant(self, extra: int) -> None:
        """Lease ``extra`` more attempts from the current position.

        Sets the budget to ``attempts + extra``: the admission layer's
        slice primitive — each tenant slice grants a bounded lease, runs
        until ``budget_spent()``, and fairness across tenants falls out
        of rotating the leases.
        """
        self.budget = self.attempts + extra

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------

    def has_fresh(self) -> bool:
        return bool(self._fresh)

    def fresh_count(self) -> int:
        return len(self._fresh)

    def tried_count(self) -> int:
        return len(self._tried)

    def parked_count(self) -> int:
        return len(self._parked)

    def is_enqueued(self, node: Node) -> bool:
        return node.uid in self._enqueued

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def frontier(self, extra_fresh: Sequence[Site] = ()) -> Dict[str, object]:
        """The scheduler state as a JSON-safe dict.

        Parked sites are folded into ``fresh`` (their cooldown clock does
        not survive a process boundary; retrying early is always sound),
        as are ``extra_fresh`` sites — the async runtime passes its
        in-flight sites here, since their outcomes die with the crash.
        """
        fresh = ([[d.name, n.uid] for d, n in extra_fresh]
                 + [[d.name, n.uid] for d, n in self._fresh]
                 + [[d.name, n.uid] for _, (d, n) in self._parked])
        frontier: Dict[str, object] = {
            "policy": self.policy,
            "seed": self.seed,
            "attempts": self.attempts,
            "suppressed": sorted(self.suppressed_uids),
            "fresh": fresh,
            "tried": [[d.name, n.uid] for d, n in self._tried],
        }
        if self._dormant:
            frontier["dormant"] = [[d.name, n.uid]
                                   for d, n in self._dormant.values()]
        if self._retired:
            frontier["retired"] = [[d.name, n.uid]
                                   for d, n in self._retired.values()]
        return frontier

    def restore_frontier(self, frontier: Dict[str, object],
                         resolve) -> None:
        """Rebuild the queues from a :meth:`frontier` dict.

        ``resolve(document_name, uid)`` maps a frontier entry back to a
        live ``(document, node)`` pair, or ``None`` when the node no
        longer exists (e.g. pruned by a replay divergence) — such entries
        are dropped, which is sound because a vanished call is subsumed.
        """
        self.attempts = int(frontier.get("attempts", 0))
        self.suppressed_uids = set(frontier.get("suppressed", ()))
        for name, uid in frontier.get("retired", ()):
            site = resolve(name, uid)
            if site is None:
                continue
            if site[1].uid not in self._retired:
                self._retired[site[1].uid] = site
                self._enqueued.add(site[1].uid)
        for bucket, append in (("fresh", self._fresh.append),
                               ("tried", self._tried.append),
                               ("dormant",
                                lambda s: self._dormant.__setitem__(
                                    s[1].uid, s))):
            for name, uid in frontier.get(bucket, ()):
                site = resolve(name, uid)
                if site is None:
                    continue
                node = site[1]
                if node.uid in self._enqueued:
                    continue
                self._enqueued.add(node.uid)
                self._note_live(node, +1)
                append(site)
