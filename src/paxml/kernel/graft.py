"""The transactional graft log.

Every productive graft the kernel applies becomes one serializable
:class:`GraftRecord`: the call site's uid, the service name, the target
document, the step ordinal, and the inserted answer trees in the
uid-stable wire form of :func:`paxml.tree.serializer.to_wire`.  The log
is the durable half of checkpointing — replaying it against a seed
snapshot of the documents reconstructs the checkpointed state
deterministically (grafting is deterministic given identical prior
state, and wire trees carry their original uids, so even the node
identities the scheduler frontier refers to are reproduced).

Retention is governed by ``perf.flags.graft_log``; with the flag off the
kernel appends nothing (PR 4 behaviour, for memory-constrained runs) and
a checkpoint falls back to the fresh document snapshot alone — still
resumable, just not replayable.

The log doubles as the shard replication stream (PR 9): workers ship
their new records to peers, which apply them to replica documents and
append them shard-tagged (``record.shard``) to their own logs.  For that
traffic — and for checkpoint bundles, whose graft tail dominates the
file — this module also provides the compact batched wire codec
(:func:`encode_batch` / :func:`decode_batch`): length-prefixed binary
framing with a per-batch interned string table, so a label or service
name appearing in a thousand records costs its bytes once.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .. import perf


@dataclass
class GraftRecord:
    """One applied graft, in fully serializable form.

    ``trees`` holds the inserted answer trees as wire dicts (marking,
    uid, version, children — see ``paxml.tree.serializer.to_wire``).
    ``obs`` optionally carries the ``graft_applied`` event payloads
    (canonical text plus staged provenance) captured when tracing was
    active at graft time; resume re-emits them so derivation provenance
    survives a crash.  ``trace`` optionally carries the causal
    :class:`paxml.obs.trace.TraceContext` wire dict of the request chain
    that produced the graft (the end-to-end causality contract: the same
    ``trace_id`` shows up on the subscription deltas and flight-recorder
    entries this graft caused).  ``shard`` tags records that crossed a
    shard boundary with the *originating* shard id (``None`` for grafts
    this process computed itself), so a sharded worker's log records
    which peer each replicated graft came from.
    """

    step: int
    document: str
    service: str
    site: int
    trees: List[Dict[str, Any]]
    obs: Optional[List[Dict[str, Any]]] = None
    trace: Optional[Dict[str, Any]] = None
    shard: Optional[int] = None

    def to_json_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "step": self.step, "document": self.document,
            "service": self.service, "site": self.site, "trees": self.trees,
        }
        if self.obs is not None:
            record["obs"] = self.obs
        if self.trace is not None:
            record["trace"] = self.trace
        if self.shard is not None:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any]) -> "GraftRecord":
        return cls(step=record["step"], document=record["document"],
                   service=record["service"], site=record["site"],
                   trees=record["trees"], obs=record.get("obs"),
                   trace=record.get("trace"), shard=record.get("shard"))


class GraftLog:
    """An append-only list of :class:`GraftRecord`, optionally retained.

    ``base_step`` is the step ordinal the retained tail starts after —
    zero for a log grown from the seed snapshot, the checkpoint's step
    count for a log carried across a resume whose bundle had retention
    off (the seed is then the resumed snapshot itself).
    """

    def __init__(self, retain: bool = True, base_step: int = 0):
        self.retain = retain
        self.base_step = base_step
        self.records: List[GraftRecord] = []

    def append(self, record: GraftRecord) -> None:
        if not self.retain:
            return
        self.records.append(record)
        perf.stats.graft_log_records += 1

    def tail(self, n: int) -> List[GraftRecord]:
        return self.records[-n:] if n else []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


# ----------------------------------------------------------------------
# Compact batched wire codec.
#
# Layout (all integers LEB128 varints unless noted):
#
#   magic  b"PXG1"
#   varint string-count, then per string: varint byte-length + UTF-8 bytes
#   varint record-count, then per record:
#     varint step · varint document-ref · varint service-ref · varint site
#     flag byte (1=obs, 2=trace, 4=shard) · [varint shard]
#     varint tree-count · trees
#     [varint length + UTF-8 JSON] for obs, then trace, when flagged
#
# A tree is: marking tag byte (0 label-ref, 1 funname-ref, 2 string-value
# ref, 3 zigzag-varint int, 4 float64 big-endian, 5 true, 6 false),
# varint uid · varint version · varint child-count · children.
#
# Every string (document/service names, labels, function names, string
# atoms) is a reference into the per-batch table, so repetition across a
# batch — the common case: one service grafting hundreds of answers over
# the same few labels — costs one varint per occurrence.  The obs/trace
# side-channels stay JSON blobs: they are optional provenance, present
# only when tracing was on, and their schema belongs to paxml.obs.
# ----------------------------------------------------------------------

BATCH_MAGIC = b"PXG1"

_FLOAT64 = struct.Struct(">d")
_F_OBS, _F_TRACE, _F_SHARD = 1, 2, 4
_M_LABEL, _M_FUN, _M_STR, _M_INT, _M_FLOAT, _M_TRUE, _M_FALSE = range(7)


class CodecError(ValueError):
    """The packed batch is malformed or not a PXG1 payload."""


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"varint fields must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> "tuple[int, int]":
    result = shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class _Interner:
    """First-use-ordered string table built while encoding bodies."""

    def __init__(self) -> None:
        self.table: List[str] = []
        self._index: Dict[str, int] = {}

    def ref(self, text: str) -> int:
        ref = self._index.get(text)
        if ref is None:
            ref = self._index[text] = len(self.table)
            self.table.append(text)
        return ref


def _encode_tree(out: bytearray, interner: _Interner, wire: Dict[str, Any]) -> None:
    marking = wire["m"]
    if "l" in marking:
        out.append(_M_LABEL)
        _write_varint(out, interner.ref(marking["l"]))
    elif "f" in marking:
        out.append(_M_FUN)
        _write_varint(out, interner.ref(marking["f"]))
    else:
        value = marking["v"]
        if value is True:
            out.append(_M_TRUE)
        elif value is False:
            out.append(_M_FALSE)
        elif isinstance(value, str):
            out.append(_M_STR)
            _write_varint(out, interner.ref(value))
        elif isinstance(value, int):
            out.append(_M_INT)
            _write_varint(out, value * 2 if value >= 0 else -value * 2 - 1)
        elif isinstance(value, float):
            out.append(_M_FLOAT)
            out.extend(_FLOAT64.pack(value))
        else:
            raise CodecError(f"unencodable atomic value {value!r}")
    _write_varint(out, wire["u"])
    _write_varint(out, wire["v"])
    children = wire.get("c", ())
    _write_varint(out, len(children))
    for child in children:
        _encode_tree(out, interner, child)


def _decode_tree(data: bytes, pos: int,
                 table: List[str]) -> "tuple[Dict[str, Any], int]":
    if pos >= len(data):
        raise CodecError("truncated tree")
    tag = data[pos]
    pos += 1
    if tag == _M_LABEL:
        ref, pos = _read_varint(data, pos)
        marking: Dict[str, Any] = {"l": table[ref]}
    elif tag == _M_FUN:
        ref, pos = _read_varint(data, pos)
        marking = {"f": table[ref]}
    elif tag == _M_STR:
        ref, pos = _read_varint(data, pos)
        marking = {"v": table[ref]}
    elif tag == _M_INT:
        zigzag, pos = _read_varint(data, pos)
        marking = {"v": (zigzag >> 1) ^ -(zigzag & 1)}
    elif tag == _M_FLOAT:
        if pos + 8 > len(data):
            raise CodecError("truncated float value")
        marking = {"v": _FLOAT64.unpack_from(data, pos)[0]}
        pos += 8
    elif tag == _M_TRUE:
        marking = {"v": True}
    elif tag == _M_FALSE:
        marking = {"v": False}
    else:
        raise CodecError(f"unknown marking tag {tag}")
    uid, pos = _read_varint(data, pos)
    version, pos = _read_varint(data, pos)
    count, pos = _read_varint(data, pos)
    wire: Dict[str, Any] = {"m": marking, "u": uid, "v": version}
    if count:
        children = []
        for _ in range(count):
            child, pos = _decode_tree(data, pos, table)
            children.append(child)
        wire["c"] = children
    return wire, pos


def _write_blob(out: bytearray, payload: Any) -> None:
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    _write_varint(out, len(blob))
    out.extend(blob)


def _read_blob(data: bytes, pos: int) -> "tuple[Any, int]":
    length, pos = _read_varint(data, pos)
    if pos + length > len(data):
        raise CodecError("truncated JSON blob")
    return json.loads(data[pos:pos + length]), pos + length


def encode_batch(records: Sequence[GraftRecord]) -> bytes:
    """Pack a batch of graft records into the compact binary form."""
    interner = _Interner()
    body = bytearray()
    _write_varint(body, len(records))
    for record in records:
        _write_varint(body, record.step)
        _write_varint(body, interner.ref(record.document))
        _write_varint(body, interner.ref(record.service))
        _write_varint(body, record.site)
        flags = ((_F_OBS if record.obs is not None else 0)
                 | (_F_TRACE if record.trace is not None else 0)
                 | (_F_SHARD if record.shard is not None else 0))
        body.append(flags)
        if record.shard is not None:
            _write_varint(body, record.shard)
        _write_varint(body, len(record.trees))
        for tree in record.trees:
            _encode_tree(body, interner, tree)
        if record.obs is not None:
            _write_blob(body, record.obs)
        if record.trace is not None:
            _write_blob(body, record.trace)
    out = bytearray(BATCH_MAGIC)
    _write_varint(out, len(interner.table))
    for text in interner.table:
        encoded = text.encode("utf-8")
        _write_varint(out, len(encoded))
        out.extend(encoded)
    out.extend(body)
    perf.stats.graft_batches_encoded += 1
    perf.stats.graft_batch_bytes += len(out)
    return bytes(out)


def decode_batch(data: bytes) -> List[GraftRecord]:
    """Unpack :func:`encode_batch` output; field-for-field round trip."""
    if data[:4] != BATCH_MAGIC:
        raise CodecError("not a PXG1 graft batch")
    pos = 4
    n_strings, pos = _read_varint(data, pos)
    table: List[str] = []
    for _ in range(n_strings):
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated string table")
        table.append(data[pos:pos + length].decode("utf-8"))
        pos += length
    n_records, pos = _read_varint(data, pos)
    records: List[GraftRecord] = []
    for _ in range(n_records):
        step, pos = _read_varint(data, pos)
        doc_ref, pos = _read_varint(data, pos)
        service_ref, pos = _read_varint(data, pos)
        site, pos = _read_varint(data, pos)
        if pos >= len(data):
            raise CodecError("truncated record flags")
        flags = data[pos]
        pos += 1
        shard: Optional[int] = None
        if flags & _F_SHARD:
            shard, pos = _read_varint(data, pos)
        n_trees, pos = _read_varint(data, pos)
        trees = []
        for _ in range(n_trees):
            tree, pos = _decode_tree(data, pos, table)
            trees.append(tree)
        obs = trace = None
        if flags & _F_OBS:
            obs, pos = _read_blob(data, pos)
        if flags & _F_TRACE:
            trace, pos = _read_blob(data, pos)
        records.append(GraftRecord(step=step, document=table[doc_ref],
                                   service=table[service_ref], site=site,
                                   trees=trees, obs=obs, trace=trace,
                                   shard=shard))
    return records
