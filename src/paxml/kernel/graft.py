"""The transactional graft log.

Every productive graft the kernel applies becomes one serializable
:class:`GraftRecord`: the call site's uid, the service name, the target
document, the step ordinal, and the inserted answer trees in the
uid-stable wire form of :func:`paxml.tree.serializer.to_wire`.  The log
is the durable half of checkpointing — replaying it against a seed
snapshot of the documents reconstructs the checkpointed state
deterministically (grafting is deterministic given identical prior
state, and wire trees carry their original uids, so even the node
identities the scheduler frontier refers to are reproduced).

Retention is governed by ``perf.flags.graft_log``; with the flag off the
kernel appends nothing (PR 4 behaviour, for memory-constrained runs) and
a checkpoint falls back to the fresh document snapshot alone — still
resumable, just not replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import perf


@dataclass
class GraftRecord:
    """One applied graft, in fully serializable form.

    ``trees`` holds the inserted answer trees as wire dicts (marking,
    uid, version, children — see ``paxml.tree.serializer.to_wire``).
    ``obs`` optionally carries the ``graft_applied`` event payloads
    (canonical text plus staged provenance) captured when tracing was
    active at graft time; resume re-emits them so derivation provenance
    survives a crash.  ``trace`` optionally carries the causal
    :class:`paxml.obs.trace.TraceContext` wire dict of the request chain
    that produced the graft (the end-to-end causality contract: the same
    ``trace_id`` shows up on the subscription deltas and flight-recorder
    entries this graft caused).
    """

    step: int
    document: str
    service: str
    site: int
    trees: List[Dict[str, Any]]
    obs: Optional[List[Dict[str, Any]]] = None
    trace: Optional[Dict[str, Any]] = None

    def to_json_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "step": self.step, "document": self.document,
            "service": self.service, "site": self.site, "trees": self.trees,
        }
        if self.obs is not None:
            record["obs"] = self.obs
        if self.trace is not None:
            record["trace"] = self.trace
        return record

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any]) -> "GraftRecord":
        return cls(step=record["step"], document=record["document"],
                   service=record["service"], site=record["site"],
                   trees=record["trees"], obs=record.get("obs"),
                   trace=record.get("trace"))


class GraftLog:
    """An append-only list of :class:`GraftRecord`, optionally retained.

    ``base_step`` is the step ordinal the retained tail starts after —
    zero for a log grown from the seed snapshot, the checkpoint's step
    count for a log carried across a resume whose bundle had retention
    off (the seed is then the resumed snapshot itself).
    """

    def __init__(self, retain: bool = True, base_step: int = 0):
        self.retain = retain
        self.base_step = base_step
        self.records: List[GraftRecord] = []

    def append(self, record: GraftRecord) -> None:
        if not self.retain:
            return
        self.records.append(record)
        perf.stats.graft_log_records += 1

    def tail(self, n: int) -> List[GraftRecord]:
        return self.records[-n:] if n else []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
