"""paxml.kernel — the shared evaluation kernel both engines run on.

Extracted from the sequential rewriting engine and the concurrent async
runtime, which previously each carried their own copy of the same
machinery:

* :class:`CallScheduler` — the two-queue fair scheduler (with parking
  and attempt budgets folded in behind capabilities);
* :class:`EvaluationKernel` — run counters plus :meth:`apply_graft`, the
  single transactional choke point for document mutation (grafting,
  event emission, graft logging, index maintenance, scheduling);
* :class:`GraftLog` / :class:`GraftRecord` — the serializable log of
  every applied graft, replayable against a seed snapshot;
* :class:`RunResult` / :class:`RunStatus` — the unified run summary
  (``RewriteResult`` and ``RuntimeResult`` are deprecated aliases);
* :func:`resume` / :func:`load_bundle` / :func:`replay_documents` —
  checkpoint bundles: suspend a run with ``engine.checkpoint(path)``
  and reconstruct either engine from the bundle.
"""

from .core import EXTERNAL_SERVICE, EvaluationKernel
from .checkpoint import (
    BundleError,
    CheckpointBundle,
    ReplayDivergence,
    apply_graft_record,
    build_services,
    load_bundle,
    replay_documents,
    replay_prefix,
    resume,
)
from .graft import CodecError, GraftLog, GraftRecord, decode_batch, encode_batch
from .result import CallFailure, RunResult, RunStatus, Step
from .scheduler import CallScheduler, POLICIES, Site

__all__ = [
    "BundleError",
    "CallFailure",
    "CallScheduler",
    "CheckpointBundle",
    "CodecError",
    "EXTERNAL_SERVICE",
    "EvaluationKernel",
    "GraftLog",
    "GraftRecord",
    "POLICIES",
    "ReplayDivergence",
    "RunResult",
    "RunStatus",
    "Site",
    "Step",
    "apply_graft_record",
    "build_services",
    "decode_batch",
    "encode_batch",
    "load_bundle",
    "replay_documents",
    "replay_prefix",
    "resume",
]
