"""Checkpoint bundles: loading, graft-log replay, and engine resumption.

A bundle (written by :meth:`EvaluationKernel.checkpoint`) is a JSONL file
of typed records — header, services (as rule text), documents and seed
documents (uid-stable wire trees), the scheduler frontier, incremental
per-site cutoffs, and the transactional graft log.  :func:`resume`
reconstructs *either* engine mid-run from it:

* documents come back with their original node uids and versions (the
  global stamp clock is advanced past the bundle's high-water mark so
  fresh nodes never collide with restored ones), which is what lets the
  frontier's and graft log's site references resolve;
* alternatively (``replay=True``) the documents are rebuilt by replaying
  the graft log against the seed snapshot — grafting is deterministic
  given identical prior state and the log carries the inserted trees
  with their original uids, so the replayed documents are node-for-node
  congruent with the snapshot; the two are validated to be
  subsumption-equivalent before the run continues;
* per-site incremental cutoffs are restored with empty caches (sound —
  everything delivered pre-checkpoint is already inside the restored
  documents — and cheap: restored nodes all have ``version <= cutoff``,
  so post-resume re-verification joins against empty deltas);
* ``graft_applied`` provenance payloads captured while tracing was on
  are re-emitted on resume, so a provenance index built from the event
  stream survives the crash.

Soundness of the whole scheme is Theorem 2.1: the checkpoint is the
state after one fair prefix of invocations, and the limit ``[I]`` does
not depend on which fair continuation — sequential, concurrent, or a
different scheduling policy — finishes the run.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import perf
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..query.parser import parse_query
from ..system.invocation import find_path, graft_trees, graft_under
from ..system.service import QueryService, Service, UnionQueryService
from ..system.system import AXMLSystem
from ..tree import store as tree_store
from ..tree.document import CONTEXT, Document
from ..tree.node import Node, advance_stamp_clock
from ..tree.serializer import from_wire, wire_max_stamp
from .core import BUNDLE_FORMAT, EXTERNAL_SERVICE, EvaluationKernel
from .graft import CodecError, GraftRecord, decode_batch


class BundleError(ValueError):
    """The bundle file is malformed or from an unsupported format."""


class ReplayDivergence(RuntimeError):
    """Replaying the graft log did not reproduce the checkpointed state."""


@dataclass
class CheckpointBundle:
    """A parsed checkpoint bundle (see the module docstring)."""

    path: str
    header: Dict[str, object]
    services: List[Dict[str, object]] = field(default_factory=list)
    documents: Dict[str, dict] = field(default_factory=dict)   # name -> wire
    seeds: Dict[str, dict] = field(default_factory=dict)       # name -> wire
    frontier: Dict[str, object] = field(default_factory=dict)
    site_states: List[Dict[str, object]] = field(default_factory=list)
    grafts: List[GraftRecord] = field(default_factory=list)

    @property
    def engine(self) -> str:
        return str(self.header.get("engine", "sequential"))

    @property
    def steps(self) -> int:
        return int(self.header.get("steps", 0))

    @property
    def replayable(self) -> bool:
        return bool(self.seeds)


def load_bundle(path: str) -> CheckpointBundle:
    """Parse a JSONL checkpoint bundle written by ``kernel.checkpoint``."""
    bundle: Optional[CheckpointBundle] = None
    with open(path, "r") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise BundleError(f"{path}:{line_number}: {exc}") from None
            kind = record.get("kind")
            if kind == "header":
                if record.get("format", 0) > BUNDLE_FORMAT:
                    raise BundleError(
                        f"bundle format {record.get('format')} is newer than "
                        f"supported format {BUNDLE_FORMAT}")
                bundle = CheckpointBundle(path=path, header=record)
                continue
            if bundle is None:
                raise BundleError(f"{path}: first record must be the header")
            if kind == "service":
                bundle.services.append(record)
            elif kind == "document":
                bundle.documents[record["name"]] = record["tree"]
            elif kind == "seed":
                bundle.seeds[record["name"]] = record["tree"]
            elif kind == "frontier":
                bundle.frontier = record
            elif kind == "site":
                bundle.site_states.append(record)
            elif kind == "graft":
                # Format-1 spelling: one readable JSON record per graft.
                bundle.grafts.append(GraftRecord.from_json_dict(record))
            elif kind == "grafts":
                # Format-2 spelling: the whole tail as one packed batch.
                try:
                    bundle.grafts.extend(decode_batch(
                        base64.b64decode(record["packed"])))
                except (CodecError, ValueError) as exc:
                    raise BundleError(
                        f"{path}:{line_number}: bad graft batch: {exc}"
                    ) from None
            else:
                # Unknown record kinds are skipped (forward compatibility).
                continue
    if bundle is None:
        raise BundleError(f"{path}: no header record")
    if not bundle.documents:
        raise BundleError(f"{path}: no document records")
    return bundle


def _advance_clock(bundle: CheckpointBundle) -> None:
    """Push the global stamp clock past everything the bundle contains.

    The header's ``clock`` was read *after* every tree in the bundle was
    serialized, so when present it already bounds all their stamps; the
    per-wire scan is only the fallback for header-less partial bundles.
    """
    high = int(bundle.header.get("clock", 0))
    if not high:
        for wire in bundle.documents.values():
            high = max(high, wire_max_stamp(wire))
        for wire in bundle.seeds.values():
            high = max(high, wire_max_stamp(wire))
        for record in bundle.grafts:
            for wire in record.trees:
                high = max(high, wire_max_stamp(wire))
    advance_stamp_clock(high)


def build_services(bundle: CheckpointBundle,
                   services: Optional[Dict[str, Service]] = None
                   ) -> List[Service]:
    """Reconstruct the service set from the bundle's rule text.

    Positive services round-trip through their rule text; opaque
    (black-box) services cannot be serialised and must be supplied via
    ``services`` — a name-keyed override mapping that also takes
    precedence for positive services (e.g. to resume with a patched
    rule, at the caller's own risk).
    """
    overrides = services or {}
    rebuilt: List[Service] = []
    for record in bundle.services:
        name = str(record["name"])
        if name in overrides:
            rebuilt.append(overrides[name])
            continue
        if record.get("opaque"):
            raise BundleError(
                f"service {name!r} is opaque (black-box) and cannot be "
                "restored from the bundle; pass it via services={...}")
        rules = [str(rule) for rule in record["rules"]]
        if len(rules) == 1:
            rebuilt.append(QueryService.parse(name, rules[0]))
        else:
            rebuilt.append(UnionQueryService(
                name, [parse_query(rule, name=name) for rule in rules]))
    return rebuilt


def replay_documents(bundle: CheckpointBundle, *,
                     advance: bool = True) -> Dict[str, Document]:
    """Rebuild the checkpointed documents from seed snapshot + graft log.

    Applies every :class:`GraftRecord` in order through the same
    :func:`graft_trees` primitive the live run used.  Because wire trees
    keep their original uids and grafting is deterministic given
    identical prior state, the result is node-for-node congruent with
    the documents the checkpoint snapshotted.
    """
    if not bundle.replayable:
        raise BundleError(
            "bundle has no seed snapshot (graft-log retention was off); "
            "only the direct document snapshot can be restored")
    if advance:
        _advance_clock(bundle)
    documents = {name: Document(name, from_wire(wire))
                 for name, wire in bundle.seeds.items()}
    by_uid: Dict[str, Dict[int, Node]] = {
        name: {node.uid: node for node in doc.root.iter_nodes()}
        for name, doc in documents.items()}
    for record in bundle.grafts:
        apply_graft_record(documents, by_uid, record)
    return documents


def apply_graft_record(documents: Dict[str, Document],
                       by_uid: Dict[str, Dict[int, Node]],
                       record: GraftRecord) -> List[Node]:
    """Apply one logged graft to replayed documents, updating ``by_uid``.

    Engine grafts resolve ``record.site`` to a live call node and graft
    as its siblings; :data:`~paxml.kernel.core.EXTERNAL_SERVICE` records
    (client injections) resolve it to the *parent* node and graft under
    it directly — an injection target need not be (and usually is not)
    a function node.
    """
    document = documents.get(record.document)
    if document is None:
        raise ReplayDivergence(
            f"graft log names unknown document {record.document!r}")
    node = by_uid[record.document].get(record.site)
    if record.service == EXTERNAL_SERVICE:
        path = find_path(document.root, node) if node is not None else None
        if path is None:
            raise ReplayDivergence(
                f"replay step {record.step}: graft parent uid={record.site} "
                f"is not live in document {record.document!r}")
        inserted = graft_under(path, [from_wire(w) for w in record.trees])
    else:
        path = (find_path(document.root, node)
                if node is not None and node.is_function else None)
        if path is None or len(path) < 2:
            raise ReplayDivergence(
                f"replay step {record.step}: call site uid={record.site} is "
                f"not live in document {record.document!r}")
        inserted = graft_trees(path, [from_wire(w) for w in record.trees])
    index = by_uid[record.document]
    for tree in inserted:
        for new_node in tree.iter_nodes():
            index[new_node.uid] = new_node
    return inserted


def replay_prefix(seeds: Dict[str, dict],
                  grafts: List[GraftRecord]) -> Dict[str, Document]:
    """Point-in-time reconstruction: seed wires + a graft-log prefix.

    The serve layer's historical reads: the state a document had after
    exactly ``len(grafts)`` productive grafts.  The replayed trees are
    throwaway read-only copies living alongside the live run, so the
    columnar store and child index are bypassed for the duration — their
    rows are keyed by node uid, and warming the replayed copies (which
    reuse the live uids) would stale-out the live rows for nothing.
    """
    saved_store = perf.flags.columnar_store
    saved_index = perf.flags.child_index
    perf.flags.columnar_store = False
    perf.flags.child_index = False
    try:
        documents = {name: Document(name, from_wire(wire))
                     for name, wire in seeds.items()}
        by_uid: Dict[str, Dict[int, Node]] = {
            name: {node.uid: node for node in doc.root.iter_nodes()}
            for name, doc in documents.items()}
        for record in grafts:
            apply_graft_record(documents, by_uid, record)
        return documents
    finally:
        perf.flags.columnar_store = saved_store
        perf.flags.child_index = saved_index


def _restore_site_states(bundle: CheckpointBundle, system: AXMLSystem,
                         by_uid: Dict[str, Dict[int, Node]]) -> int:
    restored = 0
    for record in bundle.site_states:
        service = system.services.get(str(record["service"]))
        rule_index = int(record["rule"])
        queries = getattr(service, "queries", None)
        if service is None or queries is None or rule_index >= len(queries):
            continue
        site_uid = int(record["site"])
        node = None
        for index in by_uid.values():
            node = index.get(site_uid)
            if node is not None:
                break
        if node is None or node.parent is None:
            continue
        doc_uids: Dict[str, int] = {}
        resolvable = True
        for name in queries[rule_index].document_names():
            if name == CONTEXT:
                doc_uids[name] = node.parent.uid
            elif name in system.documents:
                doc_uids[name] = system.documents[name].root.uid
            else:
                resolvable = False  # e.g. ``input`` (never exported, but be safe)
                break
        if not resolvable:
            continue
        service.restore_site_cutoff(rule_index, site_uid,
                                    int(record["cutoff"]), doc_uids)
        restored += 1
    return restored


def resume(path: str, *, engine: Optional[str] = None,
           services: Optional[Dict[str, Service]] = None,
           replay: bool = False,
           config=None, injector=None, transport=None,
           record_trace: bool = False, on_step=None,
           checkpoint_every: Optional[int] = None,
           checkpoint_path: Optional[str] = None):
    """Reconstruct an engine mid-run from a checkpoint bundle.

    Returns a ready-to-``run()`` :class:`~paxml.system.rewriting.
    RewritingEngine` or :class:`~paxml.runtime.engine.AsyncRuntime`
    (``engine`` overrides the bundle's own engine kind — a sequential
    checkpoint can be finished concurrently and vice versa, by
    Theorem 2.1).  With ``replay=True`` the documents are rebuilt by
    replaying the graft log against the seed snapshot and validated to
    be subsumption-equivalent to the direct snapshot
    (:class:`ReplayDivergence` otherwise).
    """
    bundle = load_bundle(path)
    _advance_clock(bundle)
    if replay:
        documents = replay_documents(bundle, advance=False)
        snapshots = {name: Document(f"{name}#snapshot", from_wire(wire))
                     for name, wire in bundle.documents.items()}
        for name, replayed in documents.items():
            snapshot = snapshots.get(name)
            if snapshot is None or (replayed.canonical_key()
                                    != snapshot.canonical_key()):
                raise ReplayDivergence(
                    f"document {name!r}: replayed state is not equivalent to "
                    "the checkpoint snapshot")
    else:
        documents = {name: Document(name, from_wire(wire))
                     for name, wire in bundle.documents.items()}

    system = AXMLSystem(list(documents.values()),
                        build_services(bundle, services),
                        validate=True, reduce=False)

    frontier = bundle.frontier
    kernel = EvaluationKernel(
        system, sites=[],
        policy=str(frontier.get("policy", "round_robin")),
        seed=frontier.get("seed"),  # type: ignore[arg-type]
        promote_front=bool(bundle.header.get("promote_front", True)),
        dedup_delivered=bool(bundle.header.get("dedup_delivered", False)))
    kernel.steps = int(bundle.header.get("steps", 0))
    kernel.productive = int(bundle.header.get("productive", 0))
    kernel.invocations_by_service = dict(
        bundle.header.get("invocations_by_service", {}))  # type: ignore[arg-type]
    kernel.checkpoints = int(bundle.header.get("checkpoints", 0))
    kernel.resumed_from = path
    kernel.log.retain = (bool(bundle.header.get("graft_log", False))
                         and perf.flags.graft_log)
    if kernel.log.retain and bundle.replayable:
        # Carry the seed + full log forward so later checkpoints of the
        # resumed run stay replayable from the original seed.
        kernel.log.base_step = int(bundle.header.get("base_step", 0))
        kernel.log.records = list(bundle.grafts)
        kernel._seed_wire = dict(bundle.seeds)
    else:
        # No replayable history: the resumed snapshot is the new seed.
        kernel.log.base_step = kernel.steps

    by_uid: Dict[str, Dict[int, Node]] = {
        name: {node.uid: node for node in doc.root.iter_nodes()}
        for name, doc in system.documents.items()}

    def resolve(name: str, uid: int):
        document = system.documents.get(name)
        node = by_uid.get(name, {}).get(uid)
        if document is None or node is None or not node.is_function:
            return None
        return (document, node)

    kernel.scheduler.restore_frontier(frontier, resolve)
    # Lazy-scheduling seed: re-derive relevance from the persisted goal
    # queries *before* the safety-net enqueue, so uncovered sites land in
    # the right queue (dormant vs fresh) and retired sites stay retired.
    # The restored dormant bucket is a hint — enable_lazy reconciles both
    # directions against a freshly computed tracker.  When the perf flag
    # is off (enable_lazy no-ops) the whole frontier wakes eagerly, which
    # is always sound.
    lazy_queries = bundle.header.get("lazy_queries")
    if lazy_queries and not kernel.enable_lazy(
            [parse_query(text) for text in lazy_queries]):
        kernel.scheduler.wake_all_dormant()
    if bundle.header.get("fire_once") and not kernel.enable_fire_once():
        kernel.scheduler.unretire_all()
    # Safety net: any live call the frontier does not cover (e.g. one the
    # crashed run had written off after delivery failures) re-enters the
    # queue untried — retrying is always sound, and fairness demands it.
    for document, node in system.call_sites():
        kernel.scheduler.enqueue(document, node)

    restored_sites = _restore_site_states(bundle, system, by_uid)

    if perf.flags.columnar_store:
        # The store is derived state: re-index the restored trees
        # wholesale rather than persisting rows in the bundle.  Restored
        # nodes reuse their original (uid, version) stamps, so warming
        # also retargets any rows left by the checkpointing process onto
        # the restored copies.
        for document in system.documents.values():
            tree_store.warm(document.root)
        if obs_bus.ACTIVE:
            sizes = tree_store.store_sizes()
            obs_bus.emit(obs_events.STORE_WARMED, rows=sizes["rows"],
                         interned_markings=sizes["interned_markings"])

    perf.stats.kernel_resumes += 1
    if obs_bus.ACTIVE:
        obs_bus.emit(obs_events.RUN_RESUMED, path=path, engine=bundle.engine,
                     steps=kernel.steps, productive=kernel.productive,
                     replayed=replay, site_cutoffs=restored_sites)
        # Re-emit the provenance payloads captured before the checkpoint
        # so an index fed from this process's event stream is complete.
        for record in bundle.grafts:
            if record.obs:
                obs_bus.emit(obs_events.GRAFT_APPLIED,
                             document=record.document, service=record.service,
                             site=record.site, step=record.step,
                             trees=record.obs, replayed=True)

    kind = engine or bundle.engine
    if kind == "sequential":
        from ..system.rewriting import RewritingEngine  # local: avoid cycle
        return RewritingEngine(system, kernel=kernel,
                               record_trace=record_trace, on_step=on_step,
                               checkpoint_every=checkpoint_every,
                               checkpoint_path=checkpoint_path or path)
    if kind == "async":
        from ..runtime.engine import AsyncRuntime  # local: avoid cycle
        return AsyncRuntime(system, kernel=kernel, config=config,
                            injector=injector, transport=transport,
                            checkpoint_every=checkpoint_every,
                            checkpoint_path=checkpoint_path or path)
    raise BundleError(f"unknown engine kind {kind!r}")
