"""The unified run summary shared by both engines.

Historically the sequential engine returned a ``RewriteResult`` and the
async runtime a ``RuntimeResult`` — two near-identical shapes that every
consumer (metrics absorption, CLI printing, tests) had to handle twice.
:class:`RunResult` replaces both; ``paxml.system.rewriting.RewriteResult``
and ``paxml.runtime.engine.RuntimeResult`` remain as thin deprecated
aliases of this class, and the engine-specific field names
(``productive_steps``, ``productive_grafts``, ``invocations``) survive as
properties.

:class:`RunStatus` is the union of both engines' terminal verdicts; the
string values are unchanged, so anything keyed on ``status.value`` keeps
working.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class RunStatus(enum.Enum):
    """How a run ended (either engine)."""

    TERMINATED = "terminated"           # fixpoint: no live call can add data
    STABILIZED = "stabilized"           # every *allowed* call is a no-op (I↓N)
    DEGRADED = "degraded"               # fixpoint of the rest; some calls failed
    BUDGET_EXHAUSTED = "budget"         # step/attempt budget hit; prefix computed
    DEADLINE_EXHAUSTED = "deadline"     # wall-clock budget hit; prefix computed
    DRAINED = "drained"                 # graceful stop: state flushed to a bundle


@dataclass
class Step:
    """One entry of a sequential rewriting trace.

    ``started``/``seconds`` are monotonic (``time.perf_counter``) so a
    sequential run's trace aligns on the same timeline as the async
    runtime's attempt events.
    """

    index: int
    document: str
    service: str
    changed: bool
    inserted: int
    started: float = 0.0    # monotonic stamp when the invocation began
    seconds: float = 0.0    # invocation duration


@dataclass
class CallFailure:
    """A call whose retry budget ran out — reported, never dropped."""

    document: str
    service: str
    site: int
    attempts: int
    reason: str


@dataclass
class RunResult:
    """Summary of one run; the system itself was rewritten in place.

    ``steps`` counts *completed invocations* and is cumulative across a
    checkpoint/resume chain (a resumed run reports the work of the whole
    logical run, not just the post-resume suffix).  ``attempts`` counts
    transport attempts started (equal to ``steps`` for the sequential
    engine, ``>= steps`` under retries).
    """

    status: RunStatus
    steps: int = 0
    productive: int = 0
    invocations_by_service: Dict[str, int] = field(default_factory=dict)
    trace: List[Step] = field(default_factory=list)
    attempts: int = 0
    failures: List[CallFailure] = field(default_factory=list)
    duration_seconds: float = 0.0
    cancelled_in_flight: int = 0
    metrics: Optional[Any] = None
    checkpoints: int = 0                 # bundles written during this run
    resumed_from: Optional[str] = None   # bundle path the kernel was resumed from

    @property
    def terminated(self) -> bool:
        """The run reached a fixpoint of every (non-failed, allowed) call."""
        return self.status in (RunStatus.TERMINATED, RunStatus.STABILIZED,
                               RunStatus.DEGRADED)

    # -- deprecated engine-specific spellings ---------------------------

    @property
    def productive_steps(self) -> int:
        """Deprecated alias of :attr:`productive` (sequential spelling)."""
        return self.productive

    @property
    def productive_grafts(self) -> int:
        """Deprecated alias of :attr:`productive` (async spelling)."""
        return self.productive

    @property
    def invocations(self) -> int:
        """Deprecated alias of :attr:`steps` (async spelling)."""
        return self.steps
