"""The shared evaluation kernel both engines run on.

An :class:`EvaluationKernel` owns everything the sequential rewriting
engine and the concurrent async runtime used to duplicate:

* the two-queue fair :class:`~paxml.kernel.scheduler.CallScheduler`;
* the run counters — completed invocations (``steps``), productive
  grafts (``productive``, which doubles as the async runtime's staleness
  *generation*: a no-op verdict computed at generation g is only
  evidence for termination while ``productive == g``), and the
  per-service invocation tally;
* :meth:`apply_graft`, the single choke point through which every
  document mutation of a run flows.  It grafts the delivered forests
  (optionally deduplicating per-site by canonical key, the async
  at-least-once path), emits the ``graft_applied`` event, appends the
  transactional :class:`~paxml.kernel.graft.GraftRecord`, voids the
  scheduler's no-op verdicts and schedules freshly grafted calls — so
  event emission, graft logging and index maintenance can never drift
  apart between engines;
* :meth:`checkpoint` — snapshot the whole mid-run state (documents,
  scheduler frontier, graft-log tail, incremental per-site cutoffs) to a
  JSONL bundle that :func:`paxml.kernel.checkpoint.resume` can
  reconstruct *either* engine from.  Theorem 2.1 (order-independence of
  the limit ``[I]``) is what makes this sound: a checkpointed frontier
  is just the state after one fair prefix, and any fair continuation —
  sequential, concurrent, or replayed — converges to the same ``[I]``.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import perf
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..obs.provenance import graft_record
from ..system.invocation import find_path, graft_answers, graft_under
from ..system.system import AXMLSystem
from ..tree.document import Document, Forest
from ..tree import store as tree_store
from ..tree.node import Node, current_stamp
from ..tree.reduction import canonical_key
from ..tree.serializer import to_wire
from .graft import GraftLog, GraftRecord, encode_batch
from .scheduler import CallScheduler, Site

BUNDLE_FORMAT = 2

# The pseudo-service name graft records use for externally injected trees
# (the serve layer's client-driven document updates).  Replay resolves such
# records by grafting under the recorded *parent* uid instead of requiring
# a live call node.
EXTERNAL_SERVICE = "__external__"


class EvaluationKernel:
    """Shared scheduling, counting, grafting and checkpointing state.

    ``promote_front`` / ``dedup_delivered`` encode the two behavioural
    differences between the engines (promotion order of proven no-ops,
    and per-site canonical-key dedup for at-least-once transports); both
    are plain capabilities here, so either engine could opt into either.
    """

    def __init__(self, system: Optional[AXMLSystem] = None, *,
                 sites: Optional[Sequence[Site]] = None,
                 policy: str = "round_robin",
                 seed: Optional[int] = None,
                 suppressed: Optional[Iterable[Node]] = None,
                 budget: Optional[int] = None,
                 promote_front: bool = True,
                 dedup_delivered: bool = False):
        self.system = system
        self.scheduler = CallScheduler(policy, seed=seed, suppressed=suppressed,
                                       budget=budget,
                                       promote_front=promote_front)
        self.log = GraftLog(retain=perf.flags.graft_log)
        self.dedup_delivered = dedup_delivered
        self.steps = 0
        self.productive = 0
        self.invocations_by_service: Dict[str, int] = {}
        self.checkpoints = 0
        self.resumed_from: Optional[str] = None
        self._delivered: Dict[int, Set[object]] = {}
        # Documents the kernel can snapshot: the system's, or those behind
        # the explicit sites (an engine driving a transport without a
        # local system cannot be checkpointed).
        self.documents: Dict[str, Document] = {}
        if system is not None:
            self.documents = system.documents
            if sites is None:
                sites = list(system.call_sites())
        elif sites is not None:
            for document, _ in sites:
                self.documents.setdefault(document.name, document)
        if sites is None:
            raise ValueError("need a system or explicit call sites")
        for document, node in sites:
            self.scheduler.enqueue(document, node)
        # Seed snapshot for graft-log replay, captured lazily right before
        # the first mutation (documents are still the seed then); runs
        # that never graft pay nothing.
        self._seed_wire: Optional[Dict[str, dict]] = None
        # Post-graft observers, called as hook(document, node, inserted)
        # after every productive graft transaction commits (engine grafts
        # and external injections alike).  The serve layer's subscription
        # hub hangs off this; hooks run synchronously on the applying
        # thread/task, so they see a consistent post-graft state.
        self.graft_hooks: List = []
        # Causal-trace plumbing (paxml.obs.trace).  ``site_traces`` maps
        # call-node uid → the TraceContext active when that node was
        # grafted in: the runtime re-activates it when it later invokes
        # the node, so the chain continues transitively (inject → graft
        # → scheduled call → graft → ...).  Unsampled runs never insert,
        # so the per-invocation lookup is a dict.get on an empty dict.
        # ``obs_labels`` holds static identity labels (e.g. tenant) the
        # owning session wants stamped onto this kernel's events.
        self.site_traces: Dict[int, obs_trace.TraceContext] = {}
        self.obs_labels: Dict[str, str] = {}
        # Lazy scheduling (PR 10): the incremental weak-relevance tracker
        # seeded from the registered query set, and the fire-once policy's
        # per-service feeder sets.  Both stay None/empty until a caller
        # opts in via enable_lazy / enable_fire_once.
        self.relevance_tracker = None
        self.lazy_queries: List = []
        self.fire_once = False
        self._fire_once_feeders: Dict[str, frozenset] = {}

    # ------------------------------------------------------------------
    # lazy scheduling and fire-once (Section 4 as runtime policy)
    # ------------------------------------------------------------------

    def enable_lazy(self, queries: Sequence) -> bool:
        """Install (or reseed) relevance-guided scheduling for ``queries``.

        The goal set is the registered queries; call sites not weakly
        relevant to any of them are parked dormant and never invoked
        until a graft makes them relevant (the kernel's graft hook feeds
        the tracker incrementally).  Passing a new query set *reseeds*
        the tracker — the one operation that can shrink relevance — and
        reconciles the queues in both directions.

        No-op returning ``False`` when ``perf.flags.lazy_scheduling`` is
        off (the equivalence-oracle configuration: the run stays eager).
        """
        if not perf.flags.lazy_scheduling:
            return False
        if self.system is None:
            raise ValueError("lazy scheduling needs a local system")
        from ..analysis.relevance import RelevanceTracker
        self.lazy_queries = list(queries)
        if self.relevance_tracker is None:
            self.relevance_tracker = RelevanceTracker(self.system,
                                                      self.lazy_queries)
            self.scheduler.relevance = self._site_relevant
            self.graft_hooks.append(self._relevance_hook)
            self._reconcile_relevance("seed")
        else:
            self.relevance_tracker.reseed(self.lazy_queries)
            self._reconcile_relevance("reseed")
        return True

    # The serve layer's subscribe/unsubscribe path: same operation, the
    # name records the intent.
    reseed_lazy = enable_lazy

    def disable_lazy(self) -> int:
        """Tear lazy mode down; wakes and returns the dormant count."""
        self.relevance_tracker = None
        self.lazy_queries = []
        self.scheduler.relevance = None
        if self._relevance_hook in self.graft_hooks:
            self.graft_hooks.remove(self._relevance_hook)
        return self.scheduler.wake_all_dormant()

    def _site_relevant(self, node: Node) -> bool:
        tracker = self.relevance_tracker
        return tracker is None or tracker.is_relevant(node)

    def _relevance_hook(self, document: Document, node: Node,
                        inserted: Sequence[Node]) -> None:
        """Graft observer: absorb the delta, wake newly relevant sites."""
        tracker = self.relevance_tracker
        if tracker is None:
            return
        newly = tracker.on_graft(document, node, inserted)
        if not newly:
            return
        promoted = self.scheduler.promote(newly)
        if promoted and obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RELEVANCE_CHANGED, reason="graft",
                         promoted=promoted, demoted=0,
                         relevant=len(tracker),
                         dormant=self.scheduler.dormant_count(),
                         **self.obs_labels)

    def refresh_relevance(self, document: Document, node: Node,
                          inserted: Sequence[Node]) -> None:
        """Absorb an out-of-band graft (e.g. a shard replica record).

        Shard workers apply replicated records below :meth:`apply_graft`
        (no hooks run), so they hand the delta to the tracker explicitly.
        """
        self._relevance_hook(document, node, inserted)

    def _reconcile_relevance(self, reason: str) -> None:
        """Two-way queue/tracker reconciliation after a (re)seed."""
        tracker = self.relevance_tracker
        promoted = self.scheduler.promote(tracker.relevant_uids)
        demoted = self.scheduler.demote_irrelevant()
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.RELEVANCE_CHANGED, reason=reason,
                         promoted=promoted, demoted=demoted,
                         relevant=len(tracker),
                         dormant=self.scheduler.dormant_count(),
                         **self.obs_labels)

    def enable_fire_once(self) -> bool:
        """Precompute the fire-once policy from the dependency graph.

        A service ``f`` is *eligible* when it cannot transitively reach a
        dependency cycle (Definition 3.2's graph): then no ``f`` site can
        feed itself or another ``f`` site.  A completed invocation of an
        eligible site may be retired for good once every function
        reachable from ``f`` — exactly the ones whose outputs could still
        feed ``f``'s reads — has no live site left (``live_count`` 0).
        Extra graph edges only enlarge reachable sets, so the test is
        conservative, hence sound.  External injections revive the whole
        retired set (:meth:`apply_external`): new outside data may feed
        anything.
        """
        if not perf.flags.lazy_scheduling or self.system is None:
            return False
        from ..system.dependency import dependency_graph
        graph = dependency_graph(self.system)
        recursive = graph.recursive_functions()
        feeders: Dict[str, frozenset] = {}
        for fname in self.system.services:
            if fname in recursive:
                continue
            seen: Set[str] = set()
            stack = [fname]
            while stack:
                vertex = stack.pop()
                for succ in graph.successors(vertex):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            feeders[fname] = frozenset(
                g for g in seen if g in graph.functions and g != fname)
        self._fire_once_feeders = feeders
        self.fire_once = bool(feeders)
        return self.fire_once

    def maybe_retire(self, document: Document, node: Node) -> bool:
        """Retire a just-completed site under the fire-once policy.

        Callers guarantee the completed verdict reflects the *current*
        state (the sequential engine trivially; the async runtime only
        calls this for generation-fresh outcomes).
        """
        if not self.fire_once:
            return False
        feeders = self._fire_once_feeders.get(
            node.marking.name)  # type: ignore[union-attr]
        if feeders is None:
            return False
        if any(self.scheduler.live_count(g) for g in feeders):
            return False
        self.scheduler.retire((document, node))
        return True

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The staleness generation: bumped by every productive graft."""
        return self.productive

    def note_invocation(self, service: str) -> None:
        """Count one completed invocation (any verdict) of ``service``."""
        self.steps += 1
        self.invocations_by_service[service] = (
            self.invocations_by_service.get(service, 0) + 1)

    # ------------------------------------------------------------------
    # the graft choke point
    # ------------------------------------------------------------------

    def _capture_seed(self) -> None:
        if self._seed_wire is None and self.documents:
            self._seed_wire = {name: to_wire(doc.root)
                               for name, doc in self.documents.items()}

    def apply_graft(self, document: Document, node: Node, path: List[Node],
                    deliveries: Sequence[Forest],
                    metrics=None) -> List[Node]:
        """Apply one invocation's answer deliveries transactionally.

        Grafts every delivered forest at the call site (``path`` is the
        root-to-call path), then — iff anything was inserted — performs
        the whole productive-step transaction: counter bump, event
        emission, graft-log append, no-op-verdict promotion and
        scheduling of freshly grafted calls.  Returns the inserted trees.

        ``deliveries`` may hold several forests (duplicate deliveries of
        an at-least-once transport); with ``dedup_delivered`` answer
        trees already delivered to this site are skipped by canonical
        key before grafting.  ``metrics`` is an optional
        :class:`~paxml.runtime.metrics.RuntimeMetrics` to tally
        duplicates/dedups/grafts on.
        """
        if self.log.retain:
            self._capture_seed()
        service: str = node.marking.name  # type: ignore[union-attr]
        delivered = (self._delivered.setdefault(node.uid, set())
                     if self.dedup_delivered else None)
        inserted_all: List[Node] = []
        for index, forest in enumerate(deliveries):
            if index and metrics is not None:
                metrics.duplicate_deliveries += 1
            if delivered is None:
                novel = list(forest)
            else:
                novel = []
                for tree in forest:
                    tree_key = canonical_key(tree)
                    if tree_key in delivered:
                        if metrics is not None:
                            metrics.answers_deduplicated += 1
                        continue
                    delivered.add(tree_key)
                    novel.append(tree)
            if novel:
                inserted_all.extend(graft_answers(path, novel))
        if not inserted_all:
            return inserted_all

        self.productive += 1
        if metrics is not None:
            metrics.grafts_applied += 1
        trace_wire = self._stamp_trace(inserted_all)
        obs_records: Optional[List[dict]] = None
        if obs_bus.ACTIVE:
            obs_records = [graft_record(t) for t in inserted_all]
            obs_bus.emit(obs_events.GRAFT_APPLIED, document=document.name,
                         service=service, site=node.uid, step=self.steps - 1,
                         trees=obs_records, **self._event_labels(trace_wire))
        if self.log.retain:
            self.log.append(GraftRecord(
                step=self.steps - 1, document=document.name, service=service,
                site=node.uid, trees=[to_wire(t) for t in inserted_all],
                obs=obs_records, trace=trace_wire))
        self.scheduler.promote_tried()
        self.scheduler.enqueue_trees(document, inserted_all)
        self._notify_graft(document, node, inserted_all)
        return inserted_all

    def apply_external(self, document: Document, parent: Node,
                       trees: Sequence[Node]) -> List[Node]:
        """Graft externally supplied ``trees`` as children of ``parent``.

        The serve layer's injection path: a client pushes new subtrees
        into a live document (Genest et al.'s external events).  Runs the
        same productive-step transaction as :meth:`apply_graft` — counter
        bump, event emission, graft-log append (under the
        :data:`EXTERNAL_SERVICE` pseudo-service with the *parent* uid as
        the site), no-op-verdict promotion, scheduling of grafted calls,
        hook notification — so external updates replay, checkpoint and
        fan out exactly like engine grafts.  Trees are copied before
        grafting; returns the copies actually inserted.
        """
        if self.log.retain:
            self._capture_seed()
        path = find_path(document.root, parent)
        if path is None:
            raise ValueError(
                f"node uid={parent.uid} is not part of document "
                f"{document.name!r}")
        inserted = graft_under(path, [tree.copy() for tree in trees])
        if not inserted:
            return inserted
        self.productive += 1
        trace_wire = self._stamp_trace(inserted)
        obs_records: Optional[List[dict]] = None
        if obs_bus.ACTIVE:
            obs_records = [graft_record(t) for t in inserted]
            obs_bus.emit(obs_events.GRAFT_APPLIED, document=document.name,
                         service=EXTERNAL_SERVICE, site=parent.uid,
                         step=self.steps, trees=obs_records,
                         **self._event_labels(trace_wire))
        if self.log.retain:
            self.log.append(GraftRecord(
                step=self.steps, document=document.name,
                service=EXTERNAL_SERVICE, site=parent.uid,
                trees=[to_wire(t) for t in inserted], obs=obs_records,
                trace=trace_wire))
        self.scheduler.promote_tried()
        self.scheduler.enqueue_trees(document, inserted)
        if self.fire_once:
            # Outside data invalidates every retirement proof: a retired
            # site's reads may now grow again, so the whole set revives.
            self.scheduler.unretire_all()
        self._notify_graft(document, parent, inserted)
        return inserted

    def _stamp_trace(self, inserted: List[Node]) -> Optional[dict]:
        """Stamp the active trace context onto a committed graft.

        Tags every call node inside the inserted trees with the context
        (so their later invocations continue the trace) and returns the
        wire dict for the GraftRecord/event.  ``None`` — one ContextVar
        read — on the untraced path.
        """
        ctx = obs_trace.current()
        if ctx is None:
            return None
        for tree in inserted:
            for tagged in tree.iter_nodes():
                if tagged.is_function:
                    self.site_traces[tagged.uid] = ctx
        return ctx.to_wire()

    def _event_labels(self, trace_wire: Optional[dict]) -> Dict[str, object]:
        """Identity labels merged into this kernel's bus events."""
        labels: Dict[str, object] = dict(self.obs_labels)
        if trace_wire is not None:
            labels["trace_id"] = trace_wire["trace_id"]
            labels["span_id"] = trace_wire["span_id"]
        return labels

    def _notify_graft(self, document: Document, node: Node,
                      inserted: List[Node]) -> None:
        for hook in self.graft_hooks:
            hook(document, node, inserted)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, path: str, *, engine: str = "sequential",
                   extra_fresh: Sequence[Site] = (),
                   exclude_sites: Iterable[int] = ()) -> str:
        """Write the full mid-run state to a JSONL bundle at ``path``.

        ``extra_fresh`` are in-flight sites (their outcomes die with the
        process, so they re-enter the frontier untried); ``exclude_sites``
        are the call uids whose incremental per-site cutoffs must *not*
        be persisted — an in-flight evaluation may have advanced the
        evaluator's cutoff past answers that never landed, and persisting
        it would lose them.  Excluded sites simply restart from a full
        evaluation on resume, which is always sound.

        The write is atomic (temp file + rename): a crash mid-checkpoint
        leaves the previous bundle intact.
        """
        if not self.documents:
            raise ValueError("this kernel has no local documents to snapshot")
        if self.log.retain:
            self._capture_seed()
        exclude = set(exclude_sites)
        records: List[dict] = [{
            "kind": "header",
            "format": BUNDLE_FORMAT,
            "engine": engine,
            "steps": self.steps,
            "productive": self.productive,
            "invocations_by_service": dict(self.invocations_by_service),
            "clock": current_stamp(),
            "graft_log": self.log.retain,
            "base_step": self.log.base_step,
            "checkpoints": self.checkpoints + 1,
            "resumed_from": self.resumed_from,
            "dedup_delivered": self.dedup_delivered,
            "promote_front": self.scheduler.promote_front,
            # Lazy-scheduling seed: the registered goal queries (resume
            # re-derives relevance from them) and the fire-once bit.
            "lazy_queries": ([str(q) for q in self.lazy_queries]
                             if self.relevance_tracker is not None else None),
            "fire_once": self.fire_once,
            # Snapshot of the columnar store's shape at checkpoint time.
            # The store is derived data — resume rebuilds it from the
            # restored trees — so this is diagnostic, not restored state.
            "store": (tree_store.store_sizes()
                      if perf.flags.columnar_store else None),
        }]
        if self.system is not None:
            for name, service in sorted(self.system.services.items()):
                if getattr(service, "is_positive", False):
                    records.append({"kind": "service", "name": name,
                                    "rules": [str(q) for q in service.queries]})
                else:
                    records.append({"kind": "service", "name": name,
                                    "opaque": True})
        for name in sorted(self.documents):
            records.append({"kind": "document", "name": name,
                            "tree": to_wire(self.documents[name].root)})
        if self._seed_wire is not None:
            for name in sorted(self._seed_wire):
                records.append({"kind": "seed", "name": name,
                                "tree": self._seed_wire[name]})
        records.append({"kind": "frontier",
                        **self.scheduler.frontier(extra_fresh)})
        for site_record in self._export_site_states(exclude):
            records.append(site_record)
        if len(self.log):
            # The graft tail dominates bundle size, so it rides as one
            # packed PXG1 batch (format 2).  Loaders still accept the
            # format-1 spelling — one readable ``graft`` record per line.
            packed = base64.b64encode(
                encode_batch(self.log.records)).decode("ascii")
            records.append({"kind": "grafts", "count": len(self.log),
                            "packed": packed})

        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, separators=(",", ":")))
                    handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.checkpoints += 1
        perf.stats.checkpoints_written += 1
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.CHECKPOINT_SAVED, path=path, engine=engine,
                         steps=self.steps, productive=self.productive,
                         grafts=len(self.log))
        return path

    def _export_site_states(self, exclude: Set[int]) -> List[dict]:
        """Per-site incremental cutoffs worth persisting.

        Only the cutoff stamp is persisted — not the assignment or result
        caches.  Restoring ``(cutoff, empty caches)`` is sound: answers
        delivered before the checkpoint are already inside the restored
        documents (duplicates re-derived after resume drop by antichain
        subsumption), and because every restored node has
        ``version <= cutoff``, the first post-resume delta evaluation
        joins against an empty delta — re-verification is nearly free.
        Sites of services that read ``input`` are skipped: their cached
        environment includes the per-call input tree, whose identity does
        not survive the process boundary.
        """
        if self.system is None:
            return []
        records: List[dict] = []
        for name, service in sorted(self.system.services.items()):
            for rule_index, site, cutoff in service.export_site_cutoffs():
                if site in exclude or not isinstance(site, int):
                    continue
                records.append({"kind": "site", "service": name,
                                "rule": rule_index, "site": site,
                                "cutoff": cutoff})
        return records
