"""``python -m paxml`` entry point."""

from .cli import main

raise SystemExit(main())
