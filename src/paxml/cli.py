"""Command-line interface: ``python -m paxml <command> …``.

Systems are described in ``.axml`` files — a directive-based format::

    % the paper's Example 3.2
    @document d0
    r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}

    @document d1
    r{!g, !f}

    @service g
    t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}

    @service f
    t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}

Each ``@document NAME`` is followed by one tree in compact syntax; each
``@service NAME`` by one or more ``;``-separated rules.  ``%`` comments
and blank lines are free.  Commands:

* ``materialize FILE``            — rewrite to the fixpoint and print it
* ``run FILE``                    — rewrite with periodic checkpointing
  (``--checkpoint PATH --checkpoint-every N``); suspendable, resumable
* ``resume BUNDLE``               — continue a checkpointed run from its
  bundle (``--engine`` finishes it on the other engine, ``--replay``
  rebuilds the state from the seed snapshot + graft log first)
* ``run-async FILE``              — same, through the concurrent runtime
  (``--concurrency``, per-call ``--call-timeout``, ``--fault-rate`` …)
* ``query FILE RULE``             — evaluate a query (snapshot by default;
  ``--full`` materialises first, ``--lazy`` invokes only relevant calls)
* ``analyze FILE``                — classification, dependency cycles,
  termination verdict
* ``plan FILE [RULE]``            — print the compiled match plan (sibling
  order, constant subpatterns, probes, join order) of a rule, or of every
  positive service when the rule is omitted
* ``translate FILE RULE``         — apply ψ and print the translated system
* ``export FILE DOCUMENT``        — emit one document as XML
* ``explain FILE [--node UID]``   — materialize under tracing and print a
  node's full derivation chain (which rule grafted it, matched against
  which nodes, at which step) — or list every graft
* ``trace FILE``                  — run under tracing and write the event
  log (JSONL) plus a Chrome trace for chrome://tracing / Perfetto
* ``serve``                       — start the multi-tenant JSONL/TCP
  server (``--tenant NAME=FILE`` preloads systems; ``--spool DIR``
  enables suspend/resume and restart)
* ``client REQUEST…``             — send JSONL requests to a running
  server and print responses (``--follow N`` keeps listening for
  subscription delta pushes)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from . import obs, perf
from .analysis import analyze_termination, lazy_evaluate, translate
from .query import evaluate_snapshot, parse_query
from .system import AXMLSystem, dependency_graph, materialize
from .system.loader import SystemFileError, parse_system_text
from .tree import to_canonical, to_xml_string
from .tree.parser import ParseError


class CliError(SystemExit):
    def __init__(self, message: str):
        print(f"error: {message}", file=sys.stderr)
        super().__init__(2)


def parse_system_file(text: str, filename: str = "<input>") -> AXMLSystem:
    """Parse the directive-based ``.axml`` format described above.

    Thin CLI wrapper over :func:`paxml.system.loader.parse_system_text`
    (the serve layer uses the loader directly — its errors are plain
    values, not exiting ``CliError``\\ s).
    """
    try:
        return parse_system_text(text, filename)
    except SystemFileError as exc:
        raise CliError(str(exc))


def _load(path: str) -> AXMLSystem:
    try:
        with open(path) as handle:
            return parse_system_file(handle.read(), path)
    except OSError as exc:
        raise CliError(str(exc))


def _parse_rule(text: str):
    try:
        return parse_query(text)
    except ParseError as exc:
        raise CliError(f"in query: {exc}")


def cmd_materialize(args) -> int:
    system = _load(args.file)
    result = materialize(system, max_steps=args.max_steps,
                         scheduler=args.scheduler)
    print(f"status: {result.status.value}  "
          f"steps: {result.steps}  productive: {result.productive_steps}")
    print(system.pretty())
    return 0


def _lazy_queries(args) -> Optional[List]:
    """The parsed goal set of ``--lazy --query Q [--query Q2 …]``."""
    if not getattr(args, "lazy", False):
        return None
    texts = getattr(args, "queries", None) or []
    if not texts:
        raise CliError("--lazy needs at least one --query (the goal set)")
    return [_parse_rule(text) for text in texts]


def cmd_run(args) -> int:
    from .system.rewriting import RewritingEngine

    system = _load(args.file)
    lazy_for = _lazy_queries(args)
    if getattr(args, "shards", 1) and args.shards > 1:
        if getattr(args, "fire_once", False):
            raise CliError("--fire-once is per-process (feeder live-counts "
                           "are local); it cannot combine with --shards")
        return _run_sharded(system, args)
    engine = RewritingEngine(system, scheduler=args.scheduler,
                             checkpoint_every=args.checkpoint_every,
                             checkpoint_path=args.checkpoint,
                             lazy_for=lazy_for,
                             fire_once=getattr(args, "fire_once", False))
    result = engine.run(max_steps=args.max_steps)
    print(f"status: {result.status.value}  "
          f"steps: {result.steps}  productive: {result.productive}  "
          f"checkpoints: {result.checkpoints}")
    scheduler = engine.kernel.scheduler
    if lazy_for is not None or getattr(args, "fire_once", False):
        print(f"lazy: dormant {scheduler.dormant_count()}  "
              f"retired {scheduler.retired_count()}  "
              f"skipped {scheduler.skipped_unneeded}  "
              f"promoted {scheduler.dormant_promotions}")
    if args.checkpoint is not None:
        print(f"bundle: {args.checkpoint}")
    if lazy_for is not None:
        for index, query in enumerate(lazy_for):
            answer = evaluate_snapshot(query, system.environment())
            print(f"query {index}: "
                  + (answer.pretty() if len(answer) else "(empty result)"))
    print(system.pretty())
    return 0


def _run_sharded(system, args) -> int:
    from .shard import ShardError, run_sharded
    from .system.system import AXMLSystem

    try:
        result = run_sharded(system, args.shards, mode=args.shard_mode,
                             engine=args.shard_engine,
                             config={"max_invocations": args.max_steps},
                             lazy_queries=(getattr(args, "queries", None)
                                           if getattr(args, "lazy", False)
                                           else None))
    except ShardError as exc:
        raise CliError(str(exc))
    print(f"shards: {args.shards}  rounds: {result.rounds}  "
          f"records: {result.records}  respawns: {result.respawns}  "
          f"replay: {'ok' if result.replay_ok else 'DIVERGED'}  "
          f"wall: {result.wall_seconds:.3f}s")
    for shard in range(args.shards):
        owned = ", ".join(result.plan.owned(shard)) or "-"
        cpu = result.cpu_seconds.get(shard, 0.0)
        stats = result.worker_stats.get(shard, {})
        print(f"  shard {shard}: docs [{owned}]  cpu {cpu:.3f}s  "
              f"shipped {stats.get('shard_records_shipped', 0)}  "
              f"applied {stats.get('shard_records_applied', 0)}")
    for failure in result.failures:
        print(f"failed: {failure}", file=sys.stderr)
    merged = AXMLSystem(list(result.documents.values()),
                        list(system.services.values()),
                        validate=False, reduce=False)
    print(merged.pretty())
    if not result.replay_ok:
        for error in result.replay_errors:
            print(f"replay: {error}", file=sys.stderr)
        return 1
    return 0 if not result.failures else 1


def cmd_resume(args) -> int:
    from .kernel import resume
    from .runtime import RuntimeConfig
    from .system.rewriting import RewritingEngine

    engine = resume(args.bundle, engine=args.engine, replay=args.replay,
                    config=RuntimeConfig(max_invocations=args.max_steps))
    result = (engine.run(max_steps=args.max_steps)
              if isinstance(engine, RewritingEngine) else engine.run())
    print(f"status: {result.status.value}  "
          f"steps: {result.steps}  productive: {result.productive}  "
          f"resumed from: {result.resumed_from}")
    print(engine.system.pretty())
    return 0 if result.terminated else 1


def cmd_run_async(args) -> int:
    from .runtime import (FaultInjector, LocalTransport, RuntimeConfig,
                          AsyncRuntime)

    system = _load(args.file)
    config = RuntimeConfig(
        concurrency=args.concurrency,
        call_timeout=args.call_timeout,
        max_attempts=args.max_attempts,
        max_invocations=args.max_steps,
        deadline=args.deadline,
        seed=args.seed,
    )
    injector = None
    if args.fault_rate:
        # Spread the requested rate over the four fault kinds.
        quarter = args.fault_rate / 4.0
        injector = FaultInjector(seed=args.seed or 0, drop_rate=quarter,
                                 error_rate=quarter, delay_rate=quarter,
                                 duplicate_rate=quarter)
    transport = LocalTransport(system, latency=args.latency or None)
    runtime = AsyncRuntime(system, transport=transport, config=config,
                           injector=injector)
    result = runtime.run()
    print(f"status: {result.status.value}  "
          f"invocations: {result.invocations}  "
          f"productive: {result.productive_grafts}  "
          f"attempts: {result.attempts}  "
          f"wall: {result.duration_seconds:.3f}s")
    for failure in result.failures:
        print(f"failed: !{failure.service} in {failure.document!r} "
              f"after {failure.attempts} attempts — {failure.reason}",
              file=sys.stderr)
    if args.metrics:
        print(json.dumps(result.metrics.snapshot(), indent=2, sort_keys=True))
    print(system.pretty())
    return 0 if result.terminated else 1


def cmd_query(args) -> int:
    system = _load(args.file)
    query = _parse_rule(args.rule)
    if args.lazy:
        outcome = lazy_evaluate(system, query, max_invocations=args.max_steps)
        print(f"lazy: {outcome.invocations} invocations, "
              f"stable: {outcome.stable}")
        answer = outcome.answer
    elif args.full:
        result = materialize(system, max_steps=args.max_steps)
        print(f"materialised: {result.status.value} ({result.steps} steps)")
        answer = evaluate_snapshot(query, system.environment())
    else:
        answer = evaluate_snapshot(query, system.environment())
    print(answer.pretty() if len(answer) else "(empty result)")
    return 0


def cmd_analyze(args) -> int:
    system = _load(args.file)
    print(f"documents: {sorted(system.documents)}")
    print(f"services:  {sorted(system.services)}")
    print(f"positive:  {system.is_positive}")
    print(f"simple:    {system.is_simple}")
    graph = dependency_graph(system)
    cyclic = sorted(graph.cyclic_vertices())
    print(f"acyclic:   {not cyclic}" + (f"  (cycle through {cyclic})"
                                        if cyclic else ""))
    report = analyze_termination(system, max_steps=args.max_steps)
    print(f"termination: {report.status.value} "
          f"({report.steps} saturation steps, "
          f"{report.configs_seen} configurations)")
    if report.witness:
        print(f"  divergence witness chain: {len(report.witness)} configs, "
              f"repeating {report.witness[0][0]!r}")
    if getattr(args, "queries", None):
        _relevance_report(system, graph,
                          [_parse_rule(text) for text in args.queries])
    return 0


def _relevance_report(system, graph, queries) -> None:
    """Static §4 relevance report: what a lazy run for ``queries`` would
    and would not invoke — without running anything."""
    from .analysis import RelevanceTracker

    tracker = RelevanceTracker(system, queries)
    relevant = {node.uid for _, node in tracker.relevant_sites()}
    print(f"relevance (goal set: {len(queries)} queries, "
          f"{tracker.goal_count} goals):")
    rows = []
    for document, node in system.call_sites():
        verdict = "weakly relevant" if node.uid in relevant else "unneeded"
        rows.append((document.name, node.marking.name, node.uid, verdict))
    for doc_name, service, uid, verdict in sorted(rows):
        print(f"  !{service:<18} {doc_name}#{uid:<6} {verdict}")
    total = len(rows)
    needed = sum(1 for row in rows if row[3] == "weakly relevant")
    print(f"  {needed}/{total} call sites weakly relevant "
          f"({total - needed} would stay dormant)")
    recursive = graph.recursive_functions()
    eligible = sorted(name for name in system.services
                      if name not in recursive)
    print(f"fire-once eligible: {', '.join(eligible) or '(none)'}"
          + (f"  (recursive: {', '.join(sorted(recursive))})"
             if recursive else ""))


def cmd_translate(args) -> int:
    system = _load(args.file)
    query = _parse_rule(args.rule)
    result = translate(system, query)
    print(f"% ψ(I, q) — simplicity preserved: {result.preserves_simplicity}")
    for name, document in result.system.documents.items():
        print(f"@document {name}")
        print(to_canonical(document.root))
        print()
    for name, service in result.system.services.items():
        print(f"@service {name}")
        queries = getattr(service, "queries", [])
        print(";\n".join(str(rule) for rule in queries))
        print()
    print(f"% translated query:\n% {result.query}")
    return 0


def cmd_export(args) -> int:
    system = _load(args.file)
    document = system.documents.get(args.document)
    if document is None:
        raise CliError(f"no document {args.document!r} "
                       f"(have {sorted(system.documents)})")
    print(to_xml_string(document.root))
    return 0


def _node_texts(system: AXMLSystem, limit: int = 60) -> Dict[int, str]:
    """uid → canonical text for every node currently in the documents."""
    texts: Dict[int, str] = {}
    for document in system.documents.values():
        for node in document.root.iter_nodes():
            text = to_canonical(node)
            if len(text) > limit:
                text = text[:limit - 3] + "..."
            texts[node.uid] = text
    return texts


def _plan_order_lines(system: AXMLSystem) -> List[str]:
    """One compact line per positive service rule: its chosen plan order."""
    from .query.plan import compile_query

    if not perf.flags.query_planner:
        return []
    lines: List[str] = []
    environment = system.environment()
    for name in sorted(system.services):
        for rule in getattr(system.services[name], "queries", []):
            plan = compile_query(rule)
            try:
                order = plan.join_order(environment)
            except KeyError:  # rule reads input/context: no census available
                order = list(range(len(plan.atoms)))
            rendered = " → ".join(
                f"{plan.atoms[i].document}[{i}]" for i in order) or "(no body)"
            lines.append(f"plan !{name}: {rendered}")
    return lines


def cmd_plan(args) -> int:
    from .query.plan import describe_plan

    system = _load(args.file)
    environment = system.environment()
    rules = None
    if args.rule is not None:
        rules = [_parse_rule(args.rule)]
        print(describe_plan(rules[0], environment))
    else:
        first = True
        for name in sorted(system.services):
            for rule in getattr(system.services[name], "queries", []):
                if not first:
                    print()
                first = False
                print(f"service !{name}")
                print(describe_plan(rule, environment))
        if first:
            print("(no positive services)")
    if getattr(args, "stats", False):
        _print_plan_stats(system, environment, rules)
    return 0


def _print_plan_stats(system, environment, rules) -> None:
    """Evaluate the planned rules once and report the counters they hit."""
    from . import perf
    from .query.matching import evaluate_snapshot
    from .tree import store as tree_store

    if rules is None:
        rules = [rule for name in sorted(system.services)
                 for rule in getattr(system.services[name], "queries", [])]
    perf.stats.reset()
    for rule in rules:
        try:
            evaluate_snapshot(rule, environment)
        except KeyError:
            continue  # rule reads a document this system does not declare
    snapshot = perf.stats.snapshot()
    print()
    print("engine counters (one snapshot evaluation per rule):")
    for counter in ("plan_compilations", "closure_compilations",
                    "const_subpattern_tests", "bitset_rejects",
                    "subsumption_early_rejects", "store_rebuild_patches",
                    "store_graft_patches", "facade_materializations"):
        print(f"  {counter}: {snapshot.get(counter, 0)}")
    if perf.flags.columnar_store:
        sizes = tree_store.store_sizes()
        print(f"  store rows: {sizes['rows']}  "
              f"interned markings: {sizes['interned_markings']}  "
              f"child pool: {sizes['child_pool']}")


def cmd_explain(args) -> int:
    system = _load(args.file)
    initial_texts = _node_texts(system)
    plan_lines = _plan_order_lines(system)
    recorder = obs.TraceRecorder()
    with obs.tracing(recorder):
        result = materialize(system, max_steps=args.max_steps,
                             scheduler=args.scheduler)
    index = recorder.provenance()
    print(f"status: {result.status.value}  steps: {result.steps}  "
          f"grafts: {len(index)}  derived nodes: {len(index.derived_uids())}")
    for line in plan_lines:
        print(line)
    if args.node is None and args.graft is None:
        for derivation in index.roots():
            print(f"node {derivation.root} = {derivation.text}: "
                  f"{derivation.headline()}")
        return 0
    if args.node is None:
        # Run-relative addressing: node uids shift between processes once
        # anything else has allocated nodes, graft ordinals don't.
        try:
            root = index.roots()[args.graft].root
        except IndexError:
            raise CliError(f"graft index {args.graft} out of range "
                           f"(this run grafted {len(index)} trees)")
        print(index.format_explain(root, node_texts=initial_texts))
        return 0
    if index.derivation_of(args.node) is None:
        if args.node in initial_texts:
            print(f"node {args.node} = {initial_texts[args.node]}: "
                  f"initial data")
            return 0
        raise CliError(
            f"no node with uid {args.node} in this run "
            f"(grafted roots: {sorted(d.root for d in index.roots())})")
    print(index.format_explain(args.node, node_texts=initial_texts))
    return 0


def _split_endpoint(spec: str) -> Tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise CliError(f"--serve wants HOST:PORT, got {spec!r}")
    return host, int(port)


def _trace_serve(args) -> int:
    """``paxml trace --serve HOST:PORT`` — tail spans from a live server."""
    import asyncio

    from .serve.client import ServeClient, ServeError

    host, port = _split_endpoint(args.serve)

    async def _tail() -> int:
        try:
            client = await ServeClient.connect(host, port)
        except OSError as exc:
            raise CliError(f"cannot reach {host}:{port}: {exc}")
        loop = asyncio.get_event_loop()
        deadline = (None if args.duration is None
                    else loop.time() + args.duration)
        try:
            watch_id = await client.watch()
            while deadline is None or loop.time() < deadline:
                span = await client.next_span(watch_id, timeout=0.5)
                if span is not None:
                    print(json.dumps(span, sort_keys=True), flush=True)
            try:
                await client.unwatch(watch_id)
            except ServeError:
                pass
        finally:
            await client.close()
        return 0

    try:
        return asyncio.run(_tail())
    except KeyboardInterrupt:
        return 0


def cmd_trace(args) -> int:
    from .obs.exporters import (prometheus_text, write_chrome_trace,
                                write_jsonl)

    if args.serve:
        return _trace_serve(args)
    if args.file is None:
        raise CliError("trace needs an .axml file (or --serve HOST:PORT)")
    system = _load(args.file)
    recorder = obs.TraceRecorder()
    with obs.tracing(recorder):
        if args.engine == "async":
            from .runtime import AsyncRuntime, LocalTransport, RuntimeConfig

            config = RuntimeConfig(concurrency=args.concurrency,
                                   max_invocations=args.max_steps)
            transport = LocalTransport(system, latency=args.latency or None)
            result = AsyncRuntime(system, transport=transport,
                                  config=config).run()
        else:
            result = materialize(system, max_steps=args.max_steps)
    base = args.out or os.path.splitext(args.file)[0]
    events_path = base + ".events.jsonl"
    trace_path = base + ".trace.json"
    write_jsonl(recorder.events, events_path)
    write_chrome_trace(recorder.events, trace_path)
    kinds: Dict[str, int] = {}
    for event in recorder.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    print(f"status: {result.status.value}  engine: {args.engine}  "
          f"events: {len(recorder.events)}")
    print("  " + "  ".join(f"{kind}: {count}"
                           for kind, count in sorted(kinds.items())))
    index = recorder.provenance()
    print(f"grafts: {len(index)}  derived nodes: {len(index.derived_uids())}")
    print(f"event log:    {events_path}")
    print(f"chrome trace: {trace_path}  "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.metrics:
        print(prometheus_text())
    return 0 if result.terminated else 1


def cmd_serve(args) -> int:
    import asyncio

    from .runtime.policy import RuntimeConfig
    from .serve.server import PaxmlServer, ServerOptions

    options = ServerOptions(
        host=args.host, port=args.port, spool_dir=args.spool,
        workers=args.workers,
        slice_attempts=args.slice_attempts,
        idle_suspend=args.idle_suspend,
        trace_sample_rate=args.trace_sample_rate,
        watchdog_deadline=args.watchdog_deadline or None,
        flight_capacity=args.flight_capacity,
        config=RuntimeConfig(concurrency=args.concurrency,
                             call_timeout=args.call_timeout))
    preload: List[Tuple[str, str]] = []
    for spec in args.tenant or []:
        name, _, path = spec.partition("=")
        if not path:
            raise CliError(f"--tenant wants NAME=FILE, got {spec!r}")
        try:
            with open(path) as handle:
                preload.append((name, handle.read()))
        except OSError as exc:
            raise CliError(str(exc))

    async def _serve() -> None:
        server = PaxmlServer(options)
        await server.start()
        for name, text in preload:
            if server.pool is not None:
                await server.pool.place(name, text)
            else:
                server.create_tenant(name, text)
        print(f"paxml serve: listening on {options.host}:{server.port}"
              + (f"  spool={options.spool_dir}" if options.spool_dir else "")
              + (f"  tenants={len(preload)}" if preload else ""))
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("paxml serve: stopped")
    return 0


def cmd_client(args) -> int:
    import asyncio

    from .serve.client import ServeClient, ServeError

    requests: List[dict] = []
    for text in args.request:
        try:
            requests.append(json.loads(text))
        except json.JSONDecodeError as exc:
            raise CliError(f"bad request {text!r}: {exc}")

    async def _run() -> int:
        try:
            client = await ServeClient.connect(args.host, args.port)
        except OSError as exc:
            raise CliError(f"cannot reach {args.host}:{args.port}: {exc}")
        status = 0
        try:
            for request in requests:
                op = request.pop("op", None)
                if op is None:
                    raise CliError("each request needs an \"op\"")
                try:
                    response = await client.request(op, **request)
                    print(json.dumps(response, sort_keys=True))
                except ServeError as exc:
                    print(json.dumps({"ok": False, "error": str(exc)}))
                    status = 1
            if args.follow:
                deadline = asyncio.get_event_loop().time() + args.follow
                subs = list(client._deltas)
                while asyncio.get_event_loop().time() < deadline and subs:
                    for sub_id in subs:
                        batch = await client.next_delta(sub_id, timeout=0.2)
                        if batch:
                            print(json.dumps({"push": "delta", "sub": sub_id,
                                              "answers": batch}))
        finally:
            await client.close()
        return status

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 130


def _render_top(stats: dict, previous: Dict[str, int],
                interval: Optional[float]) -> List[str]:
    """One ``paxml top`` frame from a no-tenant ``stats`` response."""
    tenants = stats.get("tenants", [])
    watchdog = stats.get("watchdog", {})
    burn: Dict[str, float] = {}
    for row in stats.get("slo", []):
        burn[row["tenant"]] = max(burn.get(row["tenant"], 0.0),
                                  row.get("burn_rate", 0.0))
    shards = stats.get("shards")
    live = sum(1 for t in tenants if not t["suspended"])
    stalled = sum(1 for t in tenants if t.get("stalled"))
    lines = [f"paxml top — {len(tenants)} tenants ({live} live, "
             f"{stalled} stalled); watchdog deadline "
             f"{watchdog.get('deadline')}"]
    if shards:
        # One lane per session host: placement, queue depth, and the
        # replication lag (graft-log records not yet in a bundle).
        lines.append(f"{'SHARD':<7}{'PLACED':>8}{'QUEUE':>8}{'LAG':>8}"
                     f"{'CPU':>9}")
        for report in shards:
            label = str(report.get("shard", "?"))
            if report.get("down"):
                lines.append(f"{label:<7}{'DOWN':>8}")
                continue
            lines.append(
                f"{label:<7}{report.get('placed', 0):>8}"
                f"{report.get('queue_depth', 0):>8}"
                f"{report.get('replication_lag', 0):>8}"
                f"{report.get('cpu_seconds', 0.0):>9.2f}")
    shard_head = f"{'SH':<4}" if shards is not None else ""
    lines.append(f"{'TENANT':<16}{shard_head}"
                 f"{'STATE':<11}{'GRAFTS':>8}{'G/S':>8}"
                 f"{'ATTEMPTS':>9}{'FRESH':>7}{'PARKED':>7}{'TRIED':>7}"
                 f"{'LAZY':>7}{'SUBS':>6}{'BURN':>8}")
    for t in sorted(tenants, key=lambda entry: entry["tenant"]):
        name = t["tenant"]
        rate = 0.0
        if interval and name in previous:
            rate = max(t["productive"] - previous[name], 0) / interval
        previous[name] = t["productive"]
        state = ("suspended" if t["suspended"]
                 else "STALLED" if t.get("stalled") else "live")
        queues = t.get("queues", {})
        shard_cell = ""
        if shards is not None:
            shard = t.get("shard")
            shard_cell = f"{'-' if shard is None else shard:<4}"
        lazy = t.get("lazy")
        # "-" = eager tenant; a lazy one shows dormant(+retired) sites.
        lazy_cell = "-" if not lazy else (
            f"{lazy.get('dormant', 0)}"
            + (f"+{lazy['retired']}r" if lazy.get("retired") else ""))
        lines.append(
            f"{name:<16}{shard_cell}"
            f"{state:<11}{t['productive']:>8}{rate:>8.1f}"
            f"{t['attempts']:>9}{queues.get('fresh', 0):>7}"
            f"{queues.get('parked', 0):>7}{queues.get('tried', 0):>7}"
            f"{lazy_cell:>7}{t['subscribers']:>6}{burn.get(name, 0.0):>8.2f}")
    breached = [row for row in stats.get("slo", []) if row.get("breached")]
    for row in breached:
        lines.append(f"  SLO BREACH {row['slo']} tenant={row['tenant']} "
                     f"burn={row['burn_rate']:.2f} "
                     f"bad={row['bad_total']}/{row['observed']}")
    return lines


def cmd_top(args) -> int:
    import asyncio

    from .serve.client import ServeClient

    async def _top() -> int:
        try:
            client = await ServeClient.connect(args.host, args.port)
        except OSError as exc:
            raise CliError(f"cannot reach {args.host}:{args.port}: {exc}")
        previous: Dict[str, int] = {}
        last_time: Optional[float] = None
        frames = 0
        try:
            while True:
                stats = await client.request("stats")
                now = asyncio.get_event_loop().time()
                interval = None if last_time is None else now - last_time
                last_time = now
                print("\n".join(_render_top(stats, previous, interval)),
                      flush=True)
                frames += 1
                if args.iterations and frames >= args.iterations:
                    return 0
                await asyncio.sleep(args.interval)
        finally:
            await client.close()

    try:
        return asyncio.run(_top())
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="paxml",
        description="Positive Active XML (PODS 2004) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="an .axml system file")
        p.add_argument("--max-steps", type=int, default=100_000,
                       help="invocation budget (default 100000)")

    p = sub.add_parser("materialize", help="rewrite to the fixpoint")
    common(p)
    p.add_argument("--scheduler", default="round_robin",
                   choices=["round_robin", "random", "lifo"])
    p.set_defaults(fn=cmd_materialize)

    p = sub.add_parser("run",
                       help="rewrite to the fixpoint with periodic "
                            "checkpointing")
    common(p)
    p.add_argument("--scheduler", default="round_robin",
                   choices=["round_robin", "random", "lifo"])
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write resumable JSONL bundles to PATH")
    p.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                   help="checkpoint every N completed invocations "
                        "(requires --checkpoint)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="partition the documents across N worker processes "
                        "with graft-log replication (default 1 = in-process)")
    p.add_argument("--shard-mode", default="replicate",
                   choices=["replicate", "route"],
                   help="replicate: all workers evaluate locally; route: "
                        "ship calls to the shard owning the read documents")
    p.add_argument("--shard-engine", default="async",
                   choices=["async", "sequential"],
                   help="the engine each shard worker runs (default async)")
    p.add_argument("--lazy", action="store_true",
                   help="relevance-guided scheduling: invoke only the calls "
                        "weakly relevant to the --query goal set; the run "
                        "stabilizes (answers exact) instead of terminating")
    p.add_argument("--query", action="append", dest="queries", metavar="RULE",
                   help="a goal query for --lazy (repeatable)")
    p.add_argument("--fire-once", action="store_true",
                   help="retire non-recursive services once their feeders "
                        "quiesce (single-process only)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("resume",
                       help="continue a checkpointed run from its bundle")
    p.add_argument("bundle", help="a JSONL checkpoint bundle")
    p.add_argument("--max-steps", type=int, default=100_000,
                   help="cumulative invocation budget (default 100000)")
    p.add_argument("--engine", default=None,
                   choices=["sequential", "async"],
                   help="finish on this engine (default: the bundle's own)")
    p.add_argument("--replay", action="store_true",
                   help="rebuild the documents by replaying the graft log "
                        "against the seed snapshot (validated against the "
                        "direct snapshot)")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("run-async",
                       help="materialize through the concurrent runtime")
    common(p)
    p.add_argument("--concurrency", type=int, default=8,
                   help="max calls in flight (default 8)")
    p.add_argument("--call-timeout", type=float, default=5.0,
                   help="per-attempt deadline in seconds (default 5)")
    p.add_argument("--max-attempts", type=int, default=4,
                   help="tries per invocation incl. retries (default 4)")
    p.add_argument("--deadline", type=float, default=None,
                   help="global wall-clock budget in seconds")
    p.add_argument("--latency", type=float, default=0.0,
                   help="simulated per-call latency in seconds")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="inject drop/error/delay/duplicate faults at this "
                        "total per-attempt rate")
    p.add_argument("--seed", type=int, default=None,
                   help="seed for jitter and the fault schedule")
    p.add_argument("--metrics", action="store_true",
                   help="print the runtime metrics snapshot as JSON")
    p.set_defaults(fn=cmd_run_async)

    p = sub.add_parser("query", help="evaluate a positive query")
    common(p)
    p.add_argument("rule", help="a rule, e.g. 'out{$x} :- d/a{$x}'")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--full", action="store_true",
                      help="materialise first ([q](I))")
    mode.add_argument("--lazy", action="store_true",
                      help="invoke only weakly relevant calls")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("analyze", help="classify and decide termination")
    common(p)
    p.add_argument("--query", action="append", dest="queries", metavar="RULE",
                   help="also print the §4 relevance report for this goal "
                        "query (repeatable): which call sites a lazy run "
                        "would invoke, which stay dormant, and which "
                        "services are fire-once eligible")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("plan",
                       help="print the compiled match plan of a query (or "
                            "of every positive service)")
    common(p)
    p.add_argument("rule", nargs="?", default=None,
                   help="a rule to plan; omit to plan all service rules")
    p.add_argument("--stats", action="store_true",
                   help="evaluate each planned rule once against the system "
                        "and print the engine counters (bitset rejects, "
                        "closure lowerings, store shape) it exercised")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("translate", help="apply the ψ translation")
    common(p)
    p.add_argument("rule", help="a positive+reg query")
    p.set_defaults(fn=cmd_translate)

    p = sub.add_parser("export", help="emit a document as XML")
    common(p)
    p.add_argument("document", help="document name")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("explain",
                       help="trace a materialization and explain how a "
                            "node was derived")
    common(p)
    p.add_argument("--node", type=int, default=None,
                   help="uid of the node to explain "
                        "(omit to list every graft)")
    p.add_argument("--graft", type=int, default=None,
                   help="explain the N-th grafted tree of this run "
                        "(negative counts from the end)")
    p.add_argument("--scheduler", default="round_robin",
                   choices=["round_robin", "random", "lifo"])
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("trace",
                       help="run under tracing; write the JSONL event log "
                            "and a Chrome trace — or tail live spans from "
                            "a running server (--serve)")
    p.add_argument("file", nargs="?", default=None,
                   help="an .axml system file (omit with --serve)")
    p.add_argument("--max-steps", type=int, default=100_000,
                   help="invocation budget (default 100000)")
    p.add_argument("--serve", default=None, metavar="HOST:PORT",
                   help="tail causal spans from a live server as JSONL "
                        "instead of tracing a local run")
    p.add_argument("--duration", type=float, default=None,
                   help="with --serve: stop tailing after this many seconds "
                        "(default: until interrupted)")
    p.add_argument("--engine", default="sequential",
                   choices=["sequential", "async"])
    p.add_argument("--concurrency", type=int, default=8,
                   help="async engine: max calls in flight (default 8)")
    p.add_argument("--latency", type=float, default=0.0,
                   help="async engine: simulated per-call latency")
    p.add_argument("--out", default=None,
                   help="output base path (default: the input file stem)")
    p.add_argument("--metrics", action="store_true",
                   help="print the unified metrics registry in Prometheus "
                        "text format")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("serve",
                       help="start the multi-tenant JSONL/TCP server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (0 = ephemeral; default 8642)")
    p.add_argument("--tenant", action="append", metavar="NAME=FILE",
                   help="preload a tenant from an .axml file (repeatable)")
    p.add_argument("--spool", default=None,
                   help="spool directory: enables suspend/resume and "
                        "restart from checkpoint bundles")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="place tenant sessions on N shard worker "
                        "processes; suspend/resume migrates tenants "
                        "between workers (default 0 = in-process)")
    p.add_argument("--slice-attempts", type=int, default=64,
                   help="admission quantum: attempts per tenant slice "
                        "(default 64)")
    p.add_argument("--idle-suspend", type=float, default=None,
                   help="spool tenants idle for this many seconds")
    p.add_argument("--concurrency", type=int, default=8,
                   help="per-tenant calls in flight (default 8)")
    p.add_argument("--call-timeout", type=float, default=5.0,
                   help="per-call deadline in seconds (default 5)")
    p.add_argument("--trace-sample-rate", type=float, default=None,
                   help="head-sampling rate for request traces "
                        "(default 0.1; 1.0 = trace everything)")
    p.add_argument("--watchdog-deadline", type=float, default=5.0,
                   help="flag sessions whose frontier stalls this long "
                        "(0 disables; default 5)")
    p.add_argument("--flight-capacity", type=int, default=512,
                   help="flight-recorder ring size per tenant (default 512)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("top",
                       help="live per-tenant view of a running server "
                            "(grafts/s, queues, SLO burn, watchdog)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between frames (default 2)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N frames (default: until interrupted)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("client",
                       help="send JSONL requests to a running server")
    p.add_argument("request", nargs="+",
                   help="a JSON request object, e.g. "
                        "'{\"op\": \"tenants\"}'")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--follow", type=float, default=None, metavar="SECONDS",
                   help="after the requests, keep printing subscription "
                        "delta pushes for this long")
    p.set_defaults(fn=cmd_client)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    # One CLI invocation is one run: start the perf switchboard from zero
    # so back-to-back main() calls (tests, scripts) don't inherit counters
    # from a previous run.  Process-level caches are dropped too — their
    # overflow clears are fill-dependent, so inherited entries would make
    # identical runs report different hit/miss counts.
    perf.stats.reset()
    perf.clear_caches()
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
