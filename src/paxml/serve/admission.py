"""Admission control: per-tenant attempt budgets and fair rotation.

The unit of admission is the *attempt lease*: a bounded number of
transport attempts granted to one tenant's kernel scheduler
(:meth:`~paxml.kernel.scheduler.CallScheduler.grant`) for one slice.
Theorem 2.1's order-independence is what makes slicing safe — whatever
interleaving the rotation produces, every tenant's system converges to
the same fixpoint it would reach running alone.

Budgets are two-level: ``slice_attempts`` caps a single lease (the
fairness quantum — how long one tenant may hold the driver), and
``total_attempts`` optionally caps the tenant's lifetime spend (a hard
quota; once exhausted the tenant is never scheduled again, though
injections, reads and subscriptions still work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class TenantBudget:
    """Admission knobs for one tenant."""

    slice_attempts: int = 64
    total_attempts: Optional[int] = None


class AdmissionController:
    """Round-robin attempt leases over the registered tenants."""

    def __init__(self, default_budget: Optional[TenantBudget] = None):
        self.default_budget = default_budget or TenantBudget()
        self._budgets: Dict[str, TenantBudget] = {}
        self._spent: Dict[str, int] = {}
        self._order: List[str] = []
        self._cursor = 0

    def register(self, tenant: str,
                 budget: Optional[TenantBudget] = None) -> None:
        if tenant not in self._budgets:
            self._order.append(tenant)
        self._budgets[tenant] = budget or self.default_budget
        self._spent.setdefault(tenant, 0)

    def forget(self, tenant: str) -> None:
        self._budgets.pop(tenant, None)
        self._spent.pop(tenant, None)
        if tenant in self._order:
            index = self._order.index(tenant)
            self._order.remove(tenant)
            if index < self._cursor:
                self._cursor -= 1
            if self._order:
                self._cursor %= len(self._order)
            else:
                self._cursor = 0

    def spent(self, tenant: str) -> int:
        return self._spent.get(tenant, 0)

    def lease(self, tenant: str) -> int:
        """Attempts this tenant may spend in its next slice (0 = quota out)."""
        budget = self._budgets.get(tenant)
        if budget is None:
            return 0
        lease = budget.slice_attempts
        if budget.total_attempts is not None:
            lease = min(lease, budget.total_attempts - self.spent(tenant))
        return max(lease, 0)

    def settle(self, tenant: str, attempts: int) -> None:
        """Record what a finished slice actually spent."""
        self._spent[tenant] = self.spent(tenant) + max(attempts, 0)

    def exhausted(self, tenant: str) -> bool:
        budget = self._budgets.get(tenant)
        return (budget is not None
                and budget.total_attempts is not None
                and self.spent(tenant) >= budget.total_attempts)

    def next_tenant(self, runnable) -> Optional[str]:
        """The next tenant in rotation that is runnable and has quota.

        ``runnable`` is a predicate (tenant name → bool) supplied by the
        driver; the rotation cursor advances past the chosen tenant, so
        repeated calls cycle fairly even if one tenant always has work.
        """
        count = len(self._order)
        for offset in range(count):
            index = (self._cursor + offset) % count
            tenant = self._order[index]
            if self.lease(tenant) > 0 and runnable(tenant):
                self._cursor = (index + 1) % count
                return tenant
        return None
