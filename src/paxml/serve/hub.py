"""Continuous-query fan-out: one shared answer log, N cursors.

The exactness contract (checked by the oracle suite): for every
subscriber, *initial answers + pushed deltas*, reduced, equals the
from-scratch evaluation of its query against the tenant's current
documents — at every graft prefix.  Monotonicity (Proposition 3.1) is
what makes an append-only stream sufficient: answers never retract.

The cost contract: landing one graft refreshes each registered query
once (:meth:`ContinuousQueryLog.refresh` — a semi-naive delta join
against the data newer than the query's cutoff), *independent of the
subscriber count*.  Subscribers share the query's log and each hold a
plain integer cursor; delivery is a list slice.  Fan-out overhead per
graft is therefore O(#queries · delta), plus one wake-up pulse per
query that actually gained answers.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..query.incremental import ContinuousQueryLog
from ..query.parser import parse_query
from ..query.rule import PositiveQuery
from ..tree.node import Node


class SubscriptionError(ValueError):
    """The query cannot be served as a subscription."""


class Subscription:
    """One subscriber's cursor into a shared :class:`ContinuousQueryLog`."""

    def __init__(self, hub: "SubscriptionHub", query_key: str, sub_id: int,
                 initial: List[str]):
        self.hub = hub
        self.query_key = query_key
        self.sub_id = sub_id
        self.initial = initial          # answers known at registration
        self.cursor = len(initial)      # next unread log position
        self.closed = False
        # Sidecar of the last drain: per-answer causal trace wire dicts
        # and the perf_counter stamp of the oldest drained answer (what
        # the server's delta-push SLO measures end-to-end latency from).
        self.last_traces: List[Optional[dict]] = []
        self.last_stamp: Optional[float] = None

    def drain(self) -> List[str]:
        """Every answer past the cursor, without waiting."""
        log = self.hub._logs[self.query_key]
        self.cursor, fresh, traces, stamps = log.read_traced(self.cursor)
        self.last_traces = traces
        self.last_stamp = min(stamps) if stamps else None
        return fresh

    async def next_batch(self, timeout: Optional[float] = None
                         ) -> Optional[List[str]]:
        """Wait for answers past the cursor; ``None`` on timeout/close.

        Grabs the query's current wake-up event *before* reading the log:
        a pulse that lands between the read and the wait targets the
        grabbed event, so no delta can slip through unobserved.
        """
        while not self.closed:
            event = self.hub._wakeup(self.query_key)
            fresh = self.drain()
            if fresh:
                return fresh
            try:
                if timeout is None:
                    await event.wait()
                else:
                    await asyncio.wait_for(event.wait(), timeout)
            except asyncio.TimeoutError:
                return None
        return None

    def close(self) -> None:
        self.closed = True
        self.hub._drop(self)


class SubscriptionHub:
    """All continuous queries of one tenant (see module docstring)."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        self._logs: Dict[str, ContinuousQueryLog] = {}
        self._events: Dict[str, asyncio.Event] = {}
        self._subs: Dict[int, Subscription] = {}
        self._refcount: Dict[str, int] = {}
        self._ids = itertools.count(1)
        # Fired whenever the *set* of registered queries changes (first
        # subscriber to a query, or last one gone).  A lazy session hooks
        # this to reseed its relevance tracker — the tenant's continuous
        # queries ARE its goal set.
        self.on_registry_change: Optional[Callable[[], None]] = None

    # -- registration ----------------------------------------------------

    def _parse(self, query_text: str,
               document_names) -> Tuple[str, PositiveQuery]:
        query = parse_query(query_text)
        unknown = [name for name in query.document_names()
                   if name not in document_names]
        if unknown:
            raise SubscriptionError(
                f"query reads {sorted(unknown)} — continuous queries may "
                "only read the tenant's documents (no input/context)")
        return str(query), query

    def subscribe(self, query_text: str, environment: Mapping[str, Node]
                  ) -> Subscription:
        """Register a subscriber; its ``initial`` is the current result.

        Queries are shared by their canonical rule text: the second
        subscriber to a query rides the first one's log and evaluator.
        """
        key, query = self._parse(query_text, environment.keys())
        log = self._logs.get(key)
        if log is None:
            log = ContinuousQueryLog(query, (self.tenant, key))
            self._logs[key] = log
            self._refcount[key] = 0
        log.refresh(environment)
        sub = Subscription(self, key, next(self._ids), list(log.answers))
        self._subs[sub.sub_id] = sub
        self._refcount[key] += 1
        if self._refcount[key] == 1 and self.on_registry_change is not None:
            self.on_registry_change()
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.SUBSCRIPTION_OPENED, tenant=self.tenant,
                         query=key, initial=len(sub.initial))
        return sub

    def _drop(self, sub: Subscription) -> None:
        if self._subs.pop(sub.sub_id, None) is None:
            return
        remaining = self._refcount.get(sub.query_key, 1) - 1
        self._refcount[sub.query_key] = remaining
        if remaining <= 0:
            # Last subscriber gone: retire the query (its evaluator holds
            # document references; a re-subscribe starts a fresh log).
            self._logs.pop(sub.query_key, None)
            self._events.pop(sub.query_key, None)
            self._refcount.pop(sub.query_key, None)
            if self.on_registry_change is not None:
                self.on_registry_change()

    def queries(self) -> List[PositiveQuery]:
        """The parsed queries currently registered (the lazy goal set)."""
        return [log.query for log in self._logs.values()]

    def get(self, sub_id: int) -> Optional[Subscription]:
        return self._subs.get(sub_id)

    def subscriber_count(self) -> int:
        return len(self._subs)

    # -- the graft fan-in ------------------------------------------------

    def on_graft(self, environment: Mapping[str, Node]) -> int:
        """Refresh every registered query after a graft landed.

        Called synchronously from the kernel's graft hook — the
        single-writer apply step — so each refresh sees a consistent
        post-graft state.  Pulses the wake-up of each query that gained
        answers; returns how many queries did.
        """
        changed = 0
        ctx = obs_trace.current()
        for key, log in self._logs.items():
            fresh = log.refresh(environment)
            if fresh:
                changed += 1
                self._pulse(key)
                if obs_bus.ACTIVE:
                    labels: Dict[str, object] = {}
                    if ctx is not None:
                        labels["trace_id"] = ctx.trace_id
                        labels["span_id"] = ctx.span_id
                    obs_bus.emit(obs_events.SUBSCRIPTION_DELTA,
                                 tenant=self.tenant, query=key,
                                 answers=len(fresh), **labels)
        return changed

    # -- suspend/resume --------------------------------------------------

    def detach(self) -> Dict[str, List[str]]:
        """Drop evaluator caches (they pin the suspended trees); keep the
        logs and cursors.  Returns ``{query text: answers}`` for spooling."""
        for log in self._logs.values():
            log.reset_evaluator()
        return {key: list(log.answers) for key, log in self._logs.items()}

    def reattach(self, environment: Mapping[str, Node]) -> None:
        """Re-prime every query against resumed documents.

        The fresh evaluators re-derive the full current result; the logs'
        seen-filters drop everything already streamed, so subscribers see
        exactly the answers grafted while the tenant was down (none, if
        it was truly idle) and no duplicates.
        """
        for key, log in self._logs.items():
            if log.refresh(environment):
                self._pulse(key)

    def preload(self, spooled: Mapping[str, List[str]],
                document_names) -> None:
        """Rebuild query logs from a spool manifest (server restart)."""
        for query_text, answers in spooled.items():
            key, query = self._parse(query_text, document_names)
            log = self._logs.get(key)
            if log is None:
                log = self._logs[key] = ContinuousQueryLog(
                    query, (self.tenant, key))
                self._refcount.setdefault(key, 0)
            log.preload(answers)
        if spooled and self.on_registry_change is not None:
            self.on_registry_change()

    # -- wake-ups --------------------------------------------------------

    def _wakeup(self, key: str) -> asyncio.Event:
        event = self._events.get(key)
        if event is None:
            event = self._events[key] = asyncio.Event()
        return event

    def _pulse(self, key: str) -> None:
        event = self._events.get(key)
        if event is not None:
            event.set()
        # Future waiters grab a fresh, unset event.
        self._events[key] = asyncio.Event()
