"""``paxml.serve`` — a multi-tenant serving layer for live AXML systems.

The paper's core observation — positive query answers grow monotonically
as service calls return (Proposition 3.1) — is a push-subscription
semantics: once an answer is certain it stays certain, so a server can
stream ``(query, document)`` results as *append-only deltas* and never
retract.  This package turns the incremental engine and the evaluation
kernel into that server:

* :class:`TenantSession` — one tenant's live system: an
  :class:`~paxml.kernel.EvaluationKernel`-backed
  :class:`~paxml.runtime.engine.AsyncRuntime` driven in bounded attempt
  *slices*, client graft injection, snapshot and point-in-time reads,
  and suspend/resume through checkpoint bundles;
* :class:`SubscriptionHub` — continuous queries fanned out to N
  subscribers from one shared append-only answer log (one delta join
  per graft, cursor reads per subscriber);
* :class:`AdmissionController` — round-robin attempt leases enforcing
  per-tenant budgets and fairness on the kernel scheduler's knobs;
* :class:`PaxmlServer` / :class:`ServeClient` — a JSONL-over-TCP line
  protocol binding it together, with idle tenants spooled to bundles
  and transparently resumed on the next request.
"""

from .admission import AdmissionController, TenantBudget
from .hub import Subscription, SubscriptionHub
from .session import SessionError, TenantSession
from .server import PaxmlServer, ServerOptions
from .client import ServeClient, ServeError

__all__ = [
    "AdmissionController",
    "PaxmlServer",
    "ServeClient",
    "ServeError",
    "ServerOptions",
    "SessionError",
    "Subscription",
    "SubscriptionHub",
    "TenantBudget",
    "TenantSession",
]
