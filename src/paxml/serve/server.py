"""The paxml server: tenants, a driver loop, and a JSONL line protocol.

One asyncio event loop hosts everything: the TCP acceptor, one *driver*
task that rotates attempt leases across runnable tenants (admission),
per-connection reader tasks, per-subscription pump tasks that push
deltas, and a janitor that spools idle tenants to checkpoint bundles.
All tenant mutation happens in the driver's slices and in synchronous
request handlers on this loop, so snapshot reads need no locks.

Wire protocol — newline-delimited JSON, one object per line:

* request  ``{"id": 7, "op": "inject", "tenant": "t0", ...}``
* response ``{"id": 7, "ok": true, ...}`` or
  ``{"id": 7, "ok": false, "error": "..."}``
* push     ``{"push": "delta", "sub": 3, "tenant": "t0",
  "answers": [...]}`` — unsolicited, interleaved with responses.

Ops: ``create``, ``run`` (wait for the tenant's fixpoint), ``inject``,
``read`` (optionally ``"at"`` a graft ordinal — a point-in-time read),
``subscribe`` / ``unsubscribe``, ``suspend``, ``tenants``, ``stats``,
``ping``, ``shutdown``.  Any op addressed to a suspended tenant resumes
it transparently first.

Graceful shutdown drains the in-progress slice through
:meth:`~paxml.runtime.engine.AsyncRuntime.request_drain` (in-flight
outcomes flushed, parked calls folded back into the frontier), then
checkpoints every live tenant into the spool with a ``manifest.json``
recording bundles and spooled subscription answers — a restarted server
picks all of it up and subscribers resume without duplicates.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import re
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import perf
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..obs.flight import FlightRecorder
from ..obs.metrics import REGISTRY, Registry
from ..obs.slo import SLOBoard, SLOSpec
from ..runtime.policy import RuntimeConfig
from ..tree.parser import ParseError, parse_forest
from .admission import AdmissionController, TenantBudget
from .hub import SubscriptionError
from .session import SessionError, TenantSession

_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

MANIFEST = "manifest.json"


@dataclass
class ServerOptions:
    """Knobs for one :class:`PaxmlServer`."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral; see ``server.port``
    spool_dir: Optional[str] = None     # enables suspend/resume + restart
    workers: int = 0                    # >0: place tenants on shard workers
    slice_attempts: int = 64            # default admission quantum
    total_attempts: Optional[int] = None
    idle_suspend: Optional[float] = None  # seconds idle before spooling
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    # -- observability (PR 8) --
    trace_sample_rate: Optional[float] = None  # None = trace.DEFAULT_SAMPLE_RATE
    flight_capacity: int = 512          # per-tenant flight-recorder ring size
    watchdog_deadline: Optional[float] = 5.0  # None disables the watchdog
    watchdog_period: Optional[float] = None   # default: deadline / 2
    slos: Optional[Sequence[SLOSpec]] = None  # None = obs.slo.DEFAULT_SLOS


class PaxmlServer:
    """A multi-tenant AXML server on one asyncio loop."""

    def __init__(self, options: Optional[ServerOptions] = None, *,
                 registry: Optional[Registry] = None, injector=None):
        self.options = options or ServerOptions()
        self.registry = registry or REGISTRY
        self.injector = injector
        self.sessions: Dict[str, TenantSession] = {}
        self.admission = AdmissionController(TenantBudget(
            slice_attempts=self.options.slice_attempts,
            total_attempts=self.options.total_attempts))
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._driver: Optional[asyncio.Task] = None
        self._janitor: Optional[asyncio.Task] = None
        self._work = asyncio.Event()        # new work may exist
        self._settled = asyncio.Event()     # a slice just finished
        self._current: Optional[TenantSession] = None
        self._stopping = False
        self._done = asyncio.Event()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._slices = self.registry.counter(
            "paxml_serve_slices_total", "Admission slices run",
            labelnames=("tenant",))
        self._tenant_gauge = self.registry.gauge(
            "paxml_serve_tenants", "Registered tenants", labelnames=("state",))
        # -- observability (PR 8): flight recorder, SLOs, spans, watchdog --
        self.flight = FlightRecorder(self.options.flight_capacity)
        self.flight.attach()            # bus-sourced records (when tracing on)
        self.slo = SLOBoard(self.options.slos, registry=self.registry)
        obs_trace.subscribe_spans(self.flight.record_span)
        obs_trace.subscribe_spans(self._fanout_span)
        self._span_watchers: Dict[int, asyncio.Queue] = {}
        self._watch_ids = itertools.count(1)
        self._watchdog: Optional[asyncio.Task] = None
        self._frontiers: Dict[str, tuple] = {}
        self._frontier_since: Dict[str, float] = {}
        self._op_seconds = self.registry.histogram(
            "paxml_serve_op_seconds", "Serve op latency by tenant",
            labelnames=("op", "tenant"))
        self._op_errors = self.registry.counter(
            "paxml_serve_op_errors_total", "Failed serve ops by tenant",
            labelnames=("op", "tenant"))
        # -- sharded placement (PR 9): the session-host pool --
        self.pool = None                # a ShardPool when workers > 0
        self._pool_spool: Optional[str] = None  # tempdir when no spool_dir
        self._shard_lag = self.registry.gauge(
            "paxml_shard_replication_lag",
            "Graft-log records not yet captured by a durable bundle",
            labelnames=("shard",))

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self.options.spool_dir:
            os.makedirs(self.options.spool_dir, exist_ok=True)
            if not self.options.workers:
                self._load_spool()
        if self.options.workers:
            from .shard_pool import ShardPool
            spool = self.options.spool_dir
            if spool is None:
                # Migration bundles need a shared directory even when the
                # operator asked for no durable spool.
                spool = self._pool_spool = tempfile.mkdtemp(
                    prefix="paxml-pool-")
            self.pool = ShardPool(
                self.options.workers, spool_dir=spool,
                config=self.options.config,
                slice_attempts=self.options.slice_attempts,
                total_attempts=self.options.total_attempts)
            await self.pool.start()
            if self.options.spool_dir:
                self._load_pool_spool()
        self._server = await asyncio.start_server(
            self._serve_connection, self.options.host, self.options.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._driver = asyncio.ensure_future(self._drive())
        if self.options.idle_suspend and self.options.spool_dir:
            self._janitor = asyncio.ensure_future(self._suspend_idle())
        if self.options.watchdog_deadline:
            self._watchdog = asyncio.ensure_future(self._watch())

    async def serve_forever(self) -> None:
        await self._done.wait()

    async def shutdown(self) -> None:
        """Drain, spool, close — idempotent."""
        if self._stopping:
            await self._done.wait()
            return
        self._stopping = True
        self._work.set()
        current = self._current
        if current is not None and current.busy:
            bundle = self._bundle_path(current.name)
            await current.drain(bundle)
        if self._driver is not None:
            await self._driver
        for task in (self._janitor, self._watchdog):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self.pool is not None:
            for tenant in list(self.pool.placement):
                try:
                    await self.pool.suspend(tenant)
                except SessionError:
                    pass
            if self.options.spool_dir:
                self._spool_pool_manifest()
            await self.pool.shutdown()
            if self._pool_spool:
                shutil.rmtree(self._pool_spool, ignore_errors=True)
        if self.options.spool_dir:
            self.dump_flight(reason="shutdown")
            self._spool_all()
        obs_trace.unsubscribe_spans(self.flight.record_span)
        obs_trace.unsubscribe_spans(self._fanout_span)
        self.flight.detach()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        for task in list(self._conn_tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._done.set()

    # -- spooling --------------------------------------------------------

    def _bundle_path(self, tenant: str) -> Optional[str]:
        if not self.options.spool_dir:
            return None
        return os.path.join(self.options.spool_dir, f"{tenant}.bundle.jsonl")

    def _spool_all(self) -> None:
        manifest: Dict[str, dict] = {}
        if os.path.exists(os.path.join(self.options.spool_dir, MANIFEST)):
            with open(os.path.join(self.options.spool_dir, MANIFEST),
                      encoding="utf-8") as handle:
                manifest = json.load(handle)
        for name, session in self.sessions.items():
            if session.suspended:
                manifest.setdefault(name, {
                    "bundle": session.bundle_path,
                    "queries": {}})
                continue
            bundle = self._bundle_path(name)
            spooled = session.suspend(bundle)
            manifest[name] = {"bundle": bundle, "queries": spooled}
        target = os.path.join(self.options.spool_dir, MANIFEST)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, target)

    def _load_spool(self) -> None:
        path = os.path.join(self.options.spool_dir, MANIFEST)
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        for name, entry in manifest.items():
            bundle = entry.get("bundle")
            if not bundle or not os.path.exists(bundle):
                continue
            session = TenantSession(
                name, None, bundle_path=bundle, config=self.options.config,
                injector=self.injector, registry=self.registry)
            self.sessions[name] = session
            self.admission.register(name)
        self._publish_tenant_gauge()

    def _load_pool_spool(self) -> None:
        """Hand spooled tenants from the manifest to the pool: each is
        lazily re-placed (least-loaded) on its first client touch."""
        path = os.path.join(self.options.spool_dir, MANIFEST)
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        for name, entry in manifest.items():
            bundle = entry.get("bundle")
            if bundle and os.path.exists(bundle):
                self.pool.spooled[name] = bundle

    def _spool_pool_manifest(self) -> None:
        """Record the pool's suspended tenants so a restarted server —
        sharded or not — resumes them from their bundles."""
        path = os.path.join(self.options.spool_dir, MANIFEST)
        manifest: Dict[str, dict] = {}
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        for name, bundle in self.pool.spooled.items():
            manifest[name] = {"bundle": bundle, "queries": {}}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)

    def _publish_tenant_gauge(self) -> None:
        live = sum(1 for s in self.sessions.values() if not s.suspended)
        self._tenant_gauge.labels(state="live").set(live)
        self._tenant_gauge.labels(state="suspended").set(
            len(self.sessions) - live)

    # -- the driver ------------------------------------------------------

    def _next_ready_delay(self, now: float) -> Optional[float]:
        """Seconds until the nearest parked call could retry, if any."""
        nearest: Optional[float] = None
        for session in self.sessions.values():
            if session.suspended or not session.has_work():
                continue
            if session.kernel.scheduler.has_fresh():
                return 0.0
            ready = session.kernel.scheduler.next_parked_ready()
            if ready is not None and (nearest is None or ready < nearest):
                nearest = ready
        if nearest is None:
            return None
        return max(nearest - now, 0.001)

    async def _drive(self) -> None:
        loop = asyncio.get_event_loop()
        while not self._stopping:
            now = loop.time()
            tenant = self.admission.next_tenant(
                lambda name: self.sessions[name].runnable_at(now)
                and not self.sessions[name].busy)
            if tenant is None:
                self._work.clear()
                delay = self._next_ready_delay(loop.time())
                try:
                    if delay is None:
                        await self._work.wait()
                    else:
                        await asyncio.wait_for(self._work.wait(), delay)
                except asyncio.TimeoutError:
                    pass
                continue
            session = self.sessions[tenant]
            lease = self.admission.lease(tenant)
            before = session.kernel.scheduler.attempts
            self._current = session
            try:
                await session.run_slice(lease)
            except Exception:
                # An unexpected slice crash is exactly what the flight
                # recorder exists for: dump the recent past, then let the
                # failure propagate.
                self.dump_flight(reason="crash")
                raise
            finally:
                self._current = None
                spent = session.kernel.scheduler.attempts - before
                self.admission.settle(tenant, spent)
                self._slices.labels(tenant=tenant).inc()
                self._settled.set()
                self._settled.clear()

    async def _wait_idle(self, session: TenantSession,
                         timeout: Optional[float]) -> bool:
        """Wait until the tenant has no admissible work left."""
        loop = asyncio.get_event_loop()
        deadline = None if timeout is None else loop.time() + timeout
        self._work.set()
        while True:
            # ``idle()`` and not just ``has_work()``: mid-slice a site in
            # flight is in neither scheduler queue, but its graft is
            # still pending — the busy flag covers that window.
            if session.suspended or session.idle() or \
                    self.admission.exhausted(session.name):
                return True
            if deadline is not None and loop.time() >= deadline:
                return False
            self._work.set()
            await asyncio.sleep(0.005)

    async def _suspend_idle(self) -> None:
        period = max(self.options.idle_suspend / 2.0, 0.05)
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(period)
            now = loop.time()
            for name, session in list(self.sessions.items()):
                if session.suspended or not session.idle():
                    continue
                if now - session.last_active < self.options.idle_suspend:
                    continue
                self._spool_one(name, session)

    def _spool_one(self, name: str, session: TenantSession) -> None:
        bundle = self._bundle_path(name)
        spooled = session.suspend(bundle)
        path = os.path.join(self.options.spool_dir, MANIFEST)
        manifest: Dict[str, dict] = {}
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        manifest[name] = {"bundle": bundle, "queries": spooled}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
        self._publish_tenant_gauge()

    # -- observability (PR 8) --------------------------------------------

    def _fanout_span(self, span) -> None:
        """Span sink feeding live ``watch`` subscribers (lossy on lag)."""
        for queue in list(self._span_watchers.values()):
            if queue.full():
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover
                    pass
            queue.put_nowait(span.to_json_dict())

    def _observe_op(self, tenant: Optional[str], op: Optional[str],
                    seconds: float, ok: bool,
                    ctx: Optional[obs_trace.TraceContext],
                    started: float) -> None:
        """Fold one finished request into every observability surface:
        scoped latency/error metrics, the SLO board, the flight recorder,
        the bus, and (when traced) a completed ``op:*`` span."""
        op_label = str(op or "?")
        tenant_label = tenant if tenant else "*"
        self._op_seconds.labels(op=op_label, tenant=tenant_label).observe(
            seconds)
        if not ok:
            self._op_errors.labels(op=op_label, tenant=tenant_label).inc()
        self.slo.observe(tenant_label, op_label, seconds, ok)
        data = {"op": op_label, "seconds": seconds, "ok": ok}
        if ctx is not None:
            data["trace_id"] = ctx.trace_id
        self.flight.record(tenant_label, obs_events.SERVE_OP, **data)
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.SERVE_OP, tenant=tenant_label, **data)
        if ctx is not None:
            obs_trace.emit_span(ctx, f"op:{op_label}", started,
                                started + seconds,
                                status="ok" if ok else "error", op=op_label)

    def dump_flight(self, path: Optional[str] = None,
                    tenant: Optional[str] = None,
                    reason: str = "manual") -> Optional[Tuple[str, int]]:
        """Write the flight-recorder rings to JSONL; ``(path, records)``.

        Without an explicit ``path`` the dump lands in the spool
        directory (``flight-<reason>.jsonl``) — or nowhere, when the
        server has no spool; callers wanting the records regardless use
        ``flight.snapshot()``.
        """
        if path is None:
            if not self.options.spool_dir:
                return None
            path = os.path.join(self.options.spool_dir,
                                f"flight-{reason}.jsonl")
        count = self.flight.dump(path, tenant=tenant, reason=reason)
        return path, count

    def watchdog_report(self) -> Dict[str, object]:
        return {
            "deadline": self.options.watchdog_deadline,
            "stalled": {name: session.stalled
                        for name, session in self.sessions.items()
                        if session.stalled is not None},
        }

    async def _watch(self) -> None:
        """Stall watchdog: flag sessions with work whose scheduler
        frontier has not advanced within the deadline, with enough
        diagnostics (parked sites, open breakers, the last graft's
        trace) to tell *why* — then keep quiet until it moves again."""
        deadline = self.options.watchdog_deadline
        period = self.options.watchdog_period or max(deadline / 2.0, 0.01)
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(period)
            now = loop.time()
            for name, session in list(self.sessions.items()):
                if session.suspended or not session.has_work():
                    self._frontiers.pop(name, None)
                    self._frontier_since.pop(name, None)
                    session.stalled = None
                    continue
                frontier = session.frontier()
                if self._frontiers.get(name) != frontier:
                    self._frontiers[name] = frontier
                    self._frontier_since[name] = now
                    session.stalled = None
                    continue
                stalled_for = now - self._frontier_since.get(name, now)
                if stalled_for < deadline:
                    continue
                scheduler = session.kernel.scheduler
                info = {
                    "tenant": name,
                    "stalled_for": stalled_for,
                    "busy": session.busy,
                    "fresh": scheduler.fresh_count(),
                    "parked": scheduler.parked_count(),
                    "tried": scheduler.tried_count(),
                    "attempts": scheduler.attempts,
                    "next_ready": scheduler.next_parked_ready(),
                    "open_breakers": session.open_breakers(),
                    "last_graft_trace": session.last_graft_trace,
                }
                first = session.stalled is None
                session.stalled = info
                if first:
                    perf.stats.watchdog_stalls += 1
                    self.flight.record(name, obs_events.WATCHDOG_STALL,
                                       **info)
                    if obs_bus.ACTIVE:
                        obs_bus.emit(obs_events.WATCHDOG_STALL, **info)

    # -- sessions --------------------------------------------------------

    def _session(self, tenant: str) -> TenantSession:
        session = self.sessions.get(tenant)
        if session is None:
            raise SessionError(f"unknown tenant {tenant!r}")
        if session.suspended:
            # Transparent resume: the touch that reached a spooled tenant
            # brings it back before the op proceeds.
            session.resume()
            self._publish_tenant_gauge()
            self._work.set()
        session.last_active = asyncio.get_event_loop().time()
        return session

    def create_tenant(self, name: str, system_text: str, *,
                      budget: Optional[TenantBudget] = None,
                      lazy: bool = False) -> TenantSession:
        if not _TENANT_NAME.match(name or ""):
            raise SessionError(
                f"invalid tenant name {name!r} (want [A-Za-z0-9][-._\\w]*)")
        if name in self.sessions:
            raise SessionError(f"tenant {name!r} already exists")
        session = TenantSession.from_text(
            name, system_text, config=self.options.config,
            injector=self.injector, registry=self.registry, lazy=lazy)
        session.last_active = asyncio.get_event_loop().time()
        self.sessions[name] = session
        self.admission.register(name, budget)
        self._publish_tenant_gauge()
        self._work.set()
        return session

    # -- the line protocol ----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn = _Connection(self, writer)
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await conn.handle(line)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            await conn.close()
            self._conn_tasks.discard(task)


class _Connection:
    """One client connection: response writer + its subscriptions."""

    def __init__(self, server: PaxmlServer, writer: asyncio.StreamWriter):
        self.server = server
        self.writer = writer
        self.lock = asyncio.Lock()      # responses and pushes interleave
        self.pumps: Dict[int, asyncio.Task] = {}
        self.subs: Dict[int, object] = {}
        self.watches: Dict[int, asyncio.Task] = {}  # live span tails

    async def send(self, payload: dict) -> None:
        async with self.lock:
            if self.writer.is_closing():
                return
            self.writer.write(json.dumps(payload).encode() + b"\n")
            await self.writer.drain()

    async def handle(self, line: bytes) -> None:
        request_id = None
        op: Optional[str] = None
        tenant: Optional[str] = None
        ctx: Optional[obs_trace.TraceContext] = None
        token = None
        ok = True
        started = time.perf_counter()
        try:
            request = json.loads(line)
            request_id = request.get("id")
            op = request.get("op")
            tenant = request.get("tenant")
            # Head-based sampling happens here, once per request; the
            # context is active for the whole handler, so every graft
            # the op causes — now or transitively, via site tags — is
            # stamped with this trace.
            ctx = obs_trace.admit(tenant,
                                  rate=self.server.options.trace_sample_rate,
                                  parent=request.get("trace"))
            if ctx is not None:
                token = obs_trace.activate(ctx)
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise SessionError(f"unknown op {op!r}")
            response = await handler(request)
        except (SessionError, SubscriptionError, ParseError,
                ValueError, KeyError, TypeError) as exc:
            ok = False
            response = {"ok": False, "error": str(exc) or repr(exc)}
        finally:
            if token is not None:
                obs_trace.restore(token)
            self.server._observe_op(tenant, op,
                                    time.perf_counter() - started, ok,
                                    ctx, started)
        payload = {"id": request_id, "ok": True}
        if ctx is not None:
            payload["trace"] = ctx.to_wire()
        payload.update(response)
        await self.send(payload)

    async def close(self) -> None:
        for watch_id, task in list(self.watches.items()):
            self.server._span_watchers.pop(watch_id, None)
            task.cancel()
        for task in self.watches.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self.watches.clear()
        for task in self.pumps.values():
            task.cancel()
        for task in self.pumps.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        for sub in self.subs.values():
            sub.close()
        self.pumps.clear()
        self.subs.clear()
        try:
            if not self.writer.is_closing():
                self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            # A cancellation landing here is the server tearing the
            # connection down; swallowing it lets the task finish
            # cleanly instead of ending CANCELLED mid-close.
            pass

    # -- ops -------------------------------------------------------------

    async def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "tenants": len(self.server.sessions)}

    def _pooled(self, request: dict) -> bool:
        pool = self.server.pool
        return pool is not None and pool.pooled(request.get("tenant"))

    async def _op_create(self, request: dict) -> dict:
        if self.server.pool is not None:
            name = request["tenant"]
            if not _TENANT_NAME.match(name or ""):
                raise SessionError(f"invalid tenant name {name!r} "
                                   "(want [A-Za-z0-9][-._\\w]*)")
            return await self.server.pool.place(
                name, request["system"],
                slice_attempts=request.get("slice_attempts"),
                total_attempts=request.get("total_attempts"))
        budget = None
        if "slice_attempts" in request or "total_attempts" in request:
            budget = TenantBudget(
                slice_attempts=int(request.get(
                    "slice_attempts", self.server.options.slice_attempts)),
                total_attempts=request.get(
                    "total_attempts", self.server.options.total_attempts))
        session = self.server.create_tenant(
            request["tenant"], request["system"], budget=budget,
            lazy=bool(request.get("lazy")))
        return {"tenant": session.name,
                "documents": sorted(session.system.documents),
                "services": sorted(session.system.services)}

    async def _op_run(self, request: dict) -> dict:
        if self._pooled(request):
            return await self.server.pool.forward("run", request)
        session = self.server._session(request["tenant"])
        done = await self.server._wait_idle(session,
                                            request.get("timeout"))
        stats = session.stats()
        stats["fixpoint"] = done and not session.has_work()
        return stats

    async def _op_inject(self, request: dict) -> dict:
        if self._pooled(request):
            return await self.server.pool.forward("inject", request)
        session = self.server._session(request["tenant"])
        trees = parse_forest(request["trees"])
        inserted = session.inject(request["document"], trees,
                                  parent_uid=request.get("parent"))
        self.server._work.set()
        return {"inserted": inserted, "grafts": session.kernel.productive}

    async def _op_read(self, request: dict) -> dict:
        if self._pooled(request):
            return await self.server.pool.forward("read", request)
        session = self.server._session(request["tenant"])
        if "at" in request and request["at"] is not None:
            return session.read_at(request["document"], int(request["at"]))
        return session.read(request["document"])

    async def _op_subscribe(self, request: dict) -> dict:
        if self._pooled(request):
            raise SessionError(
                "continuous queries are unavailable for pooled tenants; "
                "run the server with --workers 0 to subscribe")
        session = self.server._session(request["tenant"])
        sub = session.subscribe(request["query"])
        self.subs[sub.sub_id] = sub
        self.pumps[sub.sub_id] = asyncio.ensure_future(
            self._pump(session.name, sub))
        return {"sub": sub.sub_id, "query": sub.query_key,
                "initial": sub.initial}

    async def _pump(self, tenant: str, sub) -> None:
        try:
            while not sub.closed:
                batch = await sub.next_batch()
                if not batch:
                    continue
                # The drain inside ``next_batch`` stashed the per-answer
                # causal traces and the oldest answer's stamp alongside
                # the batch (see Subscription.drain).
                push = {"push": "delta", "sub": sub.sub_id,
                        "tenant": tenant, "answers": batch}
                if any(trace is not None for trace in sub.last_traces):
                    push["traces"] = sub.last_traces
                await self.send(push)
                if sub.last_stamp is not None:
                    self.server.slo.observe(
                        tenant, "delta_push",
                        time.perf_counter() - sub.last_stamp, True)
        except (asyncio.CancelledError, ConnectionResetError):
            pass

    async def _op_unsubscribe(self, request: dict) -> dict:
        sub_id = int(request["sub"])
        sub = self.subs.pop(sub_id, None)
        if sub is None:
            raise SessionError(f"no subscription {sub_id} on this connection")
        sub.close()
        pump = self.pumps.pop(sub_id, None)
        if pump is not None:
            pump.cancel()
        return {"sub": sub_id, "closed": True}

    async def _op_suspend(self, request: dict) -> dict:
        server = self.server
        if self._pooled(request):
            name = request["tenant"]
            if name in server.pool.spooled:
                return {"tenant": name, "suspended": True,
                        "bundle": server.pool.spooled[name]}
            return await server.pool.suspend(name, request.get("timeout"))
        if not server.options.spool_dir:
            raise SessionError("server has no spool directory")
        name = request["tenant"]
        session = server.sessions.get(name)
        if session is None:
            raise SessionError(f"unknown tenant {name!r}")
        if session.suspended:
            return {"tenant": name, "suspended": True,
                    "bundle": session.bundle_path}
        await server._wait_idle(session, request.get("timeout", 10.0))
        server._spool_one(name, session)
        return {"tenant": name, "suspended": True,
                "bundle": session.bundle_path}

    async def _op_tenants(self, request: dict) -> dict:
        tenants = [session.stats()
                   for session in self.server.sessions.values()]
        if self.server.pool is not None:
            tenants.extend(await self._pool_tenants())
        return {"tenants": tenants}

    async def _pool_tenants(self, reports=None) -> List[dict]:
        """Per-tenant stats across every session host, plus placeholder
        rows for tenants spooled out of the pool entirely."""
        rows: List[dict] = []
        if reports is None:
            reports = await self.server.pool.stats()
        for report in reports:
            self.server._shard_lag.labels(
                shard=str(report.get("shard"))).set(
                    report.get("replication_lag", 0))
            rows.extend(report.get("tenants", []))
        for name in sorted(self.server.pool.spooled):
            rows.append({"tenant": name, "suspended": True, "shard": None,
                         "steps": 0, "productive": 0, "attempts": 0,
                         "subscribers": 0, "pending": 0, "replication_lag": 0,
                         "queues": {"fresh": 0, "parked": 0, "tried": 0},
                         "open_breakers": [], "stalled": None})
        return rows

    async def _op_stats(self, request: dict) -> dict:
        tenant = request.get("tenant")
        if tenant is not None:
            if self._pooled(request):
                if tenant in self.server.pool.spooled:
                    return {"tenant": tenant, "suspended": True,
                            "bundle": self.server.pool.spooled[tenant]}
                return await self.server.pool.forward("stats", request)
            return self.server._session(tenant).stats()
        tenants = [session.stats()
                   for session in self.server.sessions.values()]
        pooled: dict = {}
        if self.server.pool is not None:
            # Pull the shard reports (which also refreshes the
            # replication-lag gauges) before snapshotting the registry.
            shards = await self.server.pool.stats()
            tenants.extend(await self._pool_tenants(shards))
            pooled = {"shards": shards,
                      "placement": dict(self.server.pool.placement)}
        response = {"metrics": self.server.registry.collect(),
                    "slo": self.server.slo.report(),
                    "watchdog": self.server.watchdog_report(),
                    "tenants": tenants}
        response.update(pooled)
        return response

    async def _op_migrate(self, request: dict) -> dict:
        if self.server.pool is None:
            raise SessionError(
                "migrate needs a sharded server (--workers N)")
        return await self.server.pool.migrate(request["tenant"],
                                              request.get("shard"))

    async def _op_dump(self, request: dict) -> dict:
        """Flight-recorder dump: to a JSONL file (explicit ``path`` or
        the spool dir) and/or inline (``"inline": true``)."""
        server = self.server
        tenant = request.get("tenant")
        path = request.get("path")
        result: dict = {"tenant": tenant or "*"}
        if path is not None or server.options.spool_dir:
            dumped = server.dump_flight(path, tenant=tenant,
                                        reason=str(request.get(
                                            "reason", "request")))
            if dumped is not None:
                result["path"], result["records"] = dumped
        if request.get("inline") or "records" not in result:
            rows = server.flight.snapshot(tenant)
            result["events"] = rows
            result.setdefault("records", len(rows))
        return result

    async def _op_watch(self, request: dict) -> dict:
        """Start a live span tail on this connection (``push: span``)."""
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(int(request.get("buffer", 256)), 1))
        watch_id = next(self.server._watch_ids)
        self.server._span_watchers[watch_id] = queue
        self.watches[watch_id] = asyncio.ensure_future(
            self._pump_spans(watch_id, queue))
        return {"watch": watch_id}

    async def _pump_spans(self, watch_id: int, queue: asyncio.Queue) -> None:
        try:
            while True:
                span = await queue.get()
                await self.send({"push": "span", "watch": watch_id,
                                 "span": span})
        except (asyncio.CancelledError, ConnectionResetError):
            pass

    async def _op_unwatch(self, request: dict) -> dict:
        watch_id = int(request["watch"])
        if self.server._span_watchers.pop(watch_id, None) is None:
            raise SessionError(f"no span watch {watch_id} on this server")
        task = self.watches.pop(watch_id, None)
        if task is not None:
            task.cancel()
        return {"watch": watch_id, "closed": True}

    async def _op_shutdown(self, request: dict) -> dict:
        asyncio.ensure_future(self.server.shutdown())
        return {"stopping": True}
