"""End-to-end smoke exercise: ``python -m paxml.serve.smoke``.

Boots a real :class:`PaxmlServer` on an ephemeral TCP port and drives
the whole serving surface through :class:`ServeClient`: two tenants, a
continuous-query subscription streaming the transitive closure as it
grows, an external edge injection that extends the stream, a snapshot
and a point-in-time read, suspend + transparent resume, and a graceful
shutdown that spools the tenants.  Prints ``SMOKE PASS`` and exits 0;
any assertion or hang (CI wraps it in ``timeout``) fails the job.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile

from ..tree.document import Forest
from ..tree.parser import parse_tree
from .client import ServeClient
from .server import PaxmlServer, ServerOptions

TC_SYSTEM = """
@document d0
r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}

@document d1
r{!g, !f}

@service g
t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}

@service f
t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}
"""

PAIRS_QUERY = "pair{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"


def _pairs(answers):
    pairs = set()
    for text in answers:
        tree = parse_tree(text)
        cols = {child.marking.name: child.children[0].marking.value
                for child in tree.children}
        pairs.add((cols["c0"], cols["c1"]))
    return pairs


async def _drain_pairs(client, sub_id, seen, expected):
    while not expected <= seen:
        batch = await client.next_delta(sub_id, timeout=10.0)
        assert batch is not None, (
            f"delta stream stalled: have {sorted(seen)}, "
            f"want {sorted(expected)}")
        seen |= _pairs(batch)
    return seen


async def main() -> None:
    with tempfile.TemporaryDirectory(prefix="paxml-smoke-") as spool:
        server = PaxmlServer(ServerOptions(spool_dir=spool))
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)

        # Two tenants on one server.
        created = await client.create("alpha", TC_SYSTEM)
        assert created["documents"] == ["d0", "d1"]
        await client.create("beta", TC_SYSTEM)
        print(f"[smoke] serving 2 tenants on port {server.port}")

        # A continuous query; the driver may already have made progress,
        # so the initial answers are some prefix of the closure.
        sub = await client.subscribe("alpha", PAIRS_QUERY)
        seen = _pairs(sub["initial"])
        assert seen <= {(1, 2), (2, 3), (1, 3)}, seen

        # Drive alpha to its fixpoint: the closure of 1->2->3 streams in.
        result = await client.run("alpha", timeout=60.0)
        assert result["fixpoint"], f"alpha did not reach a fixpoint: {result}"
        seen = await _drain_pairs(client, sub["sub"], seen,
                                  {(1, 2), (2, 3), (1, 3)})
        print(f"[smoke] closure streamed: {sorted(seen)}")
        at_closure = (await client.read("alpha", "d1"))["grafts"]

        # An external event extends the graph; the subscription follows.
        await client.inject("alpha", "d0", "t{c0{3}, c1{4}}")
        await client.run("alpha", timeout=60.0)
        seen = await _drain_pairs(client, sub["sub"], seen,
                                  {(3, 4), (2, 4), (1, 4)})
        print(f"[smoke] injected edge propagated: {sorted(seen)}")

        # Snapshot and point-in-time reads.
        now = await client.read("alpha", "d1")
        then = await client.read("alpha", "d1", at=at_closure)
        trees_now = Forest([parse_tree(now["tree"])]).reduced()
        trees_then = Forest([parse_tree(then["tree"])]).reduced()
        assert "4" in now["tree"] and "4" not in then["tree"], \
            "point-in-time read must predate the injection"
        assert trees_now != trees_then
        print(f"[smoke] snapshot grafts={now['grafts']}, "
              f"historical read at grafts={at_closure} ok")

        # Suspend, then touch: the resume is transparent to the client.
        suspended = await client.request("suspend", tenant="alpha")
        assert suspended["suspended"]
        resumed = await client.read("alpha", "d1")
        assert resumed["tree"] == now["tree"], "resume changed the document"
        stats = await client.request("stats", tenant="alpha")
        assert not stats["suspended"]
        print("[smoke] suspend/resume round-trip ok")

        # Beta was idle all along; run it too, then shut down cleanly.
        await client.run("beta", timeout=60.0)
        await client.request("shutdown")
        await server._done.wait()
        await client.close()
    print("SMOKE PASS")


if __name__ == "__main__":
    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        sys.exit(130)
