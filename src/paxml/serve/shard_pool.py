"""Sharded tenant placement: session-host workers behind the serve front.

With ``ServerOptions.workers = N`` the :class:`~paxml.serve.server.
PaxmlServer` stops hosting :class:`~paxml.serve.session.TenantSession`
objects itself and becomes a *front*: every tenant lives in exactly one
of ``N`` session-host worker processes, each running its own event
loop, its own :class:`~paxml.serve.admission.AdmissionController`
rotation, and its own :class:`~paxml.kernel.EvaluationKernel` per
tenant.  The front keeps only the placement map and forwards ops over
the shard layer's framed wire protocol (:mod:`paxml.shard.framing`).

Placement is least-loaded at create time; :meth:`ShardPool.migrate`
moves a live tenant between workers with the PR 5 checkpoint bundle as
the carrier — suspend on the owner (bundle to the shared spool
directory), resume on the target, exactly the spool path a server
restart takes.  Theorem 2.1 (order-independence of the limit) is again
what makes a mid-run hop sound: the bundle is a seed + graft-log
prefix, and the remaining fair run on the new worker converges to the
same ``[I]``.

Each host also reports its *replication lag* — graft-log records not
yet persisted to any checkpoint bundle — which the front publishes as
the ``paxml_shard_replication_lag`` gauge, labelled by shard.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import sys
import time
from typing import Dict, List, Optional

from .. import perf
from ..obs import bus as obs_bus
from ..runtime.policy import RuntimeConfig
from ..shard.bootstrap import bootstrap_worker
from ..shard.framing import FRAME_JSON, decode_json, read_frame, send_json
from ..shard.plan import ShardError
from ..tree.parser import parse_forest
from .admission import AdmissionController, TenantBudget
from .session import SessionError, TenantSession

DEFAULT_TIMEOUT = 120.0


def _host_entry(host: str, port: int, shard: int, syspath: str) -> None:
    """Spawn-safe process entry: re-anchor ``sys.path``, run the host."""
    if syspath and syspath not in sys.path:
        sys.path.insert(0, syspath)
    from paxml.serve.shard_pool import host_main
    host_main(host, port, shard)


# ----------------------------------------------------------------------
# The worker side: one SessionHost process.
# ----------------------------------------------------------------------

class SessionHost:
    """One worker process hosting a slice of the server's tenants.

    A miniature :class:`~paxml.serve.server.PaxmlServer`: real
    :class:`TenantSession` objects, a driver task rotating admission
    leases across them, and synchronous op handlers on the same loop —
    minus the TCP acceptor (the front is the only client) and the
    subscription hub pumps (continuous queries stay a front-process
    feature; a pooled tenant's answer logs still travel in its bundle).
    """

    def __init__(self, shard: int, writer: asyncio.StreamWriter):
        self.shard = shard
        self.writer = writer
        self.sessions: Dict[str, TenantSession] = {}
        self.admission: Optional[AdmissionController] = None
        self.config = RuntimeConfig()
        # Graft-log records already captured by a durable bundle, per
        # tenant: the replication-lag gauge measures growth past this.
        self._persisted: Dict[str, int] = {}
        self._work = asyncio.Event()
        self._stopping = False

    # -- init ------------------------------------------------------------

    def configure(self, message: dict) -> dict:
        bootstrap_worker(self.shard, int(message["nshards"]),
                         message.get("flags"),
                         obs_active=bool(message.get("obs")))
        self.config = RuntimeConfig(**(message.get("config") or {}))
        self.admission = AdmissionController(TenantBudget(
            slice_attempts=int(message.get("slice_attempts", 64)),
            total_attempts=message.get("total_attempts")))
        return {"shard": self.shard, "pid": os.getpid()}

    # -- the driver (same rotation the front runs when unsharded) --------

    def _next_ready_delay(self, now: float) -> Optional[float]:
        nearest: Optional[float] = None
        for session in self.sessions.values():
            if session.suspended or not session.has_work():
                continue
            if session.kernel.scheduler.has_fresh():
                return 0.0
            ready = session.kernel.scheduler.next_parked_ready()
            if ready is not None and (nearest is None or ready < nearest):
                nearest = ready
        if nearest is None:
            return None
        return max(nearest - now, 0.001)

    async def drive(self) -> None:
        loop = asyncio.get_event_loop()
        while not self._stopping:
            now = loop.time()
            tenant = self.admission.next_tenant(
                lambda name: self.sessions[name].runnable_at(now)
                and not self.sessions[name].busy)
            if tenant is None:
                self._work.clear()
                delay = self._next_ready_delay(loop.time())
                try:
                    if delay is None:
                        await self._work.wait()
                    else:
                        await asyncio.wait_for(self._work.wait(), delay)
                except asyncio.TimeoutError:
                    pass
                continue
            session = self.sessions[tenant]
            lease = self.admission.lease(tenant)
            before = session.kernel.scheduler.attempts
            try:
                await session.run_slice(lease)
            finally:
                self.admission.settle(
                    tenant, session.kernel.scheduler.attempts - before)

    async def _wait_idle(self, session: TenantSession,
                         timeout: Optional[float]) -> bool:
        loop = asyncio.get_event_loop()
        deadline = None if timeout is None else loop.time() + timeout
        self._work.set()
        while True:
            if session.suspended or session.idle() or \
                    self.admission.exhausted(session.name):
                return True
            if deadline is not None and loop.time() >= deadline:
                return False
            self._work.set()
            await asyncio.sleep(0.005)

    # -- ops -------------------------------------------------------------

    def _session(self, name: str) -> TenantSession:
        session = self.sessions.get(name)
        if session is None:
            raise SessionError(
                f"tenant {name!r} is not placed on shard {self.shard}")
        return session

    async def _op_place(self, request: dict) -> dict:
        name = request["tenant"]
        if name in self.sessions:
            raise SessionError(f"tenant {name!r} already on shard "
                               f"{self.shard}")
        bundle = request.get("bundle")
        if bundle:
            session = TenantSession(name, None, bundle_path=bundle,
                                    config=self.config)
            session.resume()
            self._persisted[name] = len(session.kernel.log.records)
        else:
            session = TenantSession.from_text(name, request["system"],
                                              config=self.config)
            self._persisted[name] = 0
        session.last_active = asyncio.get_event_loop().time()
        self.sessions[name] = session
        budget = None
        if request.get("slice_attempts") or request.get("total_attempts"):
            budget = TenantBudget(
                slice_attempts=int(request.get("slice_attempts") or 64),
                total_attempts=request.get("total_attempts"))
        self.admission.register(name, budget)
        self._work.set()
        return {"tenant": name, "shard": self.shard,
                "documents": sorted(session.system.documents),
                "services": sorted(session.system.services)}

    async def _op_inject(self, request: dict) -> dict:
        session = self._session(request["tenant"])
        trees = parse_forest(request["trees"])
        inserted = session.inject(request["document"], trees,
                                  parent_uid=request.get("parent"))
        self._work.set()
        return {"inserted": inserted, "grafts": session.kernel.productive}

    async def _op_run(self, request: dict) -> dict:
        session = self._session(request["tenant"])
        done = await self._wait_idle(session, request.get("timeout"))
        stats = self._tenant_stats(session)
        stats["fixpoint"] = done and not session.has_work()
        return stats

    async def _op_read(self, request: dict) -> dict:
        session = self._session(request["tenant"])
        if request.get("at") is not None:
            return session.read_at(request["document"], int(request["at"]))
        return session.read(request["document"])

    async def _op_suspend(self, request: dict) -> dict:
        name = request["tenant"]
        session = self._session(name)
        await self._wait_idle(session, request.get("timeout", 10.0))
        spooled = session.suspend(request["bundle"])
        self.admission.forget(name)
        del self.sessions[name]
        self._persisted.pop(name, None)
        return {"tenant": name, "suspended": True,
                "bundle": request["bundle"], "queries": spooled}

    def _tenant_stats(self, session: TenantSession) -> dict:
        stats = session.stats()
        stats["shard"] = self.shard
        stats["replication_lag"] = self._lag(session)
        return stats

    def _lag(self, session: TenantSession) -> int:
        if session.suspended:
            return 0
        return max(len(session.kernel.log.records)
                   - self._persisted.get(session.name, 0), 0)

    async def _op_stats(self, request: dict) -> dict:
        tenant = request.get("tenant")
        if tenant is not None:
            return self._tenant_stats(self._session(tenant))
        tenants = [self._tenant_stats(s) for s in self.sessions.values()]
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "placed": len(self.sessions),
            "tenants": tenants,
            "queue_depth": sum(t["pending"] for t in tenants),
            "replication_lag": sum(t["replication_lag"] for t in tenants),
            "cpu_seconds": time.process_time(),
            "stats": {
                "shard_records_shipped": perf.stats.shard_records_shipped,
                "graft_batches_encoded": perf.stats.graft_batches_encoded,
            },
        }

    async def _op_shutdown(self, request: dict) -> dict:
        self._stopping = True
        self._work.set()
        return {"shard": self.shard, "stopping": True}

    async def handle(self, message: dict) -> None:
        op = message.get("op")
        reply = {"kind": "reply", "id": message.get("id")}
        try:
            if op == "init":
                reply.update(self.configure(message))
            else:
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    raise SessionError(f"unknown pool op {op!r}")
                reply.update(await handler(message))
            reply["ok"] = True
        except (SessionError, ShardError, ValueError, KeyError,
                TypeError, OSError) as exc:
            reply.update(ok=False, error=str(exc) or repr(exc))
        await send_json(self.writer, reply)


async def _host_amain(host: str, port: int, shard: int) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    await send_json(writer, {"kind": "hello", "shard": shard})
    session_host = SessionHost(shard, writer)
    driver: Optional[asyncio.Task] = None
    try:
        while not session_host._stopping:
            try:
                kind, payload = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            if kind != FRAME_JSON:
                continue
            message = decode_json(payload)
            # Ops run sequentially on this loop — every mutation happens
            # between awaits, so reads are consistent without locks —
            # while the driver task interleaves admission slices.
            await session_host.handle(message)
            if message.get("op") == "init" and driver is None:
                driver = asyncio.ensure_future(session_host.drive())
    finally:
        if driver is not None:
            driver.cancel()
            try:
                await driver
            except asyncio.CancelledError:
                pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def host_main(host: str, port: int, shard: int) -> None:
    asyncio.run(_host_amain(host, port, shard))


# ----------------------------------------------------------------------
# The front side: the pool the server places tenants into.
# ----------------------------------------------------------------------

class _HostLink:
    """The front's handle on one session host: socket + process + demux."""

    def __init__(self, shard: int, process, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.shard = shard
        self.process = process
        self.reader = reader
        self.writer = writer
        self.pending: Dict[str, asyncio.Future] = {}
        self.alive = True
        self.task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                kind, payload = await read_frame(self.reader)
                if kind != FRAME_JSON:
                    continue
                message = decode_json(payload)
                future = self.pending.pop(str(message.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.CancelledError):
            pass
        finally:
            self.alive = False
            for future in self.pending.values():
                if not future.done():
                    future.set_exception(SessionError(
                        f"session host {self.shard} disconnected"))
            self.pending.clear()

    async def request(self, request_id: str, message: dict,
                      timeout: float) -> dict:
        if not self.alive:
            raise SessionError(f"session host {self.shard} is down")
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self.pending[request_id] = future
        message = dict(message, kind="req", id=request_id)
        await send_json(self.writer, message)
        return await asyncio.wait_for(future, timeout)

    async def close(self) -> None:
        self.task.cancel()
        try:
            await self.task
        except asyncio.CancelledError:
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5)


class ShardPool:
    """N session-host processes and the tenant → shard placement map."""

    def __init__(self, workers: int, *, spool_dir: str,
                 config: Optional[RuntimeConfig] = None,
                 slice_attempts: int = 64,
                 total_attempts: Optional[int] = None,
                 start_method: Optional[str] = None,
                 timeout: float = DEFAULT_TIMEOUT):
        if workers < 1:
            raise ValueError("a shard pool needs at least one worker")
        self.workers = workers
        self.spool_dir = spool_dir
        self.config = config or RuntimeConfig()
        self.slice_attempts = slice_attempts
        self.total_attempts = total_attempts
        self.timeout = timeout
        self.start_method = start_method or (
            "fork" if hasattr(os, "fork") else "spawn")
        self.placement: Dict[str, int] = {}
        self.spooled: Dict[str, str] = {}   # suspended tenant -> bundle
        self.links: Dict[int, _HostLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._hello: Dict[int, asyncio.Future] = {}
        self._ids = 0

    # -- lifecycle -------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            kind, payload = await read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            writer.close()
            return
        hello = decode_json(payload)
        shard = int(hello.get("shard", -1))
        future = self._hello.get(shard)
        if future is None or future.done():
            writer.close()
            return
        future.set_result((reader, writer))

    async def start(self) -> None:
        os.makedirs(self.spool_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._on_connection, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        context = multiprocessing.get_context(self.start_method)
        syspath = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        init = {
            "op": "init",
            "nshards": self.workers,
            "flags": perf.flags.snapshot(),
            "obs": obs_bus.ACTIVE,
            "config": {key: value for key, value
                       in dataclasses.asdict(self.config).items()
                       if value is not None},
            "slice_attempts": self.slice_attempts,
            "total_attempts": self.total_attempts,
        }
        for shard in range(self.workers):
            future: asyncio.Future = asyncio.get_event_loop().create_future()
            self._hello[shard] = future
            process = context.Process(
                target=_host_entry, args=(host, port, shard, syspath),
                daemon=True)
            process.start()
            reader, writer = await asyncio.wait_for(future, self.timeout)
            link = _HostLink(shard, process, reader, writer)
            self.links[shard] = link
            await link.request(f"init.{shard}", dict(init), self.timeout)

    async def shutdown(self) -> None:
        for link in self.links.values():
            if link.alive:
                try:
                    await link.request(self._next_id(), {"op": "shutdown"},
                                       10.0)
                except (SessionError, asyncio.TimeoutError):
                    pass
        for link in self.links.values():
            await link.close()
        self.links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- requests --------------------------------------------------------

    def _next_id(self) -> str:
        self._ids += 1
        return f"p{self._ids}"

    def pooled(self, tenant: str) -> bool:
        return tenant in self.placement or tenant in self.spooled

    def owner(self, tenant: str) -> int:
        shard = self.placement.get(tenant)
        if shard is None:
            raise SessionError(f"tenant {tenant!r} is not pooled")
        return shard

    async def _ensure_placed(self, tenant: str) -> int:
        """Transparent resume for a pool tenant spooled to its bundle."""
        if tenant in self.placement:
            return self.placement[tenant]
        bundle = self.spooled.get(tenant)
        if bundle is None:
            raise SessionError(f"tenant {tenant!r} is not pooled")
        del self.spooled[tenant]
        try:
            await self.place(tenant, bundle=bundle)
        except SessionError:
            self.spooled[tenant] = bundle
            raise
        return self.placement[tenant]

    async def call(self, shard: int, message: dict,
                   timeout: Optional[float] = None) -> dict:
        link = self.links.get(shard)
        if link is None:
            raise SessionError(f"no session host {shard}")
        reply = await link.request(self._next_id(), message,
                                   timeout or self.timeout)
        if not reply.get("ok"):
            raise SessionError(reply.get("error", "session host error"))
        return {key: value for key, value in reply.items()
                if key not in ("kind", "id", "ok")}

    async def forward(self, op: str, request: dict) -> dict:
        tenant = request["tenant"]
        shard = await self._ensure_placed(tenant)
        message = {key: value for key, value in request.items()
                   if key not in ("id", "trace")}
        message["op"] = op
        return await self.call(shard, message)

    async def suspend(self, tenant: str,
                      timeout: Optional[float] = None) -> dict:
        shard = self.owner(tenant)
        bundle = self._bundle_path(tenant)
        await self.call(shard, {"op": "suspend", "tenant": tenant,
                                "bundle": bundle, "timeout": timeout})
        del self.placement[tenant]
        self.spooled[tenant] = bundle
        return {"tenant": tenant, "suspended": True, "bundle": bundle}

    # -- placement and migration ----------------------------------------

    def _least_loaded(self) -> int:
        load = {shard: 0 for shard in self.links}
        for shard in self.placement.values():
            load[shard] = load.get(shard, 0) + 1
        return min(sorted(load), key=lambda shard: load[shard])

    async def place(self, tenant: str, system_text: Optional[str] = None,
                    *, bundle: Optional[str] = None,
                    shard: Optional[int] = None,
                    slice_attempts: Optional[int] = None,
                    total_attempts: Optional[int] = None) -> dict:
        if tenant in self.placement or (bundle is None
                                        and tenant in self.spooled):
            raise SessionError(f"tenant {tenant!r} is already pooled")
        target = self._least_loaded() if shard is None else shard
        message = {"op": "place", "tenant": tenant,
                   "slice_attempts": slice_attempts,
                   "total_attempts": total_attempts}
        if bundle is not None:
            message["bundle"] = bundle
        else:
            message["system"] = system_text
        reply = await self.call(target, message)
        self.placement[tenant] = target
        return reply

    def _bundle_path(self, tenant: str) -> str:
        return os.path.join(self.spool_dir, f"{tenant}.bundle.jsonl")

    async def migrate(self, tenant: str,
                      to_shard: Optional[int] = None) -> dict:
        """Move a tenant: suspend-to-bundle on the owner, resume on the
        target — the same PR 5 bundle a server restart would use."""
        await self._ensure_placed(tenant)
        source = self.owner(tenant)
        if to_shard is None:
            candidates = [shard for shard in self.links if shard != source]
            if not candidates:
                raise SessionError("no other shard to migrate to")
            load = {shard: 0 for shard in candidates}
            for name, shard in self.placement.items():
                if shard in load and name != tenant:
                    load[shard] += 1
            to_shard = min(sorted(load), key=lambda shard: load[shard])
        if to_shard == source:
            raise SessionError(
                f"tenant {tenant!r} is already on shard {source}")
        if to_shard not in self.links:
            raise SessionError(f"no session host {to_shard}")
        bundle = self._bundle_path(tenant)
        await self.call(source, {"op": "suspend", "tenant": tenant,
                                 "bundle": bundle})
        del self.placement[tenant]
        reply = await self.place(tenant, bundle=bundle, shard=to_shard)
        return {"tenant": tenant, "from": source, "to": to_shard,
                "bundle": bundle, "documents": reply.get("documents", [])}

    # -- aggregate stats -------------------------------------------------

    async def stats(self) -> List[dict]:
        reports: List[dict] = []
        for shard in sorted(self.links):
            link = self.links[shard]
            if not link.alive:
                reports.append({"shard": shard, "down": True, "placed": 0,
                                "tenants": [], "queue_depth": 0,
                                "replication_lag": 0})
                continue
            reports.append(await self.call(shard, {"op": "stats"}))
        return reports
