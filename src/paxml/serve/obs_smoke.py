"""Observability smoke exercise: ``python -m paxml.serve.obs_smoke``.

Boots a real :class:`PaxmlServer` at 100 % trace sampling and checks the
PR 8 acceptance criteria end-to-end, twice — once clean and once with
transient faults injected into the runtime:

* **causality** — a client-injected graft's ``trace_id`` shows up on the
  response echo, on the resulting subscription delta push, on the
  :class:`~paxml.kernel.graft.GraftRecord` in the kernel's log, and in
  the flight-recorder dump;
* **flight recorder** — the ``dump`` op returns a JSONL-compatible
  bundle containing the traced serve ops and spans;
* **watchdog** — an artificially parked session (a service whose peer
  always fails, so every call sits in breaker-cooldown parking) is
  flagged ``STALLED`` within the configured deadline, with open
  breakers in the diagnostics.

Prints ``SMOKE PASS`` and exits 0; any assertion or hang (CI wraps it
in ``timeout``) fails the job.
"""

from __future__ import annotations

import asyncio
import sys

from ..runtime.faults import FaultInjector
from ..runtime.policy import RuntimeConfig
from .client import ServeClient
from .server import PaxmlServer, ServerOptions

SYSTEM = """
@document d0
r{t{c0{1}, c1{2}}}

@document d1
r{!g}

@service g
t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}
"""

PAIRS_QUERY = "pair{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}"


async def _causality_round(server: PaxmlServer, client: ServeClient,
                           tenant: str, label: str) -> None:
    """Inject a traced graft; assert the trace_id's end-to-end ride."""
    await client.create(tenant, SYSTEM)
    await client.run(tenant, timeout=60.0)
    sub = await client.subscribe(tenant, PAIRS_QUERY)
    response = await client.inject(tenant, "d0", "t{c0{7}, c1{8}}",
                                   trace=True)
    assert response["inserted"] == 1, response
    trace = response.get("trace")
    assert trace and trace.get("trace_id"), \
        f"[{label}] traced inject got no trace echo: {response}"
    trace_id = trace["trace_id"]

    # 1. The delta push the graft produced carries the same trace.
    answers = await client.next_delta(sub["sub"], timeout=30.0)
    assert answers == ["pair{c0{7}, c1{8}}"], answers
    delta_traces = client.delta_traces(sub["sub"])
    assert any(t and t.get("trace_id") == trace_id for t in delta_traces), \
        f"[{label}] delta push lost the trace: {delta_traces}"

    # 2. The GraftRecord in the kernel's log carries it.
    session = server.sessions[tenant]
    traced_records = [record for record in session.kernel.log
                      if record.trace
                      and record.trace.get("trace_id") == trace_id]
    assert traced_records, f"[{label}] no GraftRecord carries {trace_id}"

    # 3. The flight-recorder dump contains it (serve op and span).
    dump = await client.dump(tenant, inline=True)
    kinds = {row["kind"] for row in dump["events"]
             if row["data"].get("trace_id") == trace_id}
    assert "serve_op" in kinds and "span" in kinds, \
        f"[{label}] flight dump misses the trace: {sorted(kinds)}"
    print(f"[obs-smoke] {label}: trace {trace_id} rode graft record, "
          f"delta push and flight dump")


STALL_SYSTEM = """
@document d0
r{a{1}}

@document d1
r{!h}

@service h
out{$x} :- d0/r{a{$x}}
"""


async def _watchdog_round() -> None:
    """A tenant whose every attempt is dropped parks its one call behind
    an open breaker on a long cooldown — an artificially parked session;
    the watchdog must flag it within the deadline."""
    options = ServerOptions(
        trace_sample_rate=1.0, watchdog_deadline=1.0,
        watchdog_period=0.2,
        config=RuntimeConfig(call_timeout=0.2, max_attempts=100,
                             backoff_base=0.01, breaker_threshold=2,
                             breaker_cooldown=3600.0))
    server = PaxmlServer(options,
                         injector=FaultInjector(drop_rate=1.0, seed=7))
    await server.start()
    client = await ServeClient.connect("127.0.0.1", server.port)
    await client.create("parked", STALL_SYSTEM)
    deadline = asyncio.get_event_loop().time() + 20.0
    stalled = None
    while asyncio.get_event_loop().time() < deadline:
        stats = await client.request("stats", tenant="parked")
        stalled = stats.get("stalled")
        if stalled:
            break
        await asyncio.sleep(0.25)
    assert stalled, "watchdog never flagged the parked tenant"
    assert stalled["parked"] or stalled["fresh"] or stalled["tried"], stalled
    assert stalled["open_breakers"], \
        f"expected an open breaker in the diagnostics: {stalled}"
    full = await client.request("stats")
    assert "parked" in full["watchdog"]["stalled"], full["watchdog"]
    dump = await client.dump("parked", inline=True)
    assert any(row["kind"] == "watchdog_stall" for row in dump["events"]), \
        "the stall never reached the flight recorder"
    print(f"[obs-smoke] watchdog flagged parked tenant after "
          f"{stalled['stalled_for']:.2f}s "
          f"(open breakers: {stalled['open_breakers']})")
    await client.request("shutdown")
    await server._done.wait()
    await client.close()


async def main() -> None:
    # Clean run, then a fault-injected one (drops + transient errors —
    # retries still converge); causality must hold through both.
    for label, injector in (
            ("clean", None),
            ("faulty", FaultInjector(drop_rate=0.2, error_rate=0.2,
                                     seed=42))):
        options = ServerOptions(trace_sample_rate=1.0,
                                watchdog_deadline=1.0,
                                config=RuntimeConfig(call_timeout=0.5))
        server = PaxmlServer(options, injector=injector)
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        await _causality_round(server, client, f"t-{label}", label)
        await client.request("shutdown")
        await server._done.wait()
        await client.close()
    await _watchdog_round()
    print("SMOKE PASS")


if __name__ == "__main__":
    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        sys.exit(130)
