"""A thin asyncio client for the paxml JSONL line protocol.

One reader task demultiplexes the connection: responses route to the
future registered under their ``id``, delta pushes route to the queue
of their subscription.  All ops are plain awaitable calls::

    client = await ServeClient.connect(host, port)
    await client.request("create", tenant="t0", system=text)
    sub = await client.subscribe("t0", "q(*T) :- portal{*T}")
    answers = await client.next_delta(sub["sub"], timeout=5.0)
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (its ``error`` is the message)."""


class ServeClient:
    """One connection to a :class:`~paxml.serve.server.PaxmlServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._deltas: Dict[int, asyncio.Queue] = {}
        self._closed = False
        self._pump = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = json.loads(line)
                if message.get("push") == "delta":
                    queue = self._deltas.get(message["sub"])
                    if queue is not None:
                        queue.put_nowait(message["answers"])
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServeError("connection closed"))
            self._pending.clear()

    async def request(self, op: str, **fields) -> dict:
        if self._closed:
            raise ServeError("connection closed")
        request_id = next(self._ids)
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    # -- convenience wrappers --------------------------------------------

    async def create(self, tenant: str, system_text: str, **budget) -> dict:
        return await self.request("create", tenant=tenant,
                                  system=system_text, **budget)

    async def run(self, tenant: str,
                  timeout: Optional[float] = 30.0) -> dict:
        return await self.request("run", tenant=tenant, timeout=timeout)

    async def inject(self, tenant: str, document: str, trees: str,
                     parent: Optional[int] = None) -> dict:
        return await self.request("inject", tenant=tenant, document=document,
                                  trees=trees, parent=parent)

    async def read(self, tenant: str, document: str,
                   at: Optional[int] = None) -> dict:
        return await self.request("read", tenant=tenant, document=document,
                                  at=at)

    async def subscribe(self, tenant: str, query: str) -> dict:
        response = await self.request("subscribe", tenant=tenant, query=query)
        self._deltas.setdefault(response["sub"], asyncio.Queue())
        return response

    async def unsubscribe(self, sub_id: int) -> dict:
        response = await self.request("unsubscribe", sub=sub_id)
        self._deltas.pop(sub_id, None)
        return response

    async def next_delta(self, sub_id: int,
                         timeout: Optional[float] = None
                         ) -> Optional[List[str]]:
        """The next pushed answer batch, or ``None`` on timeout."""
        queue = self._deltas.setdefault(sub_id, asyncio.Queue())
        try:
            if timeout is None:
                return await queue.get()
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    async def close(self) -> None:
        self._pump.cancel()
        try:
            await self._pump
        except asyncio.CancelledError:
            pass
        if not self._writer.is_closing():
            self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
