"""A thin asyncio client for the paxml JSONL line protocol.

One reader task demultiplexes the connection: responses route to the
future registered under their ``id``, delta pushes route to the queue
of their subscription.  All ops are plain awaitable calls::

    client = await ServeClient.connect(host, port)
    await client.request("create", tenant="t0", system=text)
    sub = await client.subscribe("t0", "q(*T) :- portal{*T}")
    answers = await client.next_delta(sub["sub"], timeout=5.0)
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Dict, List, Optional

from ..obs import trace as obs_trace


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (its ``error`` is the message)."""


class ServeClient:
    """One connection to a :class:`~paxml.serve.server.PaxmlServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._deltas: Dict[int, asyncio.Queue] = {}
        self._spans: Dict[int, asyncio.Queue] = {}
        self._closed = False
        self.last_trace: Optional[dict] = None  # trace echo of last response
        self.last_delta_traces: Dict[int, List[Optional[dict]]] = {}
        self._pump = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = json.loads(line)
                if message.get("push") == "delta":
                    queue = self._deltas.get(message["sub"])
                    if queue is not None:
                        if "traces" in message:
                            self.last_delta_traces[message["sub"]] = \
                                message["traces"]
                        queue.put_nowait(message["answers"])
                    continue
                if message.get("push") == "span":
                    queue = self._spans.get(message["watch"])
                    if queue is not None:
                        queue.put_nowait(message["span"])
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServeError("connection closed"))
            self._pending.clear()

    async def request(self, op: str, **fields) -> dict:
        """Send one op.  ``trace=True`` mints a client-side trace context
        (always sampled — the client took the head decision) and sends it
        as the request's ``trace`` envelope; a dict passes through as an
        explicit envelope.  Any trace echo in the response is kept in
        :attr:`last_trace`."""
        if self._closed:
            raise ServeError("connection closed")
        if fields.get("trace") is True:
            ctx = obs_trace.TraceContext(
                trace_id=obs_trace._new_id(), span_id=obs_trace._new_id(),
                tenant=fields.get("tenant"))
            fields["trace"] = ctx.to_wire()
        elif fields.get("trace") is None:
            fields.pop("trace", None)
        request_id = next(self._ids)
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        response = await future
        self.last_trace = response.get("trace")
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    # -- convenience wrappers --------------------------------------------

    async def create(self, tenant: str, system_text: str, **budget) -> dict:
        return await self.request("create", tenant=tenant,
                                  system=system_text, **budget)

    async def run(self, tenant: str,
                  timeout: Optional[float] = 30.0) -> dict:
        return await self.request("run", tenant=tenant, timeout=timeout)

    async def inject(self, tenant: str, document: str, trees: str,
                     parent: Optional[int] = None, trace=None) -> dict:
        return await self.request("inject", tenant=tenant, document=document,
                                  trees=trees, parent=parent, trace=trace)

    async def read(self, tenant: str, document: str,
                   at: Optional[int] = None) -> dict:
        return await self.request("read", tenant=tenant, document=document,
                                  at=at)

    async def subscribe(self, tenant: str, query: str) -> dict:
        response = await self.request("subscribe", tenant=tenant, query=query)
        self._deltas.setdefault(response["sub"], asyncio.Queue())
        return response

    async def unsubscribe(self, sub_id: int) -> dict:
        response = await self.request("unsubscribe", sub=sub_id)
        self._deltas.pop(sub_id, None)
        return response

    async def next_delta(self, sub_id: int,
                         timeout: Optional[float] = None
                         ) -> Optional[List[str]]:
        """The next pushed answer batch, or ``None`` on timeout."""
        queue = self._deltas.setdefault(sub_id, asyncio.Queue())
        try:
            if timeout is None:
                return await queue.get()
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def delta_traces(self, sub_id: int) -> List[Optional[dict]]:
        """Per-answer trace envelopes of the last delta push (if any)."""
        return self.last_delta_traces.get(sub_id, [])

    async def stats(self, tenant: Optional[str] = None) -> dict:
        return await self.request("stats", tenant=tenant) \
            if tenant is not None else await self.request("stats")

    async def migrate(self, tenant: str,
                      shard: Optional[int] = None) -> dict:
        """Move a pooled tenant to another shard worker (sharded servers)."""
        fields: dict = {"tenant": tenant}
        if shard is not None:
            fields["shard"] = shard
        return await self.request("migrate", **fields)

    async def dump(self, tenant: Optional[str] = None, *,
                   path: Optional[str] = None, inline: bool = False) -> dict:
        fields: dict = {}
        if tenant is not None:
            fields["tenant"] = tenant
        if path is not None:
            fields["path"] = path
        if inline:
            fields["inline"] = True
        return await self.request("dump", **fields)

    async def watch(self, buffer: int = 256) -> int:
        """Start a live span tail; returns the watch id."""
        response = await self.request("watch", buffer=buffer)
        self._spans.setdefault(response["watch"], asyncio.Queue())
        return response["watch"]

    async def next_span(self, watch_id: int,
                        timeout: Optional[float] = None) -> Optional[dict]:
        """The next pushed span, or ``None`` on timeout."""
        queue = self._spans.setdefault(watch_id, asyncio.Queue())
        try:
            if timeout is None:
                return await queue.get()
            return await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    async def unwatch(self, watch_id: int) -> dict:
        response = await self.request("unwatch", watch=watch_id)
        self._spans.pop(watch_id, None)
        return response

    async def close(self) -> None:
        self._pump.cancel()
        try:
            await self._pump
        except asyncio.CancelledError:
            pass
        if not self._writer.is_closing():
            self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
