"""One tenant's live AXML system inside the server.

A session owns the tenant's :class:`~paxml.system.system.AXMLSystem`,
its :class:`~paxml.kernel.EvaluationKernel` and the
:class:`~paxml.runtime.engine.AsyncRuntime` that drives grafts — all on
the server's shared event loop.  The admission layer runs it in bounded
*slices* (:meth:`run_slice` leases attempts via the scheduler's
``grant``); clients inject external grafts (:meth:`inject`, flowing
through :meth:`~paxml.kernel.EvaluationKernel.apply_external` so they
log, replay and fan out like engine grafts), read consistent snapshots
(:meth:`read` — sound because all mutation happens in the single-writer
apply step between awaits) or historical states (:meth:`read_at`, a
seed + graft-log prefix replay), and subscribe to continuous queries
through the session's :class:`~paxml.serve.hub.SubscriptionHub`.

Lifecycle: :meth:`suspend` drains state to a PR 5 checkpoint bundle and
drops the heavy objects; :meth:`resume` rebuilds them from the bundle
and re-primes the hub (whose seen-filters keep streams duplicate-free
across the gap).  Theorem 2.1 (order-independence of ``[I]``) is what
makes slice-interleaved, suspend-punctuated execution converge to the
same limit as an uninterrupted run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel import EvaluationKernel, RunResult
from ..kernel import resume as kernel_resume
from ..kernel.checkpoint import replay_prefix
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..obs.metrics import REGISTRY, Registry
from ..runtime.engine import AsyncRuntime
from ..runtime.faults import FaultInjector
from ..runtime.policy import RuntimeConfig
from ..system.loader import parse_system_text
from ..system.system import AXMLSystem
from ..tree.node import Node, current_stamp
from ..tree.serializer import to_canonical
from .hub import SubscriptionHub


class SessionError(ValueError):
    """A client request this session cannot honour."""


class TenantSession:
    """One tenant: system + kernel + runtime + subscription hub."""

    def __init__(self, name: str, system: Optional[AXMLSystem], *,
                 config: Optional[RuntimeConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 registry: Optional[Registry] = None,
                 bundle_path: Optional[str] = None,
                 lazy: bool = False):
        if system is None and bundle_path is None:
            raise SessionError("a session needs a system or a bundle")
        self.name = name
        self.config = config or RuntimeConfig()
        self.injector = injector
        self.hub = SubscriptionHub(name)
        # Relevance-guided laziness: the tenant's registered continuous
        # queries ARE its goal set.  Subscribe/unsubscribe reseed the
        # kernel's tracker — new goals wake dormant subtrees, retired
        # goals let the next reseed demote what only they needed.  With
        # no subscriptions every call sits dormant: a lazy tenant does
        # no speculative work.
        self.lazy = lazy
        if lazy:
            self.hub.on_registry_change = self._reseed_lazy
        # ``system=None`` + ``bundle_path`` builds the session already
        # suspended (spool restore on server restart): the first client
        # touch resumes it from the bundle.
        self.suspended = system is None
        self.bundle_path = bundle_path
        self.busy = False               # a slice is currently running
        self.last_active = 0.0          # loop time of the last request/graft
        self.last_graft_trace: Optional[Dict[str, object]] = None
        self.stalled: Optional[Dict[str, object]] = None  # watchdog verdict
        self._attach(system=system, kernel=None, runtime=None)
        scope = (registry or REGISTRY).scoped(tenant=name)
        self._grafts = scope.counter(
            "paxml_grafts_applied_total", "Productive grafts by tenant")
        self._invocations = scope.counter(
            "paxml_serve_invocations_total", "Completed invocations by tenant")
        self._attempts = scope.counter(
            "paxml_serve_attempts_total", "Transport attempts by tenant")
        self._subscribers = scope.gauge(
            "paxml_serve_subscribers", "Open subscriptions by tenant")
        self._published: Dict[str, int] = {}
        if obs_bus.ACTIVE and system is not None:
            obs_bus.emit(obs_events.TENANT_CREATED, tenant=name,
                         documents=sorted(system.documents),
                         services=sorted(system.services))

    @classmethod
    def from_text(cls, name: str, system_text: str,
                  **kwargs) -> "TenantSession":
        """Build a session from ``.axml`` system text (the wire form)."""
        return cls(name, parse_system_text(system_text, f"<{name}>"), **kwargs)

    def _attach(self, *, system: Optional[AXMLSystem],
                kernel: Optional[EvaluationKernel],
                runtime: Optional[AsyncRuntime]) -> None:
        """Wire (or re-wire, on resume) the heavy run objects."""
        self.system = system
        if system is None:
            self.kernel = None
            self.runtime = None
            return
        if runtime is None:
            kernel = kernel or EvaluationKernel(system, promote_front=False,
                                                dedup_delivered=True)
            runtime = AsyncRuntime(system, kernel=kernel, config=self.config,
                                   injector=self.injector)
        self.kernel = runtime.kernel
        self.runtime = runtime
        # Slices reuse one runtime: the session publishes per-tenant
        # metric deltas itself instead of re-absorbing cumulative bags.
        self.runtime.absorb_metrics = False
        # Every bus event the kernel/runtime emits for this session gets
        # the tenant label — that is what keys flight-recorder rings and
        # Chrome-trace pids per tenant.
        self.kernel.obs_labels["tenant"] = self.name
        self.kernel.graft_hooks.append(self._on_graft)
        if self.lazy:
            self._reseed_lazy()

    def _reseed_lazy(self) -> None:
        """(Re)seed the kernel's relevance goals from the hub's query set."""
        if self.kernel is None:
            return
        self.kernel.reseed_lazy(self.hub.queries())

    # -- the graft fan-in -------------------------------------------------

    def _on_graft(self, document, node, inserted) -> None:
        # The hook runs inside the graft transaction, so the causing
        # trace (if any) is still active here: remember it for the
        # watchdog's "last known good graft" diagnostic.
        ctx = obs_trace.current()
        if ctx is not None:
            self.last_graft_trace = ctx.to_wire()
        self.hub.on_graft(self.environment())

    def environment(self) -> Dict[str, Node]:
        return dict(self.system.environment())

    # -- driving ----------------------------------------------------------

    def has_work(self) -> bool:
        if self.suspended:
            return False
        scheduler = self.kernel.scheduler
        return bool(scheduler.has_fresh() or scheduler.parked_count())

    def runnable_at(self, now: float) -> bool:
        """Work that could make progress *now* (parked cooldowns excluded)."""
        if self.suspended:
            return False
        scheduler = self.kernel.scheduler
        if scheduler.has_fresh():
            return True
        ready = scheduler.next_parked_ready()
        return ready is not None and ready <= now

    def idle(self) -> bool:
        return not self.busy and not self.has_work()

    async def run_slice(self, attempts: int) -> RunResult:
        """Run one admission slice: a bounded attempt lease.

        Fairness across tenants is the rotation of these leases; within
        a slice the kernel scheduler's own two-queue fairness applies.
        A slice ending ``BUDGET_EXHAUSTED`` simply means the lease ran
        out with work left — the tenant rejoins the rotation.
        """
        if self.suspended:
            raise SessionError(f"tenant {self.name!r} is suspended")
        self.kernel.scheduler.grant(attempts)
        self.busy = True
        try:
            result = await self.runtime.arun()
        finally:
            self.busy = False
        self.publish_metrics()
        return result

    def publish_metrics(self) -> None:
        """Push per-tenant counter *deltas* into the scoped registry."""
        for counter, key, value in (
                (self._grafts, "productive", self.kernel.productive),
                (self._invocations, "steps", self.kernel.steps),
                (self._attempts, "attempts", self.kernel.scheduler.attempts)):
            previous = self._published.get(key, 0)
            if value > previous:
                counter.labels().inc(value - previous)
                self._published[key] = value
        self._subscribers.labels().set(self.hub.subscriber_count())

    # -- client operations ------------------------------------------------

    def _document(self, name: str):
        document = self.system.documents.get(name)
        if document is None:
            raise SessionError(f"tenant {self.name!r} has no document "
                               f"{name!r}")
        return document

    def inject(self, document_name: str, trees: List[Node],
               parent_uid: Optional[int] = None) -> int:
        """Graft client-supplied ``trees`` into a document (external event).

        The target is the document root, or the node with ``parent_uid``.
        Calls inside the injected trees must name declared services —
        they are scheduled like any grafted call.  Returns the number of
        trees actually inserted (subsumed ones drop, as always).
        """
        document = self._document(document_name)
        for tree in trees:
            for node in tree.iter_nodes():
                if node.is_function and \
                        node.marking.name not in self.system.services:
                    raise SessionError(
                        f"injected tree calls undeclared service "
                        f"!{node.marking.name}")
        if parent_uid is None:
            parent = document.root
        else:
            parent = next((n for n in document.root.iter_nodes()
                           if n.uid == parent_uid), None)
            if parent is None:
                raise SessionError(
                    f"no node uid={parent_uid} in document {document_name!r}")
            if parent.is_value:
                raise SessionError("cannot graft under a value leaf")
        inserted = self.kernel.apply_external(document, parent, trees)
        return len(inserted)

    def read(self, document_name: str) -> Dict[str, object]:
        """A consistent snapshot of the current document state.

        Sound without locking: every mutation runs inside the kernel's
        synchronous graft transaction on this event loop, so between
        awaits the tree is never half-grafted.  The returned ``grafts``
        ordinal and ``stamp`` identify the version read.
        """
        document = self._document(document_name)
        return {"document": document_name,
                "tree": to_canonical(document.root),
                "grafts": self.kernel.productive,
                "stamp": current_stamp()}

    def read_at(self, document_name: str, grafts: int) -> Dict[str, object]:
        """Point-in-time read: the state after ``grafts`` productive grafts.

        Replays the graft-log prefix against the seed snapshot (both
        version-stamped, uid-stable wire trees).  Requires graft-log
        retention; the readable window starts at the log's base (a
        resume without replayable history re-bases it).
        """
        self._document(document_name)
        log = self.kernel.log
        if not log.retain:
            raise SessionError("point-in-time reads need graft-log "
                               "retention (perf.flags.graft_log)")
        records = list(log)
        base = log.base_step
        if grafts < 0 or grafts > len(records):
            raise SessionError(
                f"graft ordinal {grafts} outside the readable window "
                f"[0, {len(records)}] (log base {base})")
        seeds = self.kernel._seed_wire
        if seeds is None or not records[:grafts]:
            # Nothing has landed yet (or an empty prefix): the seed is
            # the current state or the seed snapshot respectively.
            if seeds is None:
                return self.read()
            documents = replay_prefix(seeds, [])
        else:
            documents = replay_prefix(seeds, records[:grafts])
        replayed = documents.get(document_name)
        if replayed is None:
            raise SessionError(
                f"document {document_name!r} has no seed snapshot")
        return {"document": document_name,
                "tree": to_canonical(replayed.root),
                "grafts": grafts, "historical": True}

    def subscribe(self, query_text: str):
        sub = self.hub.subscribe(query_text, self.environment())
        self._subscribers.labels().set(self.hub.subscriber_count())
        return sub

    def frontier(self) -> tuple:
        """A progress marker for the stall watchdog: any advance of the
        scheduler frontier (a step, a graft, an attempt, or queue motion)
        changes this tuple."""
        if self.suspended:
            return ("suspended",)
        scheduler = self.kernel.scheduler
        return (self.kernel.steps, self.kernel.productive,
                scheduler.attempts, scheduler.fresh_count(),
                scheduler.parked_count(), scheduler.tried_count())

    def open_breakers(self) -> List[str]:
        """Keys of circuits currently not CLOSED (watchdog diagnostics)."""
        if self.suspended or self.runtime is None:
            return []
        from ..runtime.policy import CircuitState
        return sorted(
            f"{peer}/{service}"
            for (peer, service), circuit
            in self.runtime.breaker._circuits.items()
            if circuit.state is not CircuitState.CLOSED)

    def stats(self) -> Dict[str, object]:
        scheduler = None if self.suspended else self.kernel.scheduler
        return {
            "tenant": self.name,
            "suspended": self.suspended,
            "steps": 0 if self.suspended else self.kernel.steps,
            "productive": 0 if self.suspended else self.kernel.productive,
            "attempts": 0 if scheduler is None else scheduler.attempts,
            "subscribers": self.hub.subscriber_count(),
            "pending": 0 if scheduler is None else (
                scheduler.fresh_count() + scheduler.parked_count()),
            "queues": {"fresh": 0, "parked": 0, "tried": 0}
            if scheduler is None else {
                "fresh": scheduler.fresh_count(),
                "parked": scheduler.parked_count(),
                "tried": scheduler.tried_count()},
            "lazy": None if not self.lazy else {
                "queries": 0 if self.suspended else (
                    0 if self.kernel.relevance_tracker is None
                    else len(self.kernel.lazy_queries)),
                "dormant": 0 if scheduler is None
                else scheduler.dormant_count(),
                "retired": 0 if scheduler is None
                else scheduler.retired_count(),
                "skipped": 0 if scheduler is None
                else scheduler.skipped_unneeded},
            "open_breakers": self.open_breakers(),
            "stalled": self.stalled,
            "last_graft_trace": self.last_graft_trace,
        }

    # -- lifecycle --------------------------------------------------------

    def suspend(self, bundle_path: str) -> Dict[str, List[str]]:
        """Checkpoint to ``bundle_path`` and evict the heavy state.

        The caller (the server) guarantees no slice is running.  The hub
        survives in memory — answer logs and subscriber cursors intact —
        with its evaluator caches dropped; the returned ``{query:
        answers}`` map is what a spool manifest persists for server
        restarts.  Returns with the session in the suspended state.
        """
        if self.suspended:
            raise SessionError(f"tenant {self.name!r} is already suspended")
        if self.busy:
            raise SessionError("cannot suspend mid-slice")
        # Through the runtime, so cutoffs dirtied by earlier drained
        # slices stay excluded from the bundle.
        self.runtime.checkpoint(bundle_path)
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.TENANT_SUSPENDED, tenant=self.name,
                         bundle=bundle_path, steps=self.kernel.steps,
                         productive=self.kernel.productive)
        spooled = self.hub.detach()
        self._attach(system=None, kernel=None, runtime=None)
        self.suspended = True
        self.bundle_path = bundle_path
        return spooled

    def resume(self, bundle_path: Optional[str] = None) -> None:
        """Rebuild the live state from the bundle and re-prime the hub."""
        if not self.suspended:
            raise SessionError(f"tenant {self.name!r} is not suspended")
        path = bundle_path or self.bundle_path
        if path is None:
            raise SessionError(f"tenant {self.name!r} has no bundle to "
                               "resume from")
        runtime = kernel_resume(path, engine="async", config=self.config,
                                injector=self.injector)
        self._attach(system=runtime.system, kernel=runtime.kernel,
                     runtime=runtime)
        self.suspended = False
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.TENANT_RESUMED, tenant=self.name,
                         bundle=path, steps=self.kernel.steps,
                         productive=self.kernel.productive)
        self.hub.reattach(self.environment())

    async def drain(self, bundle_path: Optional[str] = None) -> None:
        """Graceful stop of a running slice (server shutdown path)."""
        if self.runtime is not None:
            if bundle_path is not None:
                self.runtime.checkpoint_path = bundle_path
            if self.busy:
                self.runtime.request_drain()
