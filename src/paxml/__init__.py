"""paxml — a full reproduction of *Positive Active XML* (PODS 2004).

Active XML documents are unordered labeled trees in which some nodes are
embedded calls to Web services; invoking a call appends its answer (which
may itself contain calls) next to the call node.  This library implements
the paper's entire formal development:

* the document model with subsumption, equivalence, reduction and least
  upper bounds (Section 2.1) — :mod:`paxml.tree`;
* monotone systems, service invocation with ``input``/``context``, fair
  rewriting sequences and their confluent semantics (Section 2.2) —
  :mod:`paxml.system`;
* the positive query language, snapshot and full results (Section 3.1) —
  :mod:`paxml.query`;
* termination analysis, the finite graph representation of simple systems,
  q-finiteness (Sections 3.2–3.3) and lazy query evaluation with
  q-unneeded / q-stable and their weak PTIME variants (Section 4) —
  :mod:`paxml.analysis`;
* regular path expressions and the ψ translation (Section 5) —
  :mod:`paxml.analysis.translation` on top of :mod:`paxml.automata`;
* the substrates the paper leans on: datalog (:mod:`paxml.datalog`),
  Turing machines (:mod:`paxml.turing`), and a simulated P2P network
  (:mod:`paxml.peers`).

Quickstart::

    from paxml import AXMLSystem, materialize, parse_query, evaluate_snapshot

    system = AXMLSystem.build(
        documents={"d0": "r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}",
                   "d1": "r{!g, !f}"},
        services={
            "g": "t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}",
            "f": "t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}",
        })
    materialize(system)                      # Example 3.2: transitive closure
    query = parse_query("pair{$x, $y} :- d1/r{t{c0{$x}, c1{$y}}}")
    print(evaluate_snapshot(query, system.environment()).pretty())
"""

from .analysis import (
    Finiteness,
    GraphRepresentation,
    LazyResult,
    TerminationReport,
    TerminationStatus,
    TranslationResult,
    Verdict,
    analyze_termination,
    build_graph_representation,
    eager_evaluate,
    full_query_result,
    is_possible_answer,
    is_q_finite,
    is_q_stable,
    is_unneeded,
    is_weakly_stable,
    lazy_evaluate,
    strip_annotations,
    strip_forest,
    translate,
    weakly_relevant_calls,
)
from .query import (
    PatternNode,
    PositiveQuery,
    RegexSpec,
    evaluate_snapshot,
    parse_pattern,
    parse_queries,
    parse_query,
)
from .system import (
    AXMLSystem,
    BlackBoxService,
    QueryService,
    RewriteResult,
    RewritingEngine,
    Service,
    Status,
    UnionQueryService,
    dependency_graph,
    fire_once,
    invoke,
    is_acyclic,
    materialize,
    materialize_excluding,
)
from .tree import (
    Document,
    Forest,
    FunName,
    Label,
    Node,
    RegularTreeGraph,
    Value,
    canonical_key,
    fun,
    is_equivalent,
    is_subsumed,
    label,
    lub,
    parse_forest,
    parse_tree,
    reduce_in_place,
    reduced_copy,
    to_canonical,
    to_compact,
    to_xml,
    val,
)
from . import obs
from . import perf

__version__ = "1.0.0"

__all__ = [
    "AXMLSystem",
    "BlackBoxService",
    "Document",
    "Finiteness",
    "Forest",
    "FunName",
    "GraphRepresentation",
    "Label",
    "LazyResult",
    "Node",
    "PatternNode",
    "PositiveQuery",
    "QueryService",
    "RegexSpec",
    "RegularTreeGraph",
    "RewriteResult",
    "RewritingEngine",
    "Service",
    "Status",
    "TerminationReport",
    "TerminationStatus",
    "TranslationResult",
    "UnionQueryService",
    "Value",
    "Verdict",
    "analyze_termination",
    "build_graph_representation",
    "canonical_key",
    "dependency_graph",
    "eager_evaluate",
    "evaluate_snapshot",
    "fire_once",
    "full_query_result",
    "fun",
    "invoke",
    "is_acyclic",
    "is_equivalent",
    "is_possible_answer",
    "is_q_finite",
    "is_q_stable",
    "is_subsumed",
    "is_unneeded",
    "is_weakly_stable",
    "label",
    "lazy_evaluate",
    "lub",
    "materialize",
    "materialize_excluding",
    "obs",
    "parse_forest",
    "parse_pattern",
    "parse_queries",
    "parse_query",
    "parse_tree",
    "perf",
    "reduce_in_place",
    "reduced_copy",
    "strip_annotations",
    "strip_forest",
    "to_canonical",
    "to_compact",
    "to_xml",
    "translate",
    "val",
    "weakly_relevant_calls",
]
