"""Regular expressions over labels, for the positive+reg extension (Section 5).

A regex denotes a set of *words of labels*; a regex pattern node matches a
document node ``n`` when some downward path ``n = n0, n1, …, nm`` exists
whose label word ``λ(n0) … λ(nm)`` belongs to the language.

Concrete syntax (parsed by :func:`parse_regex`)::

    atom   :=  IDENT          -- the one-letter word of that label
            |  '_'            -- wildcard: any single label
            |  '(' regex ')'
    suffix :=  atom ('*' | '+' | '?')?
    concat :=  suffix ('.' suffix)*
    regex  :=  concat ('|' concat)*

Examples: ``cd.title``, ``(a|b)*.c``, ``part+.name``.

The empty word is representable (e.g. ``a?`` accepts ε) but rejected by the
ψ translation and by matching, because a zero-length path has no node to
anchor children at; :func:`paxml.automata.nfa.NFA.accepts_empty` lets
callers detect and refuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


class RegexError(ValueError):
    """Raised on malformed regular expressions."""


@dataclass(frozen=True)
class Sym:
    """A single-label word; ``name`` is a label, or ``None`` for the wildcard."""

    name: Union[str, None]

    def __str__(self) -> str:
        return self.name if self.name is not None else "_"


@dataclass(frozen=True)
class Concat:
    parts: Tuple["Regex", ...]

    def __str__(self) -> str:
        return ".".join(_wrap(p, for_concat=True) for p in self.parts)


@dataclass(frozen=True)
class Alt:
    options: Tuple["Regex", ...]

    def __str__(self) -> str:
        return "|".join(str(o) for o in self.options)


@dataclass(frozen=True)
class Star:
    inner: "Regex"

    def __str__(self) -> str:
        return _wrap(self.inner) + "*"


@dataclass(frozen=True)
class Plus:
    inner: "Regex"

    def __str__(self) -> str:
        return _wrap(self.inner) + "+"


@dataclass(frozen=True)
class Opt:
    inner: "Regex"

    def __str__(self) -> str:
        return _wrap(self.inner) + "?"


Regex = Union[Sym, Concat, Alt, Star, Plus, Opt]


def _wrap(regex: Regex, for_concat: bool = False) -> str:
    needs = isinstance(regex, Alt) or (for_concat and isinstance(regex, Concat))
    text = str(regex)
    return f"({text})" if needs else text


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def fail(self, message: str) -> RegexError:
        return RegexError(f"{message} at position {self.pos} in {self.text!r}")

    def parse(self) -> Regex:
        regex = self.alt()
        if self.peek():
            raise self.fail(f"trailing input {self.peek()!r}")
        return regex

    def alt(self) -> Regex:
        options = [self.concat()]
        while self.peek() == "|":
            self.pos += 1
            options.append(self.concat())
        return options[0] if len(options) == 1 else Alt(tuple(options))

    def concat(self) -> Regex:
        parts = [self.suffix()]
        while self.peek() == ".":
            self.pos += 1
            parts.append(self.suffix())
        return parts[0] if len(parts) == 1 else Concat(tuple(parts))

    def suffix(self) -> Regex:
        atom = self.atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.pos += 1
                atom = Star(atom)
            elif ch == "+":
                self.pos += 1
                atom = Plus(atom)
            elif ch == "?":
                self.pos += 1
                atom = Opt(atom)
            else:
                return atom

    def atom(self) -> Regex:
        ch = self.peek()
        if ch == "(":
            self.pos += 1
            inner = self.alt()
            if self.peek() != ")":
                raise self.fail("expected ')'")
            self.pos += 1
            return inner
        if ch == "_":
            self.pos += 1
            return Sym(None)
        if ch and (ch.isalnum() or ch == "_"):
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
            ):
                self.pos += 1
            return Sym(self.text[start:self.pos])
        raise self.fail(f"expected a label, '_' or '(', found {ch!r}")


def parse_regex(text: str) -> Regex:
    """Parse a path regular expression.

    >>> str(parse_regex("a.(b|c)*.d"))
    'a.(b|c)*.d'
    """
    if not text.strip():
        raise RegexError("empty regular expression")
    return _Parser(text).parse()
