"""Automata substrate for regular path expressions (Section 5)."""

from .nfa import NFA
from .regex import Alt, Concat, Opt, Plus, Regex, RegexError, Star, Sym, parse_regex

__all__ = [
    "Alt",
    "Concat",
    "NFA",
    "Opt",
    "Plus",
    "Regex",
    "RegexError",
    "Star",
    "Sym",
    "parse_regex",
]
