"""Nondeterministic finite automata over label alphabets.

Built from path regexes by Thompson's construction and used in two places:

* *native* evaluation of positive+reg patterns — the matcher walks document
  paths and automaton states in lockstep (:mod:`paxml.query.matching`);
* the ψ translation of Proposition 5.1 — each transition becomes one rule
  of a state-propagation service (:mod:`paxml.analysis.translation`),
  which requires the ε-free transition relation exposed here.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .regex import Alt, Concat, Opt, Plus, Regex, Star, Sym

# A transition label: a concrete label name, or None for the wildcard.
Letter = Optional[str]


class NFA:
    """An ε-free NFA with a single initial state.

    ``transitions`` maps ``(state, letter)`` to successor state sets, where
    ``letter`` is a label name or ``None`` (wildcard, matching any label).
    Thompson construction introduces ε-moves; :func:`from_regex` removes
    them by closure so downstream users (the ψ translation in particular)
    only ever see letter-consuming moves.
    """

    def __init__(self, n_states: int, initial: int, accepting: Set[int],
                 transitions: Dict[Tuple[int, Letter], Set[int]]):
        self.n_states = n_states
        self.initial = initial
        self.accepting = frozenset(accepting)
        self.transitions = {key: frozenset(dsts) for key, dsts in transitions.items()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_regex(cls, regex: Regex) -> "NFA":
        """Thompson construction followed by ε-elimination."""
        builder = _Thompson()
        start, end = builder.build(regex)
        return builder.finish(start, end)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def step(self, states: Iterable[int], letter: str) -> FrozenSet[int]:
        """All states reachable from ``states`` by consuming ``letter``."""
        result: Set[int] = set()
        for state in states:
            result |= self.transitions.get((state, letter), frozenset())
            result |= self.transitions.get((state, None), frozenset())
        return frozenset(result)

    def accepts(self, word: Sequence[str]) -> bool:
        """Does the automaton accept the given word of labels?"""
        states: FrozenSet[int] = frozenset([self.initial])
        for letter in word:
            states = self.step(states, letter)
            if not states:
                return False
        return bool(states & self.accepting)

    def accepts_empty(self) -> bool:
        """True iff ε is in the language (the initial state accepts)."""
        return self.initial in self.accepting

    def moves(self) -> List[Tuple[int, Letter, int]]:
        """All transitions as flat ``(src, letter, dst)`` triples."""
        return [
            (src, letter, dst)
            for (src, letter), dsts in sorted(
                self.transitions.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
            )
            for dst in sorted(dsts)
        ]

    def alphabet(self) -> Set[str]:
        """The concrete labels mentioned by transitions (wildcard excluded)."""
        return {letter for (_, letter) in self.transitions if letter is not None}

    def live_states(self) -> Set[int]:
        """States on some path from the initial state to an accepting state."""
        forward: Set[int] = set()
        stack = [self.initial]
        while stack:
            state = stack.pop()
            if state in forward:
                continue
            forward.add(state)
            for (src, _letter), dsts in self.transitions.items():
                if src == state:
                    stack.extend(dsts)
        backward: Set[int] = set(self.accepting)
        changed = True
        while changed:
            changed = False
            for (src, _letter), dsts in self.transitions.items():
                if src not in backward and dsts & backward:
                    backward.add(src)
                    changed = True
        return forward & backward

    def __repr__(self) -> str:
        return (
            f"NFA(states={self.n_states}, initial={self.initial}, "
            f"accepting={sorted(self.accepting)}, moves={len(self.moves())})"
        )


class _Thompson:
    """Thompson construction with explicit ε-edges, ε-eliminated at the end."""

    def __init__(self):
        self.count = 0
        self.eps: Dict[int, Set[int]] = {}
        self.moves: Dict[Tuple[int, Letter], Set[int]] = {}

    def new_state(self) -> int:
        state = self.count
        self.count += 1
        self.eps[state] = set()
        return state

    def add_eps(self, src: int, dst: int) -> None:
        self.eps[src].add(dst)

    def add_move(self, src: int, letter: Letter, dst: int) -> None:
        self.moves.setdefault((src, letter), set()).add(dst)

    def build(self, regex: Regex) -> Tuple[int, int]:
        if isinstance(regex, Sym):
            start, end = self.new_state(), self.new_state()
            self.add_move(start, regex.name, end)
            return start, end
        if isinstance(regex, Concat):
            start, end = self.build(regex.parts[0])
            for part in regex.parts[1:]:
                nstart, nend = self.build(part)
                self.add_eps(end, nstart)
                end = nend
            return start, end
        if isinstance(regex, Alt):
            start, end = self.new_state(), self.new_state()
            for option in regex.options:
                ostart, oend = self.build(option)
                self.add_eps(start, ostart)
                self.add_eps(oend, end)
            return start, end
        if isinstance(regex, Star):
            start, end = self.new_state(), self.new_state()
            istart, iend = self.build(regex.inner)
            self.add_eps(start, istart)
            self.add_eps(start, end)
            self.add_eps(iend, istart)
            self.add_eps(iend, end)
            return start, end
        if isinstance(regex, Plus):
            istart, iend = self.build(regex.inner)
            self.add_eps(iend, istart)
            return istart, iend
        if isinstance(regex, Opt):
            start, end = self.new_state(), self.new_state()
            istart, iend = self.build(regex.inner)
            self.add_eps(start, istart)
            self.add_eps(iend, end)
            self.add_eps(start, end)
            return start, end
        raise TypeError(f"unknown regex node {regex!r}")

    def _closure(self, state: int) -> Set[int]:
        seen: Set[int] = set()
        stack = [state]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.eps[current])
        return seen

    def finish(self, start: int, end: int) -> NFA:
        closures = {state: self._closure(state) for state in range(self.count)}
        transitions: Dict[Tuple[int, Letter], Set[int]] = {}
        accepting: Set[int] = set()
        for state in range(self.count):
            reach = closures[state]
            if end in reach:
                accepting.add(state)
            for member in reach:
                for (src, letter), dsts in self.moves.items():
                    if src == member:
                        bucket = transitions.setdefault((state, letter), set())
                        for dst in dsts:
                            bucket.add(dst)
        return NFA(self.count, start, accepting, transitions)
