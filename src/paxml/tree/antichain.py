"""An inverted-index antichain over packed marking bitsets.

:func:`paxml.tree.reduction.antichain_insert` is linear in the kept set:
every insert compares the candidate's subtree bitset against every kept
tree.  For the incremental evaluator's per-site result sets — thousands
of pairwise-incomparable answer trees, inserted one by one — that scan
is the single hottest loop in the library, even with the comparisons
reduced to two int operations each.

This class replaces the scan with two posting lists over bit positions
(interned marking ids, :mod:`paxml.tree.store`):

* ``postings[b]``  — indexes of every kept tree whose subtree contains
  marking bit ``b``;
* ``anchored[b]``  — indexes of the kept trees *anchored* at ``b``: each
  tree is anchored at the rarest of its bits at insertion time, so each
  index appears in exactly one anchor list.

An insert then touches only the trees that could possibly be comparable:

* a kept tree subsuming the candidate must contain **all** candidate
  bits — in particular the candidate's rarest bit, so scanning
  ``postings[rarest]`` is complete for the drop direction;
* a kept tree subsumed by the candidate has all **its** bits among the
  candidate's — in particular its anchor bit, so scanning
  ``anchored[b]`` for the candidate's bits is complete for the eviction
  direction, and visits each potential evictee once.

On answer-tree workloads the rare bits are data values, so both scans
are a handful of entries where the flat loop visited the entire set.
Degenerate workloads (every tree over the same few markings) degrade
back to the linear scan — never below it.

Kept trees must not be structurally mutated after insertion (the
posting lists snapshot their bitsets); the evaluator's answer trees are
frozen by construction — grafting copies them, antichain membership is
read-only.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from .node import Node
from .store import subtree_bits
from .subsumption import is_subsumed


def _bit_indexes(bits: int) -> List[int]:
    out = []
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


class BitsetAntichain:
    """A set of pairwise-incomparable trees with indexed insertion.

    Semantically identical to maintaining a list through
    :func:`~paxml.tree.reduction.antichain_insert`: a candidate subsumed
    by (or equivalent to) a kept tree is dropped, kept trees the
    candidate subsumes are evicted, ties keep the earlier tree.
    """

    __slots__ = ("_trees", "_bits", "_postings", "_anchored", "_anchor",
                 "_live")

    def __init__(self, trees: Optional[List[Node]] = None):
        self._trees: List[Optional[Node]] = []
        self._bits: List[int] = []
        self._postings: Dict[int, Set[int]] = {}
        self._anchored: Dict[int, Set[int]] = {}
        self._anchor: Dict[int, int] = {}
        self._live = 0
        if trees:
            for tree in trees:
                self.insert(tree)

    @classmethod
    def from_antichain(cls, trees) -> "BitsetAntichain":
        """Index an existing kept set without any comparisons.

        Mirrors the sequential contract of ``antichain_insert``: members
        already in the list are never re-compared against each other, so
        indexing them wholesale is exactly equivalent — and O(bits) per
        tree instead of O(n·bits).
        """
        index = cls()
        for tree in trees:
            tbits = subtree_bits(tree)
            index._add(tree, tbits, _bit_indexes(tbits))
        return index

    def __len__(self) -> int:
        return self._live

    def __iter__(self) -> Iterator[Node]:
        return (tree for tree in self._trees if tree is not None)

    def items(self) -> List[Node]:
        return [tree for tree in self._trees if tree is not None]

    def insert(self, candidate: Node, cbits: Optional[int] = None) -> bool:
        """Insert ``candidate``; True iff it entered the antichain.

        ``cbits`` may pass the candidate's packed subtree bits when the
        caller already knows them (the evaluator computes answer bits
        straight from the binding), saving the store walk for fresh trees.
        """
        if cbits is None:
            cbits = subtree_bits(candidate)
        cand_bits = _bit_indexes(cbits)
        trees, bits, postings = self._trees, self._bits, self._postings
        # Drop direction: scan the candidate's rarest posting.  A bit
        # with no posting at all proves no kept tree can dominate.
        best: Optional[Set[int]] = None
        best_len = -1
        for b in cand_bits:
            posting = postings.get(b)
            if not posting:
                best = None
                break
            if best_len < 0 or len(posting) < best_len:
                best, best_len = posting, len(posting)
        if best:
            for i in best:
                obits = bits[i]
                if cbits | obits == obits \
                        and is_subsumed(candidate, trees[i]):
                    return False
        # Eviction direction: every subsumable kept tree is anchored at
        # one of the candidate's bits.
        anchored = self._anchored
        evict: List[int] = []
        for b in cand_bits:
            anchor_list = anchored.get(b)
            if anchor_list:
                for i in anchor_list:
                    obits = bits[i]
                    if obits | cbits == cbits \
                            and is_subsumed(trees[i], candidate):
                        evict.append(i)
        for i in evict:
            self._remove(i)
        self._add(candidate, cbits, cand_bits)
        return True

    # ------------------------------------------------------------------

    def _add(self, tree: Node, tbits: int, bit_list: List[int]) -> None:
        index = len(self._trees)
        self._trees.append(tree)
        self._bits.append(tbits)
        postings = self._postings
        anchor = bit_list[0]
        anchor_len = -1
        for b in bit_list:
            posting = postings.get(b)
            if posting is None:
                posting = postings[b] = set()
            if anchor_len < 0 or len(posting) < anchor_len:
                anchor, anchor_len = b, len(posting)
            posting.add(index)
        self._anchor[index] = anchor
        anchored = self._anchored.get(anchor)
        if anchored is None:
            anchored = self._anchored[anchor] = set()
        anchored.add(index)
        self._live += 1

    def _remove(self, index: int) -> None:
        tbits = self._bits[index]
        self._trees[index] = None
        for b in _bit_indexes(tbits):
            posting = self._postings.get(b)
            if posting is not None:
                posting.discard(index)
        anchor = self._anchor.pop(index)
        anchored = self._anchored.get(anchor)
        if anchored is not None:
            anchored.discard(index)
        self._live -= 1
