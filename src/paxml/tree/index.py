"""Inverted marking indexes over live documents (the query compiler's
candidate source).

The matchers in :mod:`paxml.query` repeatedly ask two questions about a
document node: *which children carry marking m?* (constant sibling
patterns, subsumption's candidate pairing) and *which children carry
marking m and contain a given value one or two levels down?* (the probe
side of a sibling join).  The seed code answered both with a linear scan
of ``node.children`` per partial binding; this module answers them from
per-parent buckets kept consistent with the versioned tree.

Consistency contract (see the version-stamp comment in
:mod:`paxml.tree.node`):

* every structural *addition* to a node's child list bumps the node's
  version (``add_child`` / the graft path call ``touch``), so an entry
  validated against ``node.version`` always contains **every current
  child** — a stale entry is impossible to read;
* equivalence-preserving *pruning* (reduction evicting a subsumed
  sibling) may leave an entry holding a pruned child.  That is sound for
  every consumer here: a pruned child is subsumed by a surviving
  sibling, and both matching and subsumption are invariant under
  document equivalence, so answers derived through the pruned copy are
  themselves subsumed by answers derived through the survivor and vanish
  in forest reduction.  (The graft path nevertheless repairs entries
  eagerly — see :func:`note_graft` — so in the engines' flows entries
  are exact, not merely equivalent.)

Entries are keyed by node uid and bounded crudely, like the persistent
subsumption cache: cleared wholesale on overflow, correct at any size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from .node import Marking, Node, Value

# uid → (version at build, child count at build, marking → children)
_Buckets = Dict[Marking, List[Node]]
_CHILD_INDEX: Dict[int, Tuple[int, int, _Buckets]] = {}
_CHILD_INDEX_MAX = 500_000

# uid → (version at build, (p_marking, q_marking) → value marking → children)
_ProbeMap = Dict[Tuple[Marking, Marking], Dict[Marking, List[Node]]]
_PROBE_INDEX: Dict[int, Tuple[int, _ProbeMap]] = {}
_PROBE_INDEX_MAX = 100_000

_EMPTY: Tuple[Node, ...] = ()


def clear_index() -> None:
    _CHILD_INDEX.clear()
    _PROBE_INDEX.clear()


perf.register_cache(clear_index)


def _build_buckets(node: Node) -> _Buckets:
    buckets: _Buckets = {}
    for child in node.children:
        buckets.setdefault(child.marking, []).append(child)
    return buckets


def child_buckets(node: Node) -> _Buckets:
    """The children of ``node`` grouped by marking, from the live index.

    Validated against ``node.version``: any append since the entry was
    built bumped the version, so a returned entry covers every current
    child (see the module docstring for why pruned leftovers are sound).
    """
    if not perf.flags.child_index:
        return _build_buckets(node)
    entry = _CHILD_INDEX.get(node.uid)
    if entry is not None and entry[0] == node.version:
        perf.stats.index_hits += 1
        return entry[2]
    perf.stats.index_misses += 1
    buckets = _build_buckets(node)
    if len(_CHILD_INDEX) >= _CHILD_INDEX_MAX:
        _CHILD_INDEX.clear()
    _CHILD_INDEX[node.uid] = (node.version, len(node.children), buckets)
    return buckets


def child_bucket(node: Node, marking: Marking) -> Sequence[Node]:
    """Children of ``node`` carrying ``marking`` (possibly empty)."""
    return child_buckets(node).get(marking, _EMPTY)


def note_graft(parent: Node, inserted: Sequence[Node]) -> None:
    """Patch ``parent``'s index entry after the graft path appended
    ``inserted`` to its children (and bumped versions via ``touch``).

    Appending to the live buckets is O(inserted); when the antichain
    insertion also *evicted* siblings the child count no longer lines up
    and the entry is dropped instead (the next lookup rebuilds it), which
    keeps entries exact — not merely equivalent — along the graft path.
    Ancestor entries need no treatment: the same ``touch`` bumped their
    versions, so their stale entries can never be read again.
    """
    if not perf.flags.child_index:
        return
    _PROBE_INDEX.pop(parent.uid, None)
    entry = _CHILD_INDEX.get(parent.uid)
    if entry is None:
        return
    version, count, buckets = entry
    if len(parent.children) != count + len(inserted):
        del _CHILD_INDEX[parent.uid]
        return
    for child in inserted:
        buckets.setdefault(child.marking, []).append(child)
    _CHILD_INDEX[parent.uid] = (parent.version, len(parent.children), buckets)
    perf.stats.index_graft_patches += 1


# ----------------------------------------------------------------------
# Value probes: the indexed side of a sibling join.
#
# A sibling pattern shaped  p{q{$z}, …}  with p, q constant and $z bound
# admits candidates c only when c carries marking p and has a child d
# with marking q that has a value child equal to the binding of $z — a
# necessary condition of the embedding.  The probe map answers "children
# of n matching (p, q) with value v" in O(answer) once built; building
# is one pass over three levels of n's subtree, memoised against n's
# version.
# ----------------------------------------------------------------------


def probe_bucket(node: Node, p_marking: Marking, q_marking: Marking,
                 value: Marking) -> Sequence[Node]:
    """Children of ``node`` with ``p_marking`` owning a ``q_marking`` child
    that has a value leaf marked ``value``."""
    if not perf.flags.child_index:
        return _probe_scan(node, p_marking, q_marking, value)
    entry = _PROBE_INDEX.get(node.uid)
    if entry is None or entry[0] != node.version:
        if len(_PROBE_INDEX) >= _PROBE_INDEX_MAX:
            _PROBE_INDEX.clear()
        entry = (node.version, {})
        _PROBE_INDEX[node.uid] = entry
    probes = entry[1]
    key = (p_marking, q_marking)
    by_value = probes.get(key)
    if by_value is None:
        by_value = probes[key] = _build_probe(node, p_marking, q_marking)
    perf.stats.probe_lookups += 1
    return by_value.get(value, _EMPTY)


def _build_probe(node: Node, p_marking: Marking,
                 q_marking: Marking) -> Dict[Marking, List[Node]]:
    by_value: Dict[Marking, List[Node]] = {}
    for child in node.children:
        if child.marking != p_marking:
            continue
        seen: set = set()
        for grand in child.children:
            if grand.marking != q_marking:
                continue
            for leaf in grand.children:
                marking = leaf.marking
                if isinstance(marking, Value) and marking not in seen:
                    seen.add(marking)
                    by_value.setdefault(marking, []).append(child)
    return by_value


def _probe_scan(node: Node, p_marking: Marking, q_marking: Marking,
                value: Marking) -> List[Node]:
    """Index-off fallback: the same candidate set by linear scan."""
    return [
        child for child in node.children
        if child.marking == p_marking and any(
            grand.marking == q_marking and any(
                leaf.marking == value for leaf in grand.children)
            for grand in child.children)
    ]


# ----------------------------------------------------------------------
# Subtree marking sets: the O(1) necessary condition for subsumption.
#
# A subsumption homomorphism maps every node of t1 to a marking-equal
# node of t2, so markings(t1) ⊆ markings(t2) whenever t1 ⊑ t2.  (Only
# the *set* is usable: homomorphisms are non-injective, so counts carry
# no information — a{b, b, b} ⊑ a{b}.)  The sets are cached per
# (uid, version) and shared across every subsumption entry point, which
# turns the all-pairs comparisons of antichain maintenance over
# value-distinct answers into frozenset subset tests.
# ----------------------------------------------------------------------

_MARKING_SETS: Dict[int, Tuple[int, frozenset]] = {}
_MARKING_SETS_MAX = 500_000

perf.register_cache(_MARKING_SETS.clear)


def marking_set(root: Node) -> frozenset:
    """The set of markings occurring in the subtree at ``root``."""
    entry = _MARKING_SETS.get(root.uid)
    if entry is not None and entry[0] == root.version:
        return entry[1]
    markings = frozenset(node.marking for node in root.iter_nodes())
    if len(_MARKING_SETS) >= _MARKING_SETS_MAX:
        _MARKING_SETS.clear()
    _MARKING_SETS[root.uid] = (root.version, markings)
    return markings


# ----------------------------------------------------------------------
# Document census: marking → node count over a whole tree, the planner's
# selectivity estimate.  Cached against the root's version; a graft
# anywhere bumps it, so the census follows growth without hooks.
# ----------------------------------------------------------------------

_CENSUS: Dict[int, Tuple[int, Dict[Marking, int], int]] = {}
_CENSUS_MAX = 10_000

perf.register_cache(_CENSUS.clear)


def marking_census(root: Node) -> Tuple[Dict[Marking, int], int]:
    """``(counts, total)``: occurrences per marking and the tree size."""
    entry = _CENSUS.get(root.uid)
    if entry is not None and entry[0] == root.version:
        return entry[1], entry[2]
    counts: Dict[Marking, int] = {}
    total = 0
    for node in root.iter_nodes():
        total += 1
        counts[node.marking] = counts.get(node.marking, 0) + 1
    if len(_CENSUS) >= _CENSUS_MAX:
        _CENSUS.clear()
    _CENSUS[root.uid] = (root.version, counts, total)
    return counts, total


def index_sizes() -> Dict[str, int]:
    """Live entry counts, for the CLI and the metrics registry."""
    return {
        "child_entries": len(_CHILD_INDEX),
        "probe_entries": len(_PROBE_INDEX),
        "census_entries": len(_CENSUS),
        "marking_set_entries": len(_MARKING_SETS),
    }
