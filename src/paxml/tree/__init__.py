"""AXML document model: unordered trees with data and function nodes.

This subpackage implements Section 2.1 of *Positive Active XML* (PODS 2004):
trees, markings, the compact concrete syntax, subsumption, equivalence,
reduction, least upper bounds, forests, and finite graph representations of
regular (possibly infinite) trees.
"""

from .document import CONTEXT, INPUT, RESERVED_NAMES, Document, Forest
from .index import (
    child_bucket,
    child_buckets,
    clear_index,
    index_sizes,
    marking_census,
    marking_set,
    probe_bucket,
)
from .node import FunName, Label, Marking, Node, Value, fun, label, val
from .parser import ParseError, parse_forest, parse_tree
from .reduction import (
    canonical_key,
    is_reduced,
    lub,
    reduce_forest,
    reduce_in_place,
    reduced_copy,
)
from .regular import RegularTreeGraph
from .serializer import to_canonical, to_compact, to_xml
from .xmlio import AXML_NS, XmlImportError, from_xml_string, to_xml_string
from .subsumption import (
    forest_equivalent,
    forest_subsumed,
    is_equivalent,
    is_subsumed,
    witness_mapping,
)

__all__ = [
    "AXML_NS",
    "CONTEXT",
    "Document",
    "Forest",
    "FunName",
    "INPUT",
    "Label",
    "Marking",
    "Node",
    "ParseError",
    "RESERVED_NAMES",
    "RegularTreeGraph",
    "Value",
    "canonical_key",
    "child_bucket",
    "child_buckets",
    "clear_index",
    "forest_equivalent",
    "forest_subsumed",
    "fun",
    "is_equivalent",
    "is_reduced",
    "index_sizes",
    "is_subsumed",
    "label",
    "lub",
    "marking_census",
    "marking_set",
    "probe_bucket",
    "parse_forest",
    "parse_tree",
    "reduce_forest",
    "reduce_in_place",
    "reduced_copy",
    "to_canonical",
    "to_compact",
    "to_xml",
    "to_xml_string",
    "from_xml_string",
    "XmlImportError",
    "val",
    "witness_mapping",
]
