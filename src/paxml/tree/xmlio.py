"""Interop with real XML.

The AXML system of record serialises function nodes as elements in a
dedicated namespace; this module mirrors that convention so documents can
round-trip through standard XML tooling:

* a data node ``label{…}`` ↔ ``<label>…</label>``;
* an atomic value ↔ element text (typed via an optional ``axml:type``
  attribute — ``int`` / ``float`` / ``bool`` / ``str``);
* a function node ``!GetRating{…}`` ↔
  ``<axml:call service="GetRating">…</axml:call>``.

The paper's model is *unordered*; XML is ordered.  Import simply forgets
the order (two XML documents differing only in sibling order import to
equivalent trees), and export emits children in insertion order.  Mixed
content is rejected — the model has no text-next-to-elements notion.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional, Union

from .node import FunName, Label, Node, Value

AXML_NS = "http://paxml.example.org/axml"
_CALL_TAG = f"{{{AXML_NS}}}call"
_VAL_TAG = f"{{{AXML_NS}}}val"
_TYPE_ATTR = f"{{{AXML_NS}}}type"


class XmlImportError(ValueError):
    """The XML document does not fit the AXML model."""


def _parse_value(text: str, type_name: Optional[str]) -> Value:
    if type_name in (None, "str"):
        return Value(text)
    if type_name == "int":
        return Value(int(text))
    if type_name == "float":
        return Value(float(text))
    if type_name == "bool":
        if text not in ("true", "false"):
            raise XmlImportError(f"bad boolean literal {text!r}")
        return Value(text == "true")
    raise XmlImportError(f"unknown axml:type {type_name!r}")


def _from_element(element: ET.Element) -> Node:
    if element.tag == _VAL_TAG:
        if len(element):
            raise XmlImportError("<axml:val> must be a leaf")
        return Node(_parse_value((element.text or "").strip(),
                                 element.get(_TYPE_ATTR)))
    if element.tag == _CALL_TAG:
        service = element.get("service")
        if not service:
            raise XmlImportError("<axml:call> without a service attribute")
        marking: Union[Label, FunName] = FunName(service)
    else:
        tag = element.tag
        if tag.startswith("{"):
            raise XmlImportError(
                f"unexpected namespaced element {tag!r}; only axml:call is "
                "recognised"
            )
        marking = Label(tag)
    children: List[Node] = []
    text = (element.text or "").strip()
    for child in element:
        children.append(_from_element(child))
        tail = (child.tail or "").strip()
        if tail:
            raise XmlImportError(
                f"mixed content under <{element.tag}>: the AXML model has "
                "no text between elements"
            )
    if text:
        if children:
            raise XmlImportError(
                f"mixed content under <{element.tag}>: text plus elements"
            )
        value = _parse_value(text, element.get(_TYPE_ATTR))
        if isinstance(marking, FunName):
            # A call whose single parameter is an atomic value.
            return Node(marking, [Node(value)])
        return Node(marking, [Node(value)])
    return Node(marking, children)


def from_xml_string(text: str) -> Node:
    """Import an XML document as an AXML tree (order is forgotten)."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlImportError(f"not well-formed XML: {exc}") from exc
    root = _from_element(element)
    return root


def _to_element(node: Node) -> ET.Element:
    marking = node.marking
    if isinstance(marking, Value):
        # Only reachable for value-rooted documents; value leaves below
        # elements are handled by the parent cases.
        element = ET.Element(_VAL_TAG)
        _set_value(element, marking)
        return element
    if isinstance(marking, FunName):
        element = ET.Element(_CALL_TAG, {"service": marking.name})
    else:
        element = ET.Element(marking.name)
    # A single value child becomes element text (the idiomatic XML form);
    # value leaves sharing a parent with element children travel as
    # explicit <axml:val> elements so the import is lossless.
    value_children = [c for c in node.children if c.is_value]
    other_children = [c for c in node.children if not c.is_value]
    if len(value_children) == 1 and not other_children:
        value = value_children[0].marking
        assert isinstance(value, Value)
        _set_value(element, value)
        return element
    for child in node.children:
        if child.is_value:
            wrapper = ET.SubElement(element, _VAL_TAG)
            value = child.marking
            assert isinstance(value, Value)
            _set_value(wrapper, value)
        else:
            element.append(_to_element(child))
    return element


def _set_value(element: ET.Element, value: Value) -> None:
    if isinstance(value.value, bool):
        element.text = "true" if value.value else "false"
        element.set(_TYPE_ATTR, "bool")
    elif isinstance(value.value, (int, float)):
        element.text = repr(value.value)
        element.set(_TYPE_ATTR, type(value.value).__name__)
    else:
        element.text = value.value


def to_xml_string(root: Node, indent: bool = True) -> str:
    """Export an AXML tree as namespaced XML.

    Round-trips through :func:`from_xml_string` up to equivalence for
    trees whose value leaves are only children (the common case; value
    leaves with element siblings travel as explicit ``<axml:val>``
    elements, so those round-trip exactly too).
    """
    if root.is_function:
        raise ValueError("document roots cannot be calls (Def. 2.1(ii))")
    ET.register_namespace("axml", AXML_NS)
    element = _to_element(root)
    if indent:
        ET.indent(element)
    return ET.tostring(element, encoding="unicode")
