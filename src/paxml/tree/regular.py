"""Finite graph representations of (possibly infinite) regular trees.

Lemma 3.2 of the paper: the semantics of a *simple* positive system is a
regular tree — a possibly infinite tree with finitely many distinct subtrees
up to isomorphism — and therefore admits a finite graph representation (the
classic rational-tree representation of Colmerauer).

A :class:`RegularTreeGraph` is a rooted directed graph whose vertices carry
markings; the tree it denotes is the unfolding from the root.  Cycles encode
infinite depth.  The module provides:

* construction from a finite tree and incremental construction (used by
  :mod:`paxml.analysis.graphrep`);
* ``unfold(depth)`` — materialise a depth-bounded prefix as a plain tree;
* subsumption and equivalence between the *denoted infinite trees*, computed
  as a greatest-fixpoint simulation on the graphs (the coinductive analogue
  of :func:`paxml.tree.subsumption.is_subsumed`);
* ``is_finite`` — acyclicity, i.e. whether the denoted tree is finite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .node import Marking, Node


class RegularTreeGraph:
    """A rooted vertex-labeled graph denoting a regular tree.

    Vertices are integer ids; ``marking[v]`` is the vertex marking and
    ``succ[v]`` the list of successor ids (the children of every occurrence
    of ``v`` in the unfolding).  Successor multiplicity is irrelevant for the
    unordered-tree semantics, so successors are stored as a set.
    """

    def __init__(self):
        self.marking: Dict[int, Marking] = {}
        self.succ: Dict[int, Set[int]] = {}
        self.root: Optional[int] = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_vertex(self, marking: Marking) -> int:
        vid = self._next_id
        self._next_id += 1
        self.marking[vid] = marking
        self.succ[vid] = set()
        return vid

    def add_edge(self, src: int, dst: int) -> None:
        if src not in self.marking or dst not in self.marking:
            raise KeyError("both endpoints must be existing vertices")
        self.succ[src].add(dst)

    def set_root(self, vid: int) -> None:
        if vid not in self.marking:
            raise KeyError(f"no vertex {vid}")
        self.root = vid

    @classmethod
    def from_tree(cls, root: Node) -> "RegularTreeGraph":
        """Represent a finite tree as a (tree-shaped) graph."""
        graph = cls()

        def build(node: Node) -> int:
            vid = graph.add_vertex(node.marking)
            for child in node.children:
                graph.add_edge(vid, build(child))
            return vid

        graph.set_root(build(root))
        return graph

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    def vertex_count(self) -> int:
        return len(self.marking)

    def reachable(self) -> Set[int]:
        """Vertices reachable from the root."""
        if self.root is None:
            return set()
        seen: Set[int] = set()
        stack = [self.root]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self.succ[v])
        return seen

    def is_finite(self) -> bool:
        """True iff the denoted tree is finite (no reachable cycle)."""
        if self.root is None:
            return True
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}
        stack: List[Tuple[int, Iterable[int]]] = [(self.root, iter(self.succ[self.root]))]
        color[self.root] = GRAY
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                c = color.get(w, WHITE)
                if c == GRAY:
                    return False
                if c == WHITE:
                    color[w] = GRAY
                    stack.append((w, iter(self.succ[w])))
                    advanced = True
                    break
            if not advanced:
                color[v] = BLACK
                stack.pop()
        return True

    # ------------------------------------------------------------------
    # unfolding
    # ------------------------------------------------------------------

    def unfold(self, depth: int) -> Node:
        """Materialise the unfolding from the root, truncated at ``depth`` edges.

        Successors deeper than the bound are simply omitted; by monotonicity
        the result is subsumed by the denoted tree, and for finite denoted
        trees a sufficiently large ``depth`` yields the exact tree.
        """
        if self.root is None:
            raise ValueError("graph has no root")

        def build(vid: int, remaining: int) -> Node:
            node = Node(self.marking[vid])
            if remaining > 0:
                for w in sorted(self.succ[vid]):
                    node.add_child(build(w, remaining - 1))
            return node

        return build(self.root, depth)

    def required_unfold_depth(self) -> int:
        """For acyclic graphs, the depth at which ``unfold`` is exact."""
        if not self.is_finite():
            raise ValueError("graph denotes an infinite tree")
        memo: Dict[int, int] = {}

        def height(vid: int) -> int:
            if vid in memo:
                return memo[vid]
            h = 0 if not self.succ[vid] else 1 + max(height(w) for w in self.succ[vid])
            memo[vid] = h
            return h

        return 0 if self.root is None else height(self.root)

    # ------------------------------------------------------------------
    # simulation between denoted (possibly infinite) trees
    # ------------------------------------------------------------------

    @staticmethod
    def simulates(g1: "RegularTreeGraph", g2: "RegularTreeGraph") -> bool:
        """Does ``g2``'s denoted tree subsume ``g1``'s?  (g1 ⊆ g2.)

        Greatest-fixpoint computation: start from all marking-compatible
        vertex pairs and repeatedly remove pairs ``(u, v)`` with a successor
        of ``u`` simulated by no successor of ``v``.  This is the coinductive
        extension of tree subsumption and coincides with it on finite trees.
        """
        if g1.root is None or g2.root is None:
            raise ValueError("both graphs need roots")
        r1, r2 = g1.reachable(), g2.reachable()
        sim: Set[Tuple[int, int]] = {
            (u, v)
            for u in r1
            for v in r2
            if g1.marking[u] == g2.marking[v]
        }
        changed = True
        while changed:
            changed = False
            for (u, v) in list(sim):
                ok = all(
                    any((u2, v2) in sim for v2 in g2.succ[v])
                    for u2 in g1.succ[u]
                )
                if not ok:
                    sim.discard((u, v))
                    changed = True
        return (g1.root, g2.root) in sim

    @staticmethod
    def equivalent(g1: "RegularTreeGraph", g2: "RegularTreeGraph") -> bool:
        """Mutual subsumption of the denoted trees."""
        return RegularTreeGraph.simulates(g1, g2) and RegularTreeGraph.simulates(g2, g1)

    def __repr__(self) -> str:
        return (
            f"RegularTreeGraph(vertices={self.vertex_count()}, "
            f"root={self.root}, finite={self.is_finite()})"
        )
