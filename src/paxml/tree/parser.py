"""Parser for the compact tree syntax used throughout the paper.

Grammar (whitespace-insensitive)::

    tree    := marking [ '{' tree ( ',' tree )* '}' ]
    marking := IDENT                    -- a label:            directory
             | '`' any text '`'        -- a label with spaces: `my label`
             | '!' IDENT               -- a function name:     !GetRating
             | STRING                  -- an atomic value:     "Body and Soul"
             | NUMBER                  -- an atomic value:     5, 3.14, -2
             | 'true' | 'false'        -- boolean atomic values

So the paper's running example is written::

    directory{cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
              !FreeMusicDB{type{"Jazz"}},
              !GetMusicMoz{!FindSingerOf{"Hotel California"}}}

The tokenizer is shared with the query parser (:mod:`paxml.query.parser`),
which adds variables and rule syntax on top of the same token stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .node import FunName, Label, Node, Value


class ParseError(ValueError):
    """Raised on malformed compact syntax, with position information."""

    def __init__(self, message: str, text: str, pos: int):
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        snippet = text[max(0, pos - 20):pos + 20].replace("\n", " ")
        super().__init__(f"{message} at line {line}, column {col} (near {snippet!r})")
        self.pos = pos


@dataclass(frozen=True)
class Token:
    kind: str  # one of the _TOKEN_KINDS below
    text: str
    pos: int


_PUNCT = {
    "{": "LBRACE",
    "}": "RBRACE",
    ",": "COMMA",
    "/": "SLASH",
    "$": "DOLLAR",
    "@": "AT",
    "#": "HASH",
    "*": "STAR",
    "(": "LPAREN",
    ")": "RPAREN",
    "|": "PIPE",
    ".": "DOT",
    "+": "PLUS",
    "?": "QMARK",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ";": "SEMI",
}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789-.")


def tokenize(text: str) -> List[Token]:
    """Turn compact/query syntax into a token list ending with EOF."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "%":  # comment to end of line
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if text.startswith(":-", i):
            tokens.append(Token("TURNSTILE", ":-", i))
            i += 2
            continue
        if text.startswith("!=", i):
            tokens.append(Token("NEQ", "!=", i))
            i += 2
            continue
        if ch == "!":
            tokens.append(Token("BANG", "!", i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if ch == '"':
            j = i + 1
            chars: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    chars.append(text[j + 1])
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal", text, i)
            tokens.append(Token("STRING", "".join(chars), i))
            i = j + 1
            continue
        if ch == "`":
            j = text.find("`", i + 1)
            if j < 0:
                raise ParseError("unterminated backquoted label", text, i)
            tokens.append(Token("BQUOTE", text[i + 1:j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch in _IDENT_START or ch.isalpha():
            j = i + 1
            while j < n and (text[j] in _IDENT_CONT or text[j].isalpha()):
                j += 1
            tokens.append(Token("IDENT", text[i:j], i))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", text, i)
    tokens.append(Token("EOF", "", n))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.kind} {token.text!r}",
                             self.text, token.pos)
        return self.next()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, self.text, token.pos)


def _parse_number(text: str) -> Value:
    if "." in text:
        return Value(float(text))
    return Value(int(text))


def parse_node(stream: TokenStream) -> Node:
    """Parse one tree from the stream (shared with the query parser)."""
    token = stream.peek()
    if token.kind == "BANG":
        stream.next()
        name = stream.expect("IDENT")
        node = Node(FunName(name.text))
    elif token.kind == "IDENT":
        stream.next()
        if token.text == "true":
            node = Node(Value(True))
        elif token.text == "false":
            node = Node(Value(False))
        else:
            node = Node(Label(token.text))
    elif token.kind == "BQUOTE":
        stream.next()
        node = Node(Label(token.text))
    elif token.kind == "STRING":
        stream.next()
        node = Node(Value(token.text))
    elif token.kind == "NUMBER":
        stream.next()
        node = Node(_parse_number(token.text))
    else:
        raise stream.error(f"expected a tree, found {token.kind} {token.text!r}")

    if stream.accept("LBRACE"):
        if node.is_value:
            raise stream.error("atomic values must be leaves (Def. 2.1)")
        if stream.peek().kind != "RBRACE":
            node.add_child(parse_node(stream))
            while stream.accept("COMMA"):
                node.add_child(parse_node(stream))
        stream.expect("RBRACE")
    return node


def parse_tree(text: str) -> Node:
    """Parse a single tree written in compact syntax.

    >>> parse_tree('a{b{"v"}, !f{1}}').size()
    5
    """
    stream = TokenStream(text)
    node = parse_node(stream)
    stream.expect("EOF")
    return node


def parse_forest(text: str) -> List[Node]:
    """Parse a comma-separated list of trees."""
    stream = TokenStream(text)
    if stream.peek().kind == "EOF":
        return []
    trees = [parse_node(stream)]
    while stream.accept("COMMA"):
        trees.append(parse_node(stream))
    stream.expect("EOF")
    return trees
