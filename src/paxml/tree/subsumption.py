"""Tree subsumption (Definition 2.2) and document equivalence.

A document ``(T1, λ1)`` is *subsumed* by ``(T2, λ2)`` when there is a mapping
``h`` from the nodes of T1 to those of T2 that maps root to root, preserves
the parent-child relation and preserves markings.  Note that ``h`` need not
be injective — subsumption is a *simulation*, not an embedding.

Proposition 2.1(3) states subsumption is decidable in PTIME; the algorithm
here is the bottom-up simulation computation sketched in the paper's proof:
``sim(n1, n2)`` holds iff the markings agree and every child of ``n1`` is
simulated by some child of ``n2``.  Memoised over node-identity pairs this
runs in ``O(|T1| · |T2| · max_fanout)``.

On top of the per-call memo sits a *persistent* process-level cache keyed on
``((uid, version), (uid, version))`` pairs.  Uids are never reused and a
node's version changes whenever its subtree's content does, so an entry can
never go stale: re-invoking subsumption over grown documents pays only for
the pairs whose subtrees actually changed.  (Reduction pruning replaces a
tree by an equivalent one without bumping versions; subsumption is invariant
under equivalence, so those entries stay correct too.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .. import perf
from .index import child_buckets, marking_set
from .node import Node
from .store import subtree_bits

# Persistent directional-simulation cache.  Bounded crudely: cleared when it
# overflows (correct at any size; the bound only caps memory).
_SIM_CACHE: Dict[Tuple[int, int, int, int], bool] = {}
_SIM_CACHE_MAX = 2_000_000


def clear_subsumption_cache() -> None:
    _SIM_CACHE.clear()


perf.register_cache(clear_subsumption_cache)


def _simulates(n1: Node, n2: Node, memo: Dict[Tuple[int, int], bool]) -> bool:
    key = (id(n1), id(n2))
    cached = memo.get(key)
    if cached is not None:
        return cached
    use_global = perf.flags.subsumption_cache
    if use_global:
        gkey = (n1.uid, n1.version, n2.uid, n2.version)
        cached = _SIM_CACHE.get(gkey)
        if cached is not None:
            perf.stats.subsumption_hits += 1
            memo[key] = cached
            return cached
        perf.stats.subsumption_misses += 1
    if n1.marking != n2.marking:
        memo[key] = False
        if use_global:
            _SIM_CACHE[gkey] = False
        return False
    # Claim the pair optimistically before recursing.  Trees are acyclic so
    # no (n1, n2) pair can be revisited along a single recursion path; the
    # pre-store only serves to make the memo safe under re-entrancy.  The
    # optimistic claim stays local to this call's memo — only settled
    # results are published to the persistent cache.
    memo[key] = True
    result = True
    if n1.children:
        if not n2.children:
            result = False
        else:
            # Marking-bucketed candidate pairing: only children of n2 with a
            # compatible marking are ever tried, and the buckets come from
            # the shared per-parent index (built once per (node, version)
            # across *all* subsumption calls, not once per call).
            by_marking = child_buckets(n2)
            # Early reject before any recursion: every child marking of n1
            # must have a non-empty bucket in n2.  (A *count* comparison
            # would be unsound here — simulations are non-injective, so many
            # n1 children may share one n2 child; presence is the strongest
            # sound multiset test.)
            for c1 in n1.children:
                if c1.marking not in by_marking:
                    perf.stats.subsumption_early_rejects += 1
                    result = False
                    break
            if result:
                for c1 in n1.children:
                    if not any(_simulates(c1, c2, memo)
                               for c2 in by_marking[c1.marking]):
                        result = False
                        break
    memo[key] = result
    if use_global:
        if len(_SIM_CACHE) >= _SIM_CACHE_MAX:
            _SIM_CACHE.clear()
        _SIM_CACHE[gkey] = result
    return result


def is_subsumed(t1: Node, t2: Node) -> bool:
    """True iff the tree rooted at ``t1`` is subsumed by the one at ``t2``.

    Entry fast path: a homomorphism maps every node of ``t1`` onto a
    marking-equal node of ``t2``, so the subtree marking set of ``t1``
    must be contained in that of ``t2``.  With the columnar store on the
    containment test is one int expression over packed bitsets
    (``b1 & ~b2`` is nonzero iff some marking of ``t1`` is missing from
    ``t2``); otherwise (gated with the index flag) it is the PR 4 cached
    frozenset subset test.  Either form rejects most all-pairs
    comparisons between value-distinct answer trees before any recursion.
    """
    if t1.marking != t2.marking:
        # Root markings must agree before any homomorphism exists; testing
        # this first keeps mismatched fresh trees (canonical_key's sibling
        # maximality filter produces many) from ever touching the store.
        return False
    if perf.flags.columnar_store:
        if subtree_bits(t1) & ~subtree_bits(t2):
            perf.stats.bitset_rejects += 1
            return False
    elif perf.flags.child_index and not marking_set(t1) <= marking_set(t2):
        perf.stats.subsumption_early_rejects += 1
        return False
    return _simulates(t1, t2, {})


def is_equivalent(t1: Node, t2: Node) -> bool:
    """Document equivalence: mutual subsumption (written ``≡`` in the paper).

    Both directions share one memo: entries are keyed on ordered pairs, so
    the directions never collide, and subtrees shared between ``t1`` and
    ``t2`` let the second pass reuse first-pass results.
    """
    memo: Dict[Tuple[int, int], bool] = {}
    return _simulates(t1, t2, memo) and _simulates(t2, t1, memo)


def witness_mapping(t1: Node, t2: Node) -> Dict[int, Node]:
    """An explicit subsumption homomorphism ``h`` as ``id(n1) -> n2``.

    Raises :class:`ValueError` when ``t1 ⊄ t2``.  The mapping picks, for each
    node of ``t1``, the first simulating child of the image of its parent —
    the "trimming" step of the paper's Proposition 2.1 proof.
    """
    memo: Dict[Tuple[int, int], bool] = {}
    if not _simulates(t1, t2, memo):
        raise ValueError("first tree is not subsumed by the second")
    mapping: Dict[int, Node] = {id(t1): t2}
    stack = [(t1, t2)]
    while stack:
        n1, n2 = stack.pop()
        for c1 in n1.children:
            image = next(
                c2 for c2 in n2.children
                if c1.marking == c2.marking and _simulates(c1, c2, memo)
            )
            mapping[id(c1)] = image
            stack.append((c1, image))
    return mapping


# ----------------------------------------------------------------------
# Forests.  A forest φ is subsumed by φ' when every tree of φ is subsumed
# by some tree of φ' (Section 2.1).
# ----------------------------------------------------------------------


def forest_subsumed(phi: Sequence[Node], phi2: Sequence[Node]) -> bool:
    """Forest subsumption, quadratic in the number of trees."""
    return all(any(is_subsumed(t, u) for u in phi2) for t in phi)


def forest_equivalent(phi: Sequence[Node], phi2: Sequence[Node]) -> bool:
    return forest_subsumed(phi, phi2) and forest_subsumed(phi2, phi)


def assert_subsumed(t1: Node, t2: Node) -> None:
    """Assertion helper with a readable diff for tests and debugging."""
    if not is_subsumed(t1, t2):
        from .serializer import to_canonical

        raise AssertionError(
            f"expected subsumption:\n  {to_canonical(t1)}\n  ⊄\n  {to_canonical(t2)}"
        )
