"""Columnar struct-of-arrays node store (the raw-speed backbone).

The PR 4 hot loop is per-node Python object traversal: candidate
filtering during subsumption and pattern matching spends most of its
time in attribute lookups (``node.marking``, ``node.children``),
``Marking.__eq__``/``__hash__`` calls and frozenset rebuilds.  This
module keeps a *columnar* mirror of every tree the engines touch — flat
parallel arrays keyed by a row index, with a ``uid → row`` map on the
side:

* ``_MIDS``     — interned marking ids (one small int per distinct
  marking, process-wide; the id doubles as a bit position);
* ``_VALUES``   — the atomic payload of value rows (``None`` elsewhere);
* ``_PARENTS``  — parent row (−1 for a tree root);
* ``_VERSIONS`` — the node's version stamp at (re)index time;
* ``_BITS``     — the *packed subtree marking bitset*: an int with bit
  ``1 << mid`` set for every marking occurring in the row's subtree;
* ``_SPANS`` / ``_POOL`` — CSR-style child lists: each row owns a
  contiguous ``(start, count)`` span of child rows in the shared pool,
  plus a small per-row overflow list for children appended by the graft
  path after the span was built;
* ``_NODES``    — the object-tree facade: the ``Node`` each row mirrors.

Consistency contract (same clock as every other PR 1+ cache): a row is
*valid* for a node iff ``_VERSIONS[row] == node.version``.  Structural
appends bump versions to the root (``Node.touch``), so a stale row can
never be read as current; equivalence-preserving pruning (reduction,
antichain eviction) does not bump versions, and the subtree *marking
set* is invariant under document equivalence (a pruned subtree's nodes
all map onto marking-equal survivors), so ``_BITS`` stays exact through
pruning.  Child lists are additionally validated by *count* — pruning
shrinks ``len(node.children)`` without a version bump, and the count
check is what forces a lazy span rebuild then.

Maintenance is incremental along the engines' single mutation choke
point: :func:`note_graft` (called by ``graft_trees`` under
``EvaluationKernel.apply_graft``) patches the grafted parent's row and
OR-merges the inserted bits up the ancestor chain in place, validated
against the captured pre-``touch`` versions.  Mutations outside the
graft path (e.g. a benchmark growing a document via ``add_child``) are
healed at read time: a version-mismatched row triggers a subtree
re-index that reuses every still-valid descendant row
(``store_rebuild_patches`` counts these).

Everything is gated by ``perf.flags.columnar_store``; with the flag off
no consumer reads the arrays and nothing is maintained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from .node import Marking, Node, Value

# ----------------------------------------------------------------------
# Marking interning.  Ids are monotone and process-wide; the id is the
# bit position in packed subtree bitsets, so clearing the intern table
# and the row arrays must happen together (see clear_store).
# ----------------------------------------------------------------------

_MARKING_IDS: Dict[Marking, int] = {}
_MARKINGS: List[Marking] = []


def intern_marking(marking: Marking) -> int:
    """The process-wide small-int id of ``marking`` (stable until clear)."""
    mid = _MARKING_IDS.get(marking)
    if mid is None:
        mid = len(_MARKINGS)
        _MARKING_IDS[marking] = mid
        _MARKINGS.append(marking)
    return mid


def marking_for_id(mid: int) -> Marking:
    return _MARKINGS[mid]


# ----------------------------------------------------------------------
# The columnar arrays.  Kept module-level (not on a class instance) so
# the hot readers below touch plain globals, not attribute chains.
# ----------------------------------------------------------------------

_UID_ROW: Dict[int, int] = {}
_UIDS: List[int] = []
_MIDS: List[int] = []
_VALUES: List[Optional[object]] = []
_PARENTS: List[int] = []
_VERSIONS: List[int] = []
_BITS: List[int] = []
_SPANS: List[Tuple[int, int]] = []      # (start, count) into _POOL; (-1, 0) = unbuilt
_POOL: List[int] = []
_OVERFLOW: Dict[int, List[int]] = {}
_NODES: List[Node] = []

_ROWS_MAX = 2_000_000
_UNBUILT: Tuple[int, int] = (-1, 0)


# Bumped on every wholesale clear; lets callers that cache interned ids
# (e.g. the evaluator's head-bits templates) notice their ids went stale.
_GENERATION = [0]


def generation() -> int:
    return _GENERATION[0]


def clear_store() -> None:
    """Drop every row *and* the intern table (ids are bit positions)."""
    _GENERATION[0] += 1
    _UID_ROW.clear()
    _UIDS.clear()
    _MIDS.clear()
    _VALUES.clear()
    _PARENTS.clear()
    _VERSIONS.clear()
    _BITS.clear()
    _SPANS.clear()
    _POOL.clear()
    _OVERFLOW.clear()
    _NODES.clear()
    _MARKING_IDS.clear()
    _MARKINGS.clear()


perf.register_cache(clear_store)


def store_sizes() -> Dict[str, int]:
    """Live array sizes, for the CLI and the metrics registry."""
    return {
        "rows": len(_UIDS),
        "interned_markings": len(_MARKINGS),
        "child_pool": len(_POOL),
        "overflow_rows": len(_OVERFLOW),
    }


# ----------------------------------------------------------------------
# Indexing.
# ----------------------------------------------------------------------


def _alloc(node: Node, parent_row: int) -> int:
    """Claim (or reclaim) the row for ``node``; version marked unbuilt."""
    row = _UID_ROW.get(node.uid)
    marking = node.marking
    mid = intern_marking(marking)
    if row is None:
        if len(_UIDS) >= _ROWS_MAX:
            clear_store()
            mid = intern_marking(marking)
            parent_row = -1  # the caller's rows are gone too
        row = len(_UIDS)
        _UID_ROW[node.uid] = row
        _UIDS.append(node.uid)
        _MIDS.append(mid)
        _VALUES.append(marking.value if type(marking) is Value else None)
        _PARENTS.append(parent_row)
        _VERSIONS.append(-1)
        _BITS.append(0)
        _SPANS.append(_UNBUILT)
        _NODES.append(node)
    else:
        _MIDS[row] = mid
        _VALUES[row] = marking.value if type(marking) is Value else None
        _PARENTS[row] = parent_row
        _VERSIONS[row] = -1
        _SPANS[row] = _UNBUILT
        _OVERFLOW.pop(row, None)
        _NODES[row] = node
    return row


def _build(root: Node, parent_row: int) -> int:
    """(Re)index the subtree at ``root``, reusing valid descendant rows.

    Iterative post-order: a node's bits and child span are written only
    after all its children hold valid rows; the version is written last
    so a half-built row can never validate.
    """
    stack: List[Tuple[Node, int, bool]] = [(root, parent_row, False)]
    while stack:
        node, prow, expanded = stack.pop()
        if not expanded:
            row = _UID_ROW.get(node.uid)
            if row is not None and _VERSIONS[row] == node.version \
                    and _NODES[row] is node:
                _PARENTS[row] = prow
                continue
            row = _alloc(node, prow)
            stack.append((node, row, True))
            for child in reversed(node.children):
                stack.append((child, row, False))
        else:
            row = prow  # the row claimed in the first visit
            bits = 1 << _MIDS[row]
            start = len(_POOL)
            for child in node.children:
                crow = _UID_ROW[child.uid]
                _POOL.append(crow)
                bits |= _BITS[crow]
            _SPANS[row] = (start, len(node.children))
            _BITS[row] = bits
            _VERSIONS[row] = node.version
    return _UID_ROW[root.uid]


def ensure_row(node: Node, parent_row: int = -1) -> int:
    """A valid row for ``node``, re-indexing its subtree if stale."""
    row = _UID_ROW.get(node.uid)
    if row is not None and _VERSIONS[row] == node.version \
            and _NODES[row] is node:
        if parent_row >= 0:
            # A caller that knows the parent retargets the offset: the row
            # may have been built context-free (e.g. an answer tree whose
            # bits were read before it was grafted anywhere).
            _PARENTS[row] = parent_row
        return row
    perf.stats.store_rebuild_patches += 1
    return _build(node, parent_row)


def warm(root: Node) -> int:
    """Index a whole tree (idempotent); returns the root row."""
    return ensure_row(root, -1)


# ----------------------------------------------------------------------
# Hot readers.
# ----------------------------------------------------------------------


def subtree_bits(node: Node) -> int:
    """The packed marking bitset of ``node``'s subtree.

    The fast path is two dict/list probes and a compare.  Identity of
    the mirrored ``Node`` is deliberately *not* checked here: distinct
    node objects sharing ``(uid, version)`` only arise from wire
    restores, which reproduce the exact structure — the bitset is
    structure-determined, so either twin's row answers for both (the
    same aliasing argument the persistent subsumption cache relies on).
    """
    row = _UID_ROW.get(node.uid)
    if row is not None and _VERSIONS[row] == node.version:
        return _BITS[row]
    perf.stats.store_rebuild_patches += 1
    return _BITS[_build(node, -1)]


def marking_id(node: Node) -> int:
    """The interned marking id of ``node`` (indexes the row if needed)."""
    return _MIDS[ensure_row(node)]


def children_rows(node: Node) -> List[int]:
    """The child rows of ``node``, validated by version *and* count.

    The count check catches equivalence-preserving pruning, which
    shrinks the child list without bumping the version (see the module
    docstring); a mismatch rebuilds this row's span in place.
    """
    row = ensure_row(node)
    start, count = _SPANS[row]
    over = _OVERFLOW.get(row)
    total = count + (len(over) if over else 0)
    if start < 0 or total != len(node.children):
        start = len(_POOL)
        for child in node.children:
            _POOL.append(ensure_row(child, row))
        _SPANS[row] = (start, len(node.children))
        _OVERFLOW.pop(row, None)
        perf.stats.store_rebuild_patches += 1
        return _POOL[start:start + len(node.children)]
    rows = _POOL[start:start + count]
    if over:
        rows.extend(over)
    return rows


def node_at(row: int) -> Node:
    """Materialize the ``Node`` facade behind ``row``."""
    perf.stats.facade_materializations += 1
    return _NODES[row]


def row_version(row: int) -> int:
    return _VERSIONS[row]


def row_parent(row: int) -> int:
    return _PARENTS[row]


def row_marking(row: int) -> Marking:
    return _MARKINGS[_MIDS[row]]


def row_value(row: int) -> Optional[object]:
    return _VALUES[row]


# ----------------------------------------------------------------------
# Graft-path maintenance.
# ----------------------------------------------------------------------


def note_graft(path: List[Node], inserted: Sequence[Node],
               pre_versions: Sequence[int]) -> None:
    """Patch the store after the graft path appended ``inserted`` under
    ``path[-1]`` and ``touch`` bumped versions along ``path``.

    ``path`` is the root-to-parent path *inclusive of the parent* that
    gained children (the graft primitive's ``parent_path``).

    ``pre_versions`` are the path nodes' versions captured *before* the
    touch: a row is patched in place only when it was valid against the
    pre-touch state (otherwise an earlier untracked mutation left it
    stale, and marking it current here would launder wrong bits — such
    rows heal at the next read instead).

    For the parent, the antichain insertion may also have *evicted*
    siblings the grafts subsume; evicted subtrees' markings are
    contained in the graft's (that is what subsumption means), so the
    OR-merged bits stay exact and only the child span needs rebuilding.
    """
    if not perf.flags.columnar_store:
        return
    parent = path[-1]
    prow = _UID_ROW.get(parent.uid)
    if prow is None or _NODES[prow] is not parent:
        # Bootstrap: the first graft into a document the store has never
        # seen warms the whole tree (post-touch, so the build is already
        # consistent with this graft); every later graft patches in place.
        ensure_row(path[0], -1)
        return
    patched_parent = False
    ins_bits = 0
    if _VERSIONS[prow] == pre_versions[-1] \
            and _NODES[prow] is parent:
        for tree in inserted:
            ins_bits |= _BITS[ensure_row(tree, prow)]
        start, count = _SPANS[prow]
        over = _OVERFLOW.get(prow)
        known = count + (len(over) if over else 0)
        if start >= 0 and known + len(inserted) == len(parent.children):
            # Pure append: extend the overflow list with the new rows.
            if over is None:
                over = _OVERFLOW[prow] = []
            for tree in inserted:
                over.append(_UID_ROW[tree.uid])
        else:
            # Eviction (or an unbuilt span): rebuild the span from the
            # live child list; survivors' rows are still valid.
            start = len(_POOL)
            for child in parent.children:
                _POOL.append(ensure_row(child, prow))
            _SPANS[prow] = (start, len(parent.children))
            _OVERFLOW.pop(prow, None)
        _BITS[prow] |= ins_bits
        _VERSIONS[prow] = parent.version
        patched_parent = True
    if not patched_parent:
        return  # ancestors would merge unverified bits; heal lazily
    for depth in range(len(path) - 2, -1, -1):
        node = path[depth]
        row = _UID_ROW.get(node.uid)
        if row is None or _VERSIONS[row] != pre_versions[depth] \
                or _NODES[row] is not node:
            continue
        _BITS[row] |= ins_bits
        _VERSIONS[row] = node.version
    perf.stats.store_graft_patches += 1


def note_prune(node: Node) -> None:
    """Drop ``node``'s child span after an eviction outside the graft
    parent (``_propagate_growth``): bits and version stay exact (pruning
    is equivalence-preserving), only the child list must rebuild."""
    if not perf.flags.columnar_store:
        return
    row = _UID_ROW.get(node.uid)
    if row is not None:
        _SPANS[row] = _UNBUILT
        _OVERFLOW.pop(row, None)
