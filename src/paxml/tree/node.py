"""Core data model: unordered labeled trees with data and function nodes.

This module implements Definition 2.1 of the paper.  An AXML document is an
unordered tree whose nodes carry a *marking*: a label (inner structure), an
atomic value (leaves only), or a function name (an embedded service call).
Children of a function node are the parameters of the call.

Markings are represented by three small immutable classes so that the label
``"a"``, the atomic value ``"a"`` and the function name ``"a"`` never
collide:

* :class:`Label` — an element name, e.g. ``Label("cd")``;
* :class:`Value` — an atomic value, e.g. ``Value("Body and Soul")`` or
  ``Value(42)``;
* :class:`FunName` — the name of a Web service, e.g. ``FunName("GetRating")``.

Nodes are deliberately *mutable*: the rewriting semantics of Section 2.2
appends service answers in place.  All equivalence-sensitive machinery
(subsumption, reduction, canonical hashing) lives in sibling modules and
never relies on node identity.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Tuple, Union

AtomicValue = Union[str, int, float, bool]

# ----------------------------------------------------------------------
# Version stamps.
#
# Every node draws a globally unique, monotonically increasing *uid* at
# construction and carries a *version* — the stamp of the latest structural
# change anywhere in its subtree.  Appends bump the version of every node on
# the path to the root; since documents only ever gain subtrees (monotone
# growth, Section 2.2), a subtree with ``version <= cutoff`` is guaranteed
# to contain no node created after ``cutoff`` — the invariant behind the
# persistent subsumption/canonical-key caches and delta-driven matching.
#
# Equivalence-preserving edits (reduction pruning a subsumed sibling) do
# *not* bump versions: every cached judgment (subsumption, canonical keys,
# query assignments) is invariant under document equivalence, so those
# caches stay sound without invalidation.
# ----------------------------------------------------------------------

_stamp_counter = itertools.count(1)
# Residue-class partitioning of the stamp space for sharded execution
# (PR 9): shard i of N configures ``offset=i, stride=N`` and then only
# ever mints stamps ≡ i (mod N), so nodes created concurrently in
# different worker processes can never collide when their wire forms
# meet in a replica.  A single-process run keeps the default (0, 1) —
# the dense clock every earlier PR assumed.
_stamp_stride = 1
_stamp_offset = 0


def next_stamp() -> int:
    """Draw a fresh global stamp (uids and versions share one clock)."""
    return next(_stamp_counter)


def current_stamp() -> int:
    """The most recently issued stamp (a peek that burns one stamp).

    Every node existing now has ``uid <= current_stamp()`` and
    ``version <= current_stamp()``; anything created or grown later
    compares strictly greater.
    """
    return next(_stamp_counter)


def _aligned_start(start: int) -> int:
    """The smallest stamp ``>= start`` in this process's residue class."""
    return start + (_stamp_offset - start) % _stamp_stride


def configure_stamp_clock(offset: int = 0, stride: int = 1) -> int:
    """Restrict future stamps to the residue class ``offset (mod stride)``.

    Called once during shard-worker bootstrap, before any node of the
    run is built.  The clock continues from its current position (never
    backwards), aligned up to the class.  Returns the next stamp that
    will be issued.
    """
    global _stamp_counter, _stamp_stride, _stamp_offset
    if stride < 1 or not 0 <= offset < stride:
        raise ValueError(f"need 0 <= offset < stride, got ({offset}, {stride})")
    current = next(_stamp_counter)
    _stamp_stride, _stamp_offset = stride, offset
    start = _aligned_start(current + 1)
    _stamp_counter = itertools.count(start, stride)
    return start


def stamp_clock_config() -> Tuple[int, int]:
    """The active ``(offset, stride)`` residue class."""
    return _stamp_offset, _stamp_stride


def advance_stamp_clock(minimum: int) -> int:
    """Ensure every future stamp is strictly greater than ``minimum``.

    Checkpoint resume restores nodes with their original uids and
    versions; advancing the clock past the bundle's high-water mark keeps
    the global invariant that stamps are unique and monotone (a freshly
    created node must never collide with a restored one).  A sharded
    worker advancing past a replicated record's stamps stays inside its
    own residue class.  Returns the next stamp that will be issued.
    """
    global _stamp_counter
    current = next(_stamp_counter)
    start = _aligned_start(max(current, minimum) + 1)
    _stamp_counter = itertools.count(start, _stamp_stride)
    return start


class Label:
    """A data-node marking drawn from the label domain L."""

    __slots__ = ("name", "_h")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"label must be a non-empty string, got {name!r}")
        self.name = name
        self._h = hash(("L", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Label) and other.name == self.name

    def __hash__(self) -> int:
        return self._h

    def __repr__(self) -> str:
        return f"Label({self.name!r})"

    def __str__(self) -> str:
        return self.name


class FunName:
    """A function-node marking drawn from the function-name domain F.

    In the real AXML system a function name stands for a service URL plus an
    operation name; here it is an opaque identifier resolved by the enclosing
    :class:`~paxml.system.system.AXMLSystem`.
    """

    __slots__ = ("name", "_h")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"function name must be a non-empty string, got {name!r}")
        self.name = name
        self._h = hash(("F", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunName) and other.name == self.name

    def __hash__(self) -> int:
        return self._h

    def __repr__(self) -> str:
        return f"FunName({self.name!r})"

    def __str__(self) -> str:
        return "!" + self.name


class Value:
    """A leaf marking drawn from the atomic-value domain V."""

    __slots__ = ("value", "_h")

    def __init__(self, value: AtomicValue):
        if not isinstance(value, (str, int, float, bool)):
            raise ValueError(f"atomic value must be str/int/float/bool, got {value!r}")
        self.value = value
        self._h = hash(("V", type(value).__name__, value))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Value)
            and type(other.value) is type(self.value)
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return self._h

    def __repr__(self) -> str:
        return f"Value({self.value!r})"

    def __str__(self) -> str:
        return f'"{self.value}"'


Marking = Union[Label, FunName, Value]


def _coerce_marking(marking: Union[Marking, str, int, float, bool]) -> Marking:
    """Allow bare strings as labels and bare numbers as values in builders."""
    if isinstance(marking, (Label, FunName, Value)):
        return marking
    if isinstance(marking, str):
        return Label(marking)
    if isinstance(marking, (int, float, bool)):
        return Value(marking)
    raise TypeError(f"cannot interpret {marking!r} as a marking")


class Node:
    """A node of an AXML tree: a marking plus an unordered list of children.

    The children list is kept in insertion order purely for readable
    serialisation; no semantic operation depends on the order.

    Beyond the paper's ``(marking, children)`` data each node carries the
    incremental-engine bookkeeping: a ``parent`` pointer (makes locating a
    live call an O(depth) walk), a construction ``uid`` and a subtree
    ``version`` stamp (see the module comment on version stamps), plus a
    cached canonical key slot managed by :mod:`paxml.tree.reduction`.
    """

    __slots__ = ("marking", "children", "parent", "uid", "version",
                 "_ckey", "_ckey_version")

    def __init__(self, marking: Union[Marking, str, int, float, bool],
                 children: Iterable["Node"] = ()):
        self.marking: Marking = _coerce_marking(marking)
        self.children: List[Node] = list(children)
        if self.children and isinstance(self.marking, Value):
            raise ValueError("only leaf nodes may carry atomic values (Def. 2.1)")
        for child in self.children:
            if not isinstance(child, Node):
                raise TypeError(f"child {child!r} is not a Node")
            child.parent = self
        self.parent: Optional[Node] = None
        # Children are constructed before their parent, so drawing the stamp
        # last keeps the invariant version(parent) >= version(child).
        self.uid = self.version = next_stamp()
        self._ckey: Optional[object] = None
        self._ckey_version = -1

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------

    @property
    def is_function(self) -> bool:
        """True iff this node is a service call (marking in F)."""
        return isinstance(self.marking, FunName)

    @property
    def is_value(self) -> bool:
        """True iff this node carries an atomic value (marking in V)."""
        return isinstance(self.marking, Value)

    @property
    def is_label(self) -> bool:
        """True iff this node is a plain data node (marking in L)."""
        return isinstance(self.marking, Label)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_with_parents(self) -> Iterator[Tuple["Node", Optional["Node"]]]:
        """Yield ``(node, parent)`` pairs, pre-order; the root's parent is None."""
        stack: List[Tuple[Node, Optional[Node]]] = [(self, None)]
        while stack:
            node, parent = stack.pop()
            yield node, parent
            for child in reversed(node.children):
                stack.append((child, node))

    def function_nodes(self) -> List["Node"]:
        """All service-call nodes in this subtree, pre-order."""
        return [n for n in self.iter_nodes() if n.is_function]

    def size(self) -> int:
        """Number of nodes in the subtree."""
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        best = 0
        stack = [(self, 0)]
        while stack:
            node, d = stack.pop()
            if d > best:
                best = d
            for child in node.children:
                stack.append((child, d + 1))
        return best

    # ------------------------------------------------------------------
    # structural edits (used by invocation semantics and reduction)
    # ------------------------------------------------------------------

    def add_child(self, child: "Node") -> None:
        if self.is_value:
            raise ValueError("value nodes must remain leaves (Def. 2.1)")
        if not isinstance(child, Node):
            raise TypeError(f"child {child!r} is not a Node")
        self.children.append(child)
        child.parent = self
        self.touch()

    def remove_child(self, child: "Node") -> None:
        """Remove a child by identity."""
        for i, existing in enumerate(self.children):
            if existing is child:
                del self.children[i]
                child.parent = None
                self.touch()
                return
        raise ValueError("node is not a child (by identity)")

    def touch(self) -> None:
        """Stamp a structural change: bump versions from here to the root.

        Must be called after any content-changing edit of this subtree
        (appending or removing a subtree).  Equivalence-preserving pruning
        (reduction) deliberately does not call it — see the module comment.
        """
        stamp = next_stamp()
        node: Optional[Node] = self
        while node is not None:
            node.version = stamp
            node = node.parent

    def copy(self) -> "Node":
        """Deep, structure-sharing-free copy of the subtree.

        A current cached canonical key travels with the copy (the copy is
        structurally identical, hence has the same key).
        """
        duplicate = Node(self.marking, [child.copy() for child in self.children])
        if self._ckey is not None and self._ckey_version == self.version:
            duplicate._ckey = self._ckey
            duplicate._ckey_version = duplicate.version
        return duplicate

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        from .serializer import to_compact  # local import: avoid cycle

        return f"Node<{to_compact(self, max_nodes=40)}>"


# ----------------------------------------------------------------------
# Builders.  These are the main construction API:
#
#     label("directory", label("cd", label("title", val("L'amour"))))
#     fun("GetRating", val("Body and Soul"))
# ----------------------------------------------------------------------


def label(name: str, *children: Node) -> Node:
    """Build a data node with a label marking."""
    return Node(Label(name), children)


def val(value: AtomicValue) -> Node:
    """Build a leaf node carrying an atomic value."""
    return Node(Value(value))


def fun(name: str, *params: Node) -> Node:
    """Build a function node (a service call) with the given parameters."""
    return Node(FunName(name), params)


def validate_document_root(root: Node) -> None:
    """Enforce Definition 2.1(ii): the root carries a label or atomic value."""
    if root.is_function:
        raise ValueError("a document root must be a label or value node (Def. 2.1)")
