"""Documents and forests: named trees plus the operations the paper lifts
from trees to sets of trees (Section 2.1).

A :class:`Document` is a named tree; the name is what systems (Def. 2.3) and
query bodies (``d/p``) refer to.  A :class:`Forest` is the result type of
services and queries: a set of documents, compared by forest subsumption and
normalised by forest reduction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .node import Node, validate_document_root
from .parser import parse_forest, parse_tree
from .reduction import canonical_key, is_reduced, reduce_forest, reduce_in_place
from .serializer import to_canonical, to_compact
from .subsumption import forest_equivalent, forest_subsumed, is_equivalent, is_subsumed

# Reserved document names (Section 2.2): services may read the call's
# parameters under the name ``input`` and the subtree rooted at the call's
# parent under the name ``context``.
INPUT = "input"
CONTEXT = "context"
RESERVED_NAMES = frozenset({INPUT, CONTEXT})


class Document:
    """A named AXML tree (an element of the mapping ``I`` over ``D``)."""

    def __init__(self, name: str, root: Node):
        if not isinstance(name, str) or not name:
            raise ValueError(f"document name must be a non-empty string, got {name!r}")
        if not isinstance(root, Node):
            raise TypeError("document root must be a Node")
        validate_document_root(root)
        self.name = name
        self.root = root

    @classmethod
    def parse(cls, name: str, text: str) -> "Document":
        """Build a document from compact syntax, e.g. ``Document.parse('d', 'a{b}')``."""
        return cls(name, parse_tree(text))

    def copy(self) -> "Document":
        return Document(self.name, self.root.copy())

    def reduce(self) -> bool:
        """Reduce the document in place; True iff it changed."""
        return reduce_in_place(self.root)

    def is_reduced(self) -> bool:
        return is_reduced(self.root)

    def function_nodes(self) -> List[Node]:
        return self.root.function_nodes()

    def size(self) -> int:
        return self.root.size()

    def depth(self) -> int:
        return self.root.depth()

    def canonical_key(self):
        return canonical_key(self.root)

    def subsumed_by(self, other: "Document") -> bool:
        return is_subsumed(self.root, other.root)

    def equivalent_to(self, other: "Document") -> bool:
        return is_equivalent(self.root, other.root)

    def __repr__(self) -> str:
        return f"Document({self.name!r}, {to_compact(self.root, max_nodes=30)})"

    def __str__(self) -> str:
        return f"{self.name}/{to_compact(self.root)}"


class Forest:
    """An unordered collection of trees — the result type of services.

    Forests are value-like: comparison is by forest subsumption and the
    normal form is the reduced forest (each tree reduced, subsumed trees
    dropped).
    """

    def __init__(self, trees: Iterable[Node] = ()):
        self.trees: List[Node] = list(trees)
        for tree in self.trees:
            if not isinstance(tree, Node):
                raise TypeError(f"forest member {tree!r} is not a Node")

    @classmethod
    def parse(cls, text: str) -> "Forest":
        """Parse a comma-separated list of trees, e.g. ``Forest.parse('a{b}, c')``."""
        return cls(parse_forest(text))

    @classmethod
    def empty(cls) -> "Forest":
        return cls(())

    def copy(self) -> "Forest":
        return Forest(tree.copy() for tree in self.trees)

    def reduced(self) -> "Forest":
        """The reduced forest (fresh trees; the input is untouched)."""
        return Forest(reduce_forest(self.trees))

    def subsumed_by(self, other: "Forest") -> bool:
        return forest_subsumed(self.trees, other.trees)

    def equivalent_to(self, other: "Forest") -> bool:
        return forest_equivalent(self.trees, other.trees)

    def canonical_keys(self) -> frozenset:
        """Set of canonical keys of the reduced forest — an equality witness."""
        return frozenset(canonical_key(tree) for tree in self.reduced().trees)

    def union(self, other: "Forest") -> "Forest":
        return Forest(reduce_forest(list(self.trees) + list(other.trees)))

    def __iter__(self) -> Iterator[Node]:
        return iter(self.trees)

    def __len__(self) -> int:
        return len(self.trees)

    def __bool__(self) -> bool:
        return bool(self.trees)

    def __repr__(self) -> str:
        inner = ", ".join(to_compact(t, max_nodes=15) for t in self.trees[:6])
        suffix = ", …" if len(self.trees) > 6 else ""
        return f"Forest[{inner}{suffix}]"

    def pretty(self, sort: bool = True) -> str:
        parts = [to_canonical(t) if sort else to_compact(t) for t in self.trees]
        if sort:
            parts.sort()
        return "\n".join(parts)
