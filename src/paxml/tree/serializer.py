"""Serialisation of AXML trees.

Two textual forms are supported:

* the paper's *compact syntax* — ``directory{cd{title{"L'amour"}}}`` with
  function names written ``!GetRating{...}`` (the paper uses boldface, which
  plain text cannot carry);
* an XML-ish rendering for human inspection, where function nodes become
  ``<axml:call service="...">`` elements.

``to_compact`` round-trips with :func:`paxml.tree.parser.parse_tree`.
"""

from __future__ import annotations

from typing import List, Optional

from .node import FunName, Label, Node, Value

_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.")


def _escape_string(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _marking_to_compact(node: Node) -> str:
    marking = node.marking
    if isinstance(marking, Label):
        if set(marking.name) <= _IDENT_SAFE:
            return marking.name
        return f"`{marking.name}`"
    if isinstance(marking, FunName):
        return "!" + marking.name
    if isinstance(marking, Value):
        if isinstance(marking.value, bool):
            return "true" if marking.value else "false"
        if isinstance(marking.value, (int, float)):
            return repr(marking.value)
        return f'"{_escape_string(marking.value)}"'
    raise TypeError(f"unknown marking {marking!r}")


def to_compact(node: Node, sort: bool = False, max_nodes: Optional[int] = None) -> str:
    """Render a tree in the paper's compact syntax.

    With ``sort=True`` children are ordered by their rendered text, which
    yields a deterministic form for *reduced* trees (handy in tests and
    error messages; it is not a canonical form for non-reduced trees).
    ``max_nodes`` truncates the output for display purposes.
    """
    budget = [max_nodes if max_nodes is not None else -1]

    def render(n: Node) -> str:
        if budget[0] == 0:
            return "…"
        if budget[0] > 0:
            budget[0] -= 1
        head = _marking_to_compact(n)
        if not n.children:
            return head
        parts = [render(c) for c in n.children]
        if sort:
            parts.sort()
        return head + "{" + ", ".join(parts) + "}"

    return render(node)


def to_canonical(node: Node) -> str:
    """Deterministic rendering: children sorted recursively.

    For reduced trees this is a canonical form — two reduced trees are
    equivalent iff their canonical renderings coincide.
    """
    return to_compact(node, sort=True)


def to_wire(node: Node) -> dict:
    """Serialise a subtree to a JSON-safe dict with stable uids.

    The wire form — ``{"m": marking, "u": uid, "v": version, "c": [...]}``
    — is what checkpoint bundles and graft-log records carry: unlike the
    compact text (which re-parsing would re-stamp with fresh uids), a
    wire tree restored by :func:`from_wire` keeps the node identities a
    checkpointed scheduler frontier and graft log refer to.  Markings
    encode as ``{"l": name}`` (label), ``{"f": name}`` (function) or
    ``{"v": value}`` (atomic value; JSON preserves the str/int/float/bool
    distinction).
    """
    marking = node.marking
    if isinstance(marking, Label):
        m: dict = {"l": marking.name}
    elif isinstance(marking, FunName):
        m = {"f": marking.name}
    else:
        assert isinstance(marking, Value)
        m = {"v": marking.value}
    wire: dict = {"m": m, "u": node.uid, "v": node.version}
    if node.children:
        wire["c"] = [to_wire(child) for child in node.children]
    return wire


def from_wire(wire: dict) -> Node:
    """Rebuild a subtree from :func:`to_wire` output, uids included.

    The caller is responsible for advancing the global stamp clock past
    the bundle's high-water mark (``advance_stamp_clock``) so restored
    and fresh nodes never share a stamp.
    """
    m = wire["m"]
    if "l" in m:
        marking: object = Label(m["l"])
    elif "f" in m:
        marking = FunName(m["f"])
    else:
        marking = Value(m["v"])
    node = Node(marking, [from_wire(child) for child in wire.get("c", ())])
    node.uid = wire["u"]
    node.version = wire["v"]
    return node


def wire_max_stamp(wire: dict) -> int:
    """The largest uid/version anywhere in a wire tree."""
    best = max(wire["u"], wire["v"])
    for child in wire.get("c", ()):
        best = max(best, wire_max_stamp(child))
    return best


def to_xml(node: Node, indent: int = 2) -> str:
    """Render a tree as indented XML-ish text for human inspection."""
    lines: List[str] = []

    def emit(n: Node, depth: int) -> None:
        pad = " " * (depth * indent)
        marking = n.marking
        if isinstance(marking, Value):
            lines.append(f"{pad}{marking.value}")
            return
        if isinstance(marking, Label):
            tag_open = f"<{marking.name}>"
            tag_close = f"</{marking.name}>"
        else:
            assert isinstance(marking, FunName)
            tag_open = f'<axml:call service="{marking.name}">'
            tag_close = "</axml:call>"
        if not n.children:
            lines.append(pad + tag_open + tag_close)
            return
        lines.append(pad + tag_open)
        for child in n.children:
            emit(child, depth + 1)
        lines.append(pad + tag_close)

    emit(node, 0)
    return "\n".join(lines)
