"""Reduced documents, canonical keys, and least upper bounds.

Section 2.1 of the paper: a document is *reduced* when no sibling subtree is
subsumed by another; every document has a unique reduced version (up to node
isomorphism), computable in PTIME (Proposition 2.1(2,4)).  Reduced documents
act as the canonical representatives of equivalence classes throughout the
library.

Two entry points matter downstream:

* :func:`reduce_in_place` — prunes subsumed siblings *without* rebuilding
  surviving nodes, so service-call bookkeeping (which tracks node identity)
  survives a reduction pass;
* :func:`canonical_key` — a hashable, collision-free structural key of the
  *reduced version* of a tree; equivalent trees get equal keys.  This is the
  workhorse for memoisation in the termination and lazy-evaluation analyses.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .. import perf
from . import store as _store
from .node import Node
from .store import subtree_bits
from .subsumption import is_subsumed


def antichain_insert(keep: List[Node], candidate: Node) -> bool:
    """Insert ``candidate`` into the antichain ``keep``; True iff inserted.

    ``keep`` is maintained as a set of pairwise-incomparable trees.  The
    candidate is dropped when subsumed by (or equivalent to) a kept tree;
    otherwise every kept tree the candidate subsumes is evicted.  Keeping the
    earlier element on equivalence makes the operation deterministic (any
    representative is correct: reduced versions are unique up to
    isomorphism).

    With the columnar store on, both directions are filtered in a single
    pass over ``keep`` by packed-bitset containment before any simulation
    runs: ``candidate ⊑ other`` needs ``bits(candidate) ⊆ bits(other)``
    and vice versa, and one union computes both subset tests.  Merging the
    drop check and the eviction sweep into one pass is safe because
    ``keep`` is an antichain: if the candidate is subsumed by some kept
    tree, no *other* kept tree is strictly subsumed by the candidate
    (it would be subsumed by that kept tree too), so an early ``False``
    return can never have missed a required eviction — survivors are
    simply discarded.
    """
    if perf.flags.columnar_store and keep:
        cbits = subtree_bits(candidate)
        # The loop below is the hottest code in the library (hundreds of
        # thousands of pairs per benchmark scenario): the store row lookup
        # is inlined — one dict probe, one list index, one compare — with
        # the function call reserved for the rebuild path.
        row_of = _store._UID_ROW.get
        versions = _store._VERSIONS
        all_bits = _store._BITS
        survivors: List[Node] = []
        evicted = False
        rejects = 0
        for other in keep:
            row = row_of(other.uid)
            if row is not None and versions[row] == other.version:
                obits = all_bits[row]
            else:
                obits = subtree_bits(other)
            union = cbits | obits
            if union == obits:  # bits(candidate) ⊆ bits(other)
                if is_subsumed(candidate, other):
                    perf.stats.bitset_rejects += rejects
                    return False
            else:
                rejects += 1
            if union == cbits:  # bits(other) ⊆ bits(candidate)
                if is_subsumed(other, candidate):
                    evicted = True
                    continue
            else:
                rejects += 1
            survivors.append(other)
        perf.stats.bitset_rejects += rejects
        if evicted:
            keep[:] = survivors
        keep.append(candidate)
        return True
    if any(is_subsumed(candidate, other) for other in keep):
        return False
    keep[:] = [other for other in keep if not is_subsumed(other, candidate)]
    keep.append(candidate)
    return True


def _prune_children(node: Node) -> bool:
    """Remove children subsumed by a sibling; True iff anything changed."""
    children = node.children
    if len(children) < 2:
        return False
    keep: List[Node] = []
    for child in children:
        antichain_insert(keep, child)
    if len(keep) != len(children) or any(a is not b for a, b in zip(keep, children)):
        node.children = keep
        return True
    return False


def reduce_in_place(root: Node) -> bool:
    """Reduce the tree rooted at ``root``; True iff the tree changed.

    Children are reduced bottom-up, then subsumed siblings are pruned at
    every node.  Surviving ``Node`` objects keep their identity, which is
    what lets the rewriting engine track service-call nodes across
    reductions.
    """
    changed = False
    # Post-order without recursion (documents can be deep).
    order: List[Node] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    for node in reversed(order):
        if _prune_children(node):
            changed = True
    return changed


def reduced_copy(root: Node) -> Node:
    """A freshly-built reduced version of the tree (the input is untouched)."""
    copy = root.copy()
    reduce_in_place(copy)
    return copy


def is_reduced(root: Node) -> bool:
    """True iff no sibling subtree is subsumed by another anywhere.

    Reuses :func:`antichain_insert` so each unordered sibling pair is
    examined once with early exit, instead of the naive ``i != j`` double
    loop over ordered pairs: a dropped candidate is subsumed by a kept
    sibling, an eviction means a kept sibling is subsumed by the candidate —
    either way the node is not reduced.
    """
    for node in root.iter_nodes():
        children = node.children
        if len(children) < 2:
            continue
        keep: List[Node] = []
        for child in children:
            before = len(keep)
            if not antichain_insert(keep, child) or len(keep) != before + 1:
                return False
    return True


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------

CanonicalKey = Tuple[object, frozenset]


def _key_of_reduced(node: Node, memo: Dict[int, CanonicalKey]) -> CanonicalKey:
    cached = memo.get(id(node))
    if cached is not None:
        return cached
    key: CanonicalKey = (
        node.marking,
        frozenset(_key_of_reduced(child, memo) for child in node.children),
    )
    memo[id(node)] = key
    return key


def canonical_key(root: Node) -> CanonicalKey:
    """Hashable structural key of the reduced version of ``root``.

    Equivalent trees map to equal keys and non-equivalent trees to distinct
    keys: a reduced tree's children are pairwise non-equivalent, so the
    ``frozenset`` of child keys loses no information, and equivalence of
    reduced trees is isomorphism (Proposition 2.1(2)).

    The key is computed *without* building a reduced copy: child keys are
    combined after dropping strictly-subsumed children (equivalent children
    collapse in the frozenset since, inductively, they share a key).  Each
    node memoises its key against its version stamp, so on a grown document
    only the nodes on changed paths recompute — unchanged subtrees answer
    from cache.
    """
    if perf.flags.canonical_key_cache:
        cached = root._ckey
        if cached is not None and root._ckey_version == root.version:
            perf.stats.canonical_key_hits += 1
            return cached  # type: ignore[return-value]
        perf.stats.canonical_key_misses += 1
    children = root.children
    if not children:
        key: CanonicalKey = (root.marking, frozenset())
    elif len(children) == 1:
        key = (root.marking, frozenset((canonical_key(children[0]),)))
    else:
        # Group equivalent children via their keys, then drop every
        # representative strictly subsumed by another (distinct keys mean
        # non-equivalent, so one direction of subsumption suffices).
        reps: Dict[CanonicalKey, Node] = {}
        for child in children:
            reps.setdefault(canonical_key(child), child)
        if len(reps) == 1:
            key = (root.marking, frozenset(reps))
        else:
            nodes = list(reps.items())
            maximal = [
                child_key for child_key, child in nodes
                if not any(other is not child and is_subsumed(child, other)
                           for _k, other in nodes)
            ]
            key = (root.marking, frozenset(maximal))
    if perf.flags.canonical_key_cache:
        root._ckey = key
        root._ckey_version = root.version
    return key


def canonical_key_of_reduced(root: Node) -> CanonicalKey:
    """Like :func:`canonical_key` but assumes ``root`` is already reduced."""
    return _key_of_reduced(root, {})


# ----------------------------------------------------------------------
# Least upper bounds (the ∪ of Section 2.1) and forest reduction
# ----------------------------------------------------------------------


def lub(t1: Node, t2: Node) -> Node:
    """Least upper bound of two trees with the same root marking.

    Built exactly as in the paper: a root carrying the shared marking whose
    children are all children subtrees of both roots, then reduced.  Raises
    :class:`ValueError` on incomparable roots (distinct markings).
    """
    if t1.marking != t2.marking:
        raise ValueError(
            f"trees with distinct root markings ({t1.marking!r} vs {t2.marking!r}) "
            "are incomparable and have no least upper bound"
        )
    merged = Node(t1.marking, [c.copy() for c in t1.children]
                  + [c.copy() for c in t2.children])
    reduce_in_place(merged)
    return merged


def truncated_copy(root: Node, depth: int) -> Node:
    """Copy ``root`` down to ``depth`` edges, dropping deeper structure.

    The result is subsumed by the original tree; it captures everything a
    query pattern of depth ``depth`` can observe, which is what the
    termination analysis keys its configurations on.
    """

    def build(node: Node, remaining: int) -> Node:
        if remaining <= 0 or not node.children:
            return Node(node.marking)
        return Node(node.marking, [build(c, remaining - 1) for c in node.children])

    return build(root, depth)


def truncated_key(root: Node, depth: int) -> CanonicalKey:
    """Canonical key of the depth-``depth`` truncation of ``root``."""
    copy = truncated_copy(root, depth)
    reduce_in_place(copy)
    return _key_of_reduced(copy, {})


def reduce_forest(trees: Sequence[Node]) -> List[Node]:
    """Reduce a forest: reduce each tree, drop trees subsumed by another."""
    keep: List[Node] = []
    for tree in trees:
        antichain_insert(keep, reduced_copy(tree))
    return keep
