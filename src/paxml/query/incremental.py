"""Per-call-site incremental snapshot evaluation (the engine's fast path).

Materialization invokes the same call sites over and over while the
documents they read grow monotonically.  The seed engine re-ran snapshot
evaluation from scratch on every invocation; this module caches, per call
site, the assignments found at document versions ``V`` and on re-invocation
joins only the *delta* — embeddings that touch data newer than ``V``
(:func:`paxml.query.matching.enumerate_assignments_delta`).  Monotonicity
(Proposition 3.1) guarantees cached assignments never have to be retracted:
documents only gain subtrees, and reduction replaces trees by equivalent
ones only.

The evaluator returns *delta forests*: answers not previously returned for
the site.  Grafting is idempotent up to subsumption (an already-delivered
answer is dropped by the antichain insertion), so delivering each answer
once yields byte-identical reduced documents while cutting the per-step
graft cost from O(all answers ever) to O(new answers).
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, List, Mapping, Optional, Set

from .. import perf
from ..obs import bus as obs_bus
from ..obs.provenance import stage_answer
from ..tree.document import Forest
from ..tree.node import Node, current_stamp
from ..tree.reduction import antichain_insert, canonical_key
from .matching import (
    _binding_key,
    enumerate_assignments,
    enumerate_assignments_delta,
    valuation_summary,
    witness_uids,
)
from .pattern import instantiate
from .rule import PositiveQuery


class _SiteState:
    """What one call site remembers between invocations of one query."""

    __slots__ = ("cutoff", "seen", "results", "result_keys", "doc_uids")

    def __init__(self, cutoff: int, seen: set, results: List[Node],
                 result_keys: set, doc_uids: Dict[str, int]):
        self.cutoff = cutoff          # stamp the cached assignments cover
        self.seen = seen              # binding keys of every assignment found
        self.results = results        # reduced antichain of all results so far
        self.result_keys = result_keys  # canonical keys of every answer seen
        self.doc_uids = doc_uids      # environment identity check


# Live evaluators, tracked weakly so perf.clear_caches() can reach their
# site caches without keeping garbage evaluators alive.
_live_evaluators: "weakref.WeakSet[IncrementalQueryEvaluator]" = weakref.WeakSet()
perf.register_cache(lambda: [e.reset() for e in _live_evaluators])


class IncrementalQueryEvaluator:
    """Incremental evaluation of one positive query across many call sites."""

    def __init__(self, query: PositiveQuery, rule_index: int = 0):
        self.query = query
        self.rule_index = rule_index  # position within a union service
        self._sites: Dict[Hashable, _SiteState] = {}
        _live_evaluators.add(self)

    def _stage_provenance(self, answer: Node, key,
                          environment: Mapping[str, Node],
                          binding) -> None:
        """Record, for the provenance index, how ``answer`` was derived."""
        stage_answer(key, rule=str(self.query), rule_index=self.rule_index,
                     valuation=valuation_summary(binding),
                     matched=witness_uids(self.query, environment, binding))

    # ------------------------------------------------------------------

    def _environment_uids(self, environment: Mapping[str, Node]) -> Dict[str, int]:
        return {name: environment[name].uid
                for name in self.query.document_names()}

    def evaluate_delta(self, environment: Mapping[str, Node],
                       site: Optional[Hashable]) -> Forest:
        """Answers not previously returned for ``site`` (all of them if new).

        Falls back to a full snapshot evaluation — returning the complete
        result — when incremental matching is disabled or no site identity
        is available.
        """
        from .matching import evaluate_snapshot  # local: avoid cycle at import

        if site is None or not perf.flags.incremental_matching:
            perf.stats.full_evaluations += 1
            return evaluate_snapshot(self.query, environment)

        state = self._sites.get(site)
        doc_uids = self._environment_uids(environment)
        if state is not None and state.doc_uids != doc_uids:
            # A document root this site cached against was swapped (e.g. a
            # fresh input tree after the call's parameters grew).  Cached
            # results stay sound by monotonicity, but the assignment cache
            # is keyed to the old trees — start the site over.
            state = None

        if state is None:
            cutoff = current_stamp()
            perf.stats.full_evaluations += 1
            assignments = enumerate_assignments(self.query, environment)
            seen: Set[frozenset] = set()
            results: List[Node] = []
            result_keys: set = set()
            for binding in assignments:
                seen.add(_binding_key(binding))
                answer = instantiate(self.query.head, binding)
                # Many assignments instantiate equivalent answers (e.g. a
                # join witness the head projects away).  Equal canonical
                # keys ⟺ equivalent trees, and once a key was inserted the
                # antichain dominates that answer forever (it only ever gets
                # stronger), so repeats skip the O(|results|) insertion.
                key = canonical_key(answer)
                if key in result_keys:
                    continue
                result_keys.add(key)
                if obs_bus.ACTIVE:
                    self._stage_provenance(answer, key, environment, binding)
                antichain_insert(results, answer)
            self._sites[site] = _SiteState(cutoff, seen, results, result_keys,
                                           doc_uids)
            return Forest(list(results))

        perf.stats.delta_evaluations += 1
        new_cutoff = current_stamp()
        new_assignments = enumerate_assignments_delta(
            self.query, environment, state.cutoff, state.seen)
        delta: List[Node] = []
        for binding in new_assignments:
            answer = instantiate(self.query.head, binding)
            key = canonical_key(answer)
            if key in state.result_keys:
                continue
            state.result_keys.add(key)
            if obs_bus.ACTIVE:
                self._stage_provenance(answer, key, environment, binding)
            if antichain_insert(state.results, answer):
                delta.append(answer)
        state.cutoff = new_cutoff
        return Forest(delta)

    def reset(self) -> None:
        self._sites.clear()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def export_cutoffs(self) -> Dict[Hashable, int]:
        """Per-site cutoff stamps (the only state a checkpoint persists)."""
        return {site: state.cutoff for site, state in self._sites.items()}

    def restore_cutoff(self, site: Hashable, cutoff: int,
                       doc_uids: Dict[str, int]) -> None:
        """Re-seed a site from a checkpointed cutoff with empty caches.

        Sound because the answers delivered before the checkpoint are
        already inside the restored documents (anything re-derived drops
        by antichain subsumption at graft time), and cheap because every
        restored node has ``version <= cutoff`` — the next invocation
        joins only against data grafted *after* the resume.
        """
        self._sites[site] = _SiteState(cutoff, set(), [], set(),
                                       dict(doc_uids))
        perf.stats.site_cutoffs_restored += 1
