"""Per-call-site incremental snapshot evaluation (the engine's fast path).

Materialization invokes the same call sites over and over while the
documents they read grow monotonically.  The seed engine re-ran snapshot
evaluation from scratch on every invocation; this module caches, per call
site, the assignments found at document versions ``V`` and on re-invocation
joins only the *delta* — embeddings that touch data newer than ``V``
(:func:`paxml.query.matching.enumerate_assignments_delta`).  Monotonicity
(Proposition 3.1) guarantees cached assignments never have to be retracted:
documents only gain subtrees, and reduction replaces trees by equivalent
ones only.

The evaluator returns *delta forests*: answers not previously returned for
the site.  Grafting is idempotent up to subsumption (an already-delivered
answer is dropped by the antichain insertion), so delivering each answer
once yields byte-identical reduced documents while cutting the per-step
graft cost from O(all answers ever) to O(new answers).
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, List, Mapping, Optional, Set

from .. import perf
from ..obs import bus as obs_bus
from ..obs.provenance import stage_answer
from ..tree import store as tree_store
from ..tree.antichain import BitsetAntichain
from ..tree.document import Forest
from ..tree.node import Node, current_stamp
from ..tree.reduction import antichain_insert, canonical_key
from .matching import (
    binding_keyer,
    enumerate_assignments,
    enumerate_assignments_delta,
    valuation_summary,
    witness_uids,
)
from .pattern import PatternNode, RegexSpec, instantiate
from .rule import PositiveQuery
from .variables import FunVar, LabelVar, TreeVar, ValueVar


_EMPTY_KEYSET: frozenset = frozenset()


def _compile_head_key(pattern: PatternNode):
    """A closure computing ``canonical_key(instantiate(pattern, µ))`` from µ.

    Canonical keys compose structurally — ``(marking, frozenset(maximal
    child keys))`` — so for most heads the key of an answer is computable
    straight from the binding, without building the answer tree at all.
    The evaluator uses this to recognise duplicate answers (many join
    valuations project to the same head) before paying for instantiation.

    The one non-compositional ingredient is the sibling-maximality filter:
    with several children it needs subsumption tests between the actual
    trees.  Sibling subsumption requires equal root markings, so the
    filter is statically vacuous when every child root is a concrete
    marking and no two are equal — the common shape for heads.  Returns
    ``None`` (caller falls back to instantiate-then-key) otherwise.
    """
    spec = pattern.spec
    if isinstance(spec, RegexSpec):
        return None
    if isinstance(spec, TreeVar):
        # The bound subtree is copied at instantiation; the copy is
        # structurally identical, so the document node's (cached) key is
        # the answer subtree's key.
        return lambda binding: canonical_key(binding[spec])
    children = pattern.children
    if len(children) > 1:
        markings = [child.spec for child in children]
        if any(isinstance(m, (LabelVar, FunVar, ValueVar, TreeVar, RegexSpec))
               for m in markings) or len(set(markings)) != len(markings):
            return None
    subkeys = [_compile_head_key(child) for child in children]
    if any(sub is None for sub in subkeys):
        return None
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        if not children:
            return lambda binding: (binding[spec], _EMPTY_KEYSET)
        return lambda binding: (
            binding[spec], frozenset(sub(binding) for sub in subkeys))
    # Concrete marking; collapse to a constant when the whole subtree is.
    if not children:
        const_key = (spec, _EMPTY_KEYSET)
        return lambda binding: const_key
    return lambda binding: (
        spec, frozenset(sub(binding) for sub in subkeys))


def _compile_head_bits(pattern: PatternNode):
    """A closure computing the packed subtree bits of µ(head) from µ.

    The bitset of an instantiated head is the union of one bit per
    marking in it: a constant mask for the concrete markings (re-interned
    lazily — intern ids are bit positions and die with ``clear_store``),
    one interned bit per bound node variable, and the store-cached bits
    of each bound subtree for tree variables.  Computing this from the
    binding spares the store from allocating rows for fresh answer trees
    that exist only to sit in a result antichain.
    """
    const_markings = []
    var_specs = []
    tree_specs = []
    for node in pattern.iter_nodes():
        spec = node.spec
        if isinstance(spec, RegexSpec):
            return None
        if isinstance(spec, TreeVar):
            tree_specs.append(spec)
        elif isinstance(spec, (LabelVar, FunVar, ValueVar)):
            var_specs.append(spec)
        else:
            const_markings.append(spec)
    intern = tree_store.intern_marking
    subtree_bits = tree_store.subtree_bits
    cache = {"generation": -1, "mask": 0}

    def head_bits(binding) -> int:
        generation = tree_store.generation()
        if cache["generation"] != generation:
            mask = 0
            for marking in const_markings:
                mask |= 1 << intern(marking)
            cache["generation"] = generation
            cache["mask"] = mask
        bits = cache["mask"]
        for spec in var_specs:
            bits |= 1 << intern(binding[spec])
        for spec in tree_specs:
            # Tree-variable images are document subtrees with live rows;
            # the instantiated copy shares their marking content exactly.
            bits |= subtree_bits(binding[spec])
        return bits
    return head_bits


class _SiteState:
    """What one call site remembers between invocations of one query."""

    __slots__ = ("cutoff", "seen", "results", "result_keys", "doc_uids")

    def __init__(self, cutoff: int, seen: set, results,
                 result_keys: set, doc_uids: Dict[str, int]):
        self.cutoff = cutoff          # stamp the cached assignments cover
        self.seen = seen              # binding keys of every assignment found
        self.results = results        # reduced antichain of all results so far
        #   (a plain list, or a BitsetAntichain when the store flag is on)
        self.result_keys = result_keys  # canonical keys of every answer seen
        self.doc_uids = doc_uids      # environment identity check


# Live evaluators, tracked weakly so perf.clear_caches() can reach their
# site caches without keeping garbage evaluators alive.
_live_evaluators: "weakref.WeakSet[IncrementalQueryEvaluator]" = weakref.WeakSet()
perf.register_cache(lambda: [e.reset() for e in _live_evaluators])


class IncrementalQueryEvaluator:
    """Incremental evaluation of one positive query across many call sites."""

    def __init__(self, query: PositiveQuery, rule_index: int = 0):
        self.query = query
        self.rule_index = rule_index  # position within a union service
        self._sites: Dict[Hashable, _SiteState] = {}
        # Hash-consed answer instantiation: binding key → (answer tree,
        # canonical key).  Distinct call sites of one service routinely
        # derive the same valuations; returning the *same* answer object
        # keeps its uid/version stable, so the persistent subsumption
        # cache, the per-node canonical-key slot and the columnar-store
        # row all stay hot instead of being defeated by fresh uids.
        # Sound because answers are never mutated: grafting copies them
        # (``graft_answers``) and antichain membership is read-only.
        self._answers: Dict[frozenset, tuple] = {}
        # Key-template fast path: compute the canonical key straight from
        # the binding, and only instantiate (once, memoised by key) when
        # the key is new to the site.  Answers with equal keys are
        # equivalent, so which representative gets grafted is immaterial.
        self._head_key = _compile_head_key(query.head)
        self._head_bits = _compile_head_bits(query.head)
        self._by_key: Dict[tuple, Node] = {}
        _live_evaluators.add(self)

    def _instantiate(self, binding) -> tuple:
        """The (answer, canonical key) for ``binding``, hash-consed."""
        bkey = binding_keyer(self.query)(binding)
        cached = self._answers.get(bkey)
        if cached is None:
            answer = instantiate(self.query.head, binding)
            cached = (answer, canonical_key(answer))
            self._answers[bkey] = cached
        return cached

    def _answer_for(self, key, binding) -> Node:
        """The memoised answer tree for a template-computed ``key``."""
        answer = self._by_key.get(key)
        if answer is None:
            answer = instantiate(self.query.head, binding)
            self._by_key[key] = answer
        return answer

    def _stage_provenance(self, answer: Node, key,
                          environment: Mapping[str, Node],
                          binding) -> None:
        """Record, for the provenance index, how ``answer`` was derived."""
        stage_answer(key, rule=str(self.query), rule_index=self.rule_index,
                     valuation=valuation_summary(binding),
                     matched=witness_uids(self.query, environment, binding))

    # ------------------------------------------------------------------

    def _environment_uids(self, environment: Mapping[str, Node]) -> Dict[str, int]:
        return {name: environment[name].uid
                for name in self.query.document_names()}

    def evaluate_delta(self, environment: Mapping[str, Node],
                       site: Optional[Hashable]) -> Forest:
        """Answers not previously returned for ``site`` (all of them if new).

        Falls back to a full snapshot evaluation — returning the complete
        result — when incremental matching is disabled or no site identity
        is available.
        """
        from .matching import evaluate_snapshot  # local: avoid cycle at import

        if site is None or not perf.flags.incremental_matching:
            perf.stats.full_evaluations += 1
            return evaluate_snapshot(self.query, environment)

        state = self._sites.get(site)
        doc_uids = self._environment_uids(environment)
        if state is not None and state.doc_uids != doc_uids:
            # A document root this site cached against was swapped (e.g. a
            # fresh input tree after the call's parameters grew).  Cached
            # results stay sound by monotonicity, but the assignment cache
            # is keyed to the old trees — start the site over.
            state = None

        if state is None:
            cutoff = current_stamp()
            perf.stats.full_evaluations += 1
            assignments = enumerate_assignments(self.query, environment)
            seen: set = set()
            use_index = perf.flags.columnar_store
            results = BitsetAntichain() if use_index else []
            result_keys: set = set()
            head_key = self._head_key
            head_bits = self._head_bits
            bkey = binding_keyer(self.query)
            for binding in assignments:
                seen.add(bkey(binding))
                # Many assignments instantiate equivalent answers (e.g. a
                # join witness the head projects away).  Equal canonical
                # keys ⟺ equivalent trees, and once a key was inserted the
                # antichain dominates that answer forever (it only ever gets
                # stronger), so repeats skip the O(|results|) insertion —
                # and, when the head has a key template, skip instantiation
                # altogether.
                if head_key is not None:
                    key = head_key(binding)
                    if key in result_keys:
                        continue
                    answer = self._answer_for(key, binding)
                else:
                    answer, key = self._instantiate(binding)
                    if key in result_keys:
                        continue
                result_keys.add(key)
                if obs_bus.ACTIVE:
                    self._stage_provenance(answer, key, environment, binding)
                if use_index:
                    results.insert(answer,
                                   head_bits(binding) if head_bits else None)
                else:
                    antichain_insert(results, answer)
            self._sites[site] = _SiteState(cutoff, seen, results, result_keys,
                                           doc_uids)
            return Forest(list(results))

        perf.stats.delta_evaluations += 1
        new_cutoff = current_stamp()
        new_assignments = enumerate_assignments_delta(
            self.query, environment, state.cutoff, state.seen)
        # The site's antichain follows the store flag; converting (rare —
        # only when the flag is toggled between invocations) preserves the
        # kept set exactly.
        results = state.results
        use_index = perf.flags.columnar_store
        if use_index and isinstance(results, list):
            results = state.results = BitsetAntichain(results)
        elif not use_index and not isinstance(results, list):
            results = state.results = results.items()
        delta: List[Node] = []
        head_key = self._head_key
        head_bits = self._head_bits
        for binding in new_assignments:
            if head_key is not None:
                key = head_key(binding)
                if key in state.result_keys:
                    continue
                answer = self._answer_for(key, binding)
            else:
                answer, key = self._instantiate(binding)
                if key in state.result_keys:
                    continue
            state.result_keys.add(key)
            if obs_bus.ACTIVE:
                self._stage_provenance(answer, key, environment, binding)
            if (results.insert(answer,
                               head_bits(binding) if head_bits else None)
                    if use_index else antichain_insert(results, answer)):
                delta.append(answer)
        state.cutoff = new_cutoff
        return Forest(delta)

    def reset(self) -> None:
        self._sites.clear()
        self._answers.clear()
        self._by_key.clear()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def export_cutoffs(self) -> Dict[Hashable, int]:
        """Per-site cutoff stamps (the only state a checkpoint persists)."""
        return {site: state.cutoff for site, state in self._sites.items()}

    def restore_cutoff(self, site: Hashable, cutoff: int,
                       doc_uids: Dict[str, int]) -> None:
        """Re-seed a site from a checkpointed cutoff with empty caches.

        Sound because the answers delivered before the checkpoint are
        already inside the restored documents (anything re-derived drops
        by antichain subsumption at graft time), and cheap because every
        restored node has ``version <= cutoff`` — the next invocation
        joins only against data grafted *after* the resume.
        """
        self._sites[site] = _SiteState(cutoff, set(), [], set(),
                                       dict(doc_uids))
        perf.stats.site_cutoffs_restored += 1


class ContinuousQueryLog:
    """An append-only certain-answer log for one *continuous* query.

    The serve layer's fan-out core: one log per registered query, shared
    by every subscriber.  :meth:`refresh` runs one incremental delta
    evaluation (a synthetic site key makes the evaluator treat the
    continuous query as a single long-lived call site) and appends the
    genuinely new answers; subscribers each hold a plain integer cursor
    into the log and :meth:`read` from it independently.  The per-graft
    cost is therefore one delta join — independent of the subscriber
    count — and delivery to N subscribers is N cursor reads of the same
    list.

    Answers are stored as canonical text (:func:`~paxml.tree.serializer.
    to_canonical`), the form the wire protocol ships; by Proposition 3.1
    the log only ever grows, so a cursor never has to be invalidated.
    The concatenated log can be a strict superset of the *reduced*
    current result — a later answer may subsume an earlier one, which an
    append-only stream cannot retract — but their reductions coincide,
    which is the exactness contract the oracle suite checks.
    """

    def __init__(self, query: PositiveQuery, key: Hashable):
        self.query = query
        self.key = key
        self._evaluator = IncrementalQueryEvaluator(query)
        self._site = ("continuous", key)
        self.answers: List[str] = []
        # Parallel to ``answers``: the causal trace wire dict of the
        # graft whose refresh produced each answer (None when the graft
        # was untraced) and the perf_counter stamp of the append — the
        # serve layer's end-to-end inject→delta-push latency reads the
        # stamp back at push time.
        self.traces: List[Optional[dict]] = []
        self.stamps: List[float] = []
        self._seen: Set[str] = set()

    def __len__(self) -> int:
        return len(self.answers)

    def refresh(self, environment: Mapping[str, Node]) -> List[str]:
        """Evaluate the delta against ``environment``; append and return
        the new answers (canonical texts).

        Re-registering after a suspend/resume cycle replays the full
        snapshot through a fresh evaluator; the ``_seen`` filter keeps
        answers already streamed out of the log, so cursors stay valid
        across the gap.
        """
        import time
        from ..obs import trace as obs_trace  # local: avoid cycle
        from ..tree.serializer import to_canonical  # local: avoid cycle

        delta = self._evaluator.evaluate_delta(environment, self._site)
        fresh: List[str] = []
        ctx = obs_trace.current()
        trace_wire = ctx.to_wire() if ctx is not None else None
        stamp = time.perf_counter()
        for tree in delta:
            text = to_canonical(tree)
            if text in self._seen:
                continue
            self._seen.add(text)
            self.answers.append(text)
            self.traces.append(trace_wire)
            self.stamps.append(stamp)
            fresh.append(text)
        return fresh

    def read(self, cursor: int) -> tuple:
        """``(new_cursor, answers[cursor:])`` — one subscriber's catch-up."""
        return len(self.answers), self.answers[cursor:]

    def read_traced(self, cursor: int) -> tuple:
        """``(new_cursor, answers, traces, stamps)`` past the cursor."""
        return (len(self.answers), self.answers[cursor:],
                self.traces[cursor:], self.stamps[cursor:])

    def preload(self, answers) -> None:
        """Seed the log with already-streamed answers (spool restore)."""
        import time
        stamp = time.perf_counter()
        for text in answers:
            if text not in self._seen:
                self._seen.add(text)
                self.answers.append(text)
                self.traces.append(None)
                self.stamps.append(stamp)

    def reset_evaluator(self) -> None:
        """Drop the evaluator's caches (suspend path); the log survives."""
        self._evaluator = IncrementalQueryEvaluator(self.query)
