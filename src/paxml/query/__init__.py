"""The positive query language of Section 3.1 and its snapshot semantics."""

from .matching import (
    MissingDocumentError,
    enumerate_assignments,
    evaluate_snapshot,
    match_pattern,
)
from .parser import parse_pattern, parse_queries, parse_query
from .plan import QueryPlan, compile_query, describe_plan, warm_system
from .pattern import (
    Assignment,
    PatternNode,
    RegexSpec,
    from_tree,
    instantiate,
    pattern_to_text,
)
from .rule import BodyAtom, Inequality, PositiveQuery, QueryValidationError
from .variables import FunVar, LabelVar, TreeVar, ValueVar, Variable

__all__ = [
    "Assignment",
    "BodyAtom",
    "FunVar",
    "Inequality",
    "LabelVar",
    "MissingDocumentError",
    "PatternNode",
    "PositiveQuery",
    "QueryPlan",
    "QueryValidationError",
    "RegexSpec",
    "TreeVar",
    "ValueVar",
    "Variable",
    "compile_query",
    "describe_plan",
    "enumerate_assignments",
    "evaluate_snapshot",
    "warm_system",
    "from_tree",
    "instantiate",
    "match_pattern",
    "parse_pattern",
    "parse_queries",
    "parse_query",
    "pattern_to_text",
]
