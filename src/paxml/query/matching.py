"""Snapshot evaluation of positive queries (Section 3.1).

The *snapshot result* ``q(I)`` is the forest of all ``µ(r)`` for assignments
µ that respect typing, satisfy the inequalities, and embed every body
pattern into its document: ``µ(pi) ⊆ I(di)``.  Embeddings are subsumption
homomorphisms — root to root, parent-child preserving, non-injective — so
two pattern siblings may map onto the same document node.

Tree variables are enumerated over *actual document subtrees* only: any
other tree assigned to the variable is subsumed by the subtree at the image
node, so restricting to actual subtrees changes nothing after forest
reduction (the result is the same reduced forest).

The matcher also evaluates positive+reg patterns natively by walking
document paths and NFA states in lockstep; Proposition 5.1's translation ψ
(:mod:`paxml.analysis.translation`) is validated against this native
semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .. import perf
from ..obs import bus as obs_bus
from ..obs.provenance import stage_answer
from ..tree.document import Forest
from ..tree.node import FunName, Label, Node, Value
from ..tree.reduction import canonical_key, reduce_forest
from .pattern import Assignment, PatternNode, RegexSpec, instantiate
from .rule import Inequality, PositiveQuery
from .variables import FunVar, LabelVar, TreeVar, ValueVar


class MissingDocumentError(KeyError):
    """A body atom refers to a document the environment does not provide."""

    def __init__(self, name: str, available: Iterable[str]):
        super().__init__(name)
        self.name = name
        self.available = sorted(available)

    def __str__(self) -> str:
        return (
            f"query reads document {self.name!r} but the environment only "
            f"provides {self.available}"
        )


def _regex_end_nodes(spec: RegexSpec, start: Node) -> Iterator[Node]:
    """All nodes ``nm`` with an accepted path ``start = n0 … nm``.

    The word includes both endpoints' labels, so only label nodes can lie on
    a path.  In a tree the path from ``start`` to any node is unique, hence
    each node is visited at most once and the walk is linear.
    """
    if not isinstance(start.marking, Label):
        return
    nfa = spec.nfa
    states = nfa.step([nfa.initial], start.marking.name)
    if not states:
        return
    stack: List[Tuple[Node, frozenset]] = [(start, states)]
    while stack:
        node, node_states = stack.pop()
        if node_states & nfa.accepting:
            yield node
        for child in node.children:
            if isinstance(child.marking, Label):
                next_states = nfa.step(node_states, child.marking.name)
                if next_states:
                    stack.append((child, next_states))


def _match_node(pattern: PatternNode, node: Node,
                binding: Assignment) -> Iterator[Assignment]:
    """All extensions of ``binding`` embedding ``pattern`` at ``node``."""
    spec = pattern.spec
    if isinstance(spec, RegexSpec):
        for end in _regex_end_nodes(spec, node):
            yield from _match_children(pattern.children, end, binding)
        return
    if isinstance(spec, TreeVar):
        extended = dict(binding)
        extended[spec] = node  # copied only at instantiation time
        yield extended
        return
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        if not spec.admits(node.marking):
            return
        bound = binding.get(spec)
        if bound is not None:
            if bound != node.marking:
                return
            yield from _match_children(pattern.children, node, binding)
        else:
            extended = dict(binding)
            extended[spec] = node.marking
            yield from _match_children(pattern.children, node, extended)
        return
    # Constant marking.
    if spec == node.marking:
        yield from _match_children(pattern.children, node, binding)


def _match_children(patterns: List[PatternNode], node: Node,
                    binding: Assignment) -> Iterator[Assignment]:
    """Embed each child pattern at *some* child of ``node`` (non-injectively)."""
    if not patterns:
        yield binding
        return
    first, rest = patterns[0], patterns[1:]
    candidates: Iterable[Node] = node.children
    spec = first.spec
    if isinstance(spec, (Label, FunName, Value)):
        candidates = [c for c in node.children if c.marking == spec]
    for child in candidates:
        for extended in _match_node(first, child, binding):
            yield from _match_children(rest, node, extended)


def match_pattern(pattern: PatternNode, root: Node,
                  binding: Optional[Assignment] = None) -> Iterator[Assignment]:
    """All assignments µ with ``µ(pattern) ⊆ root`` (root mapped to root)."""
    yield from _match_node(pattern, root, dict(binding or {}))


# ----------------------------------------------------------------------
# Delta-driven matching (the incremental engine's semi-naive evaluation).
#
# Documents grow monotonically: subtrees are only ever appended, and every
# append bumps the version stamp of each node on its root path (see
# ``paxml.tree.node``).  An embedding whose image nodes all predate a cutoff
# stamp — and whose tree-variable subtrees are unchanged since it — already
# existed at the cutoff, because old nodes never move and markings are
# immutable.  Contrapositively, every *new* embedding maps at least one
# pattern node to a node created after the cutoff (uid > cutoff) or binds a
# tree variable to a subtree grown since it (version > cutoff).  The
# matchers below enumerate exactly those embeddings, pruning every document
# subtree with ``version <= cutoff`` as soon as the remaining pattern can no
# longer reach new data.
# ----------------------------------------------------------------------


class _DeltaContext:
    """Per-evaluation state for one delta pass: cutoff + new-child lists.

    The new-children lists are memoised so a join re-visiting the same node
    for thousands of partial bindings filters its children once, not once
    per binding.
    """

    __slots__ = ("cutoff", "_new_children")

    def __init__(self, cutoff: int):
        self.cutoff = cutoff
        self._new_children: Dict[int, List[Node]] = {}

    def new_children(self, node: Node) -> List[Node]:
        cached = self._new_children.get(id(node))
        if cached is None:
            cutoff = self.cutoff
            cached = [c for c in node.children if c.version > cutoff]
            self._new_children[id(node)] = cached
        return cached


def _match_node_delta(pattern: PatternNode, node: Node, binding: Assignment,
                      ctx: _DeltaContext,
                      need_new: bool) -> Iterator[Tuple[Assignment, bool]]:
    """Extensions of ``binding`` embedding ``pattern`` at ``node``.

    Yields ``(assignment, used_new)``.  With ``need_new`` the embedding of
    this pattern subtree must itself touch post-cutoff data; since all its
    images lie inside ``node``'s subtree, an unchanged subtree is pruned
    outright.  Callers maintain ``need_new ⇒ newness not yet witnessed``.
    """
    if need_new and node.version <= ctx.cutoff:
        return
    spec = pattern.spec
    if isinstance(spec, RegexSpec):
        for end in _regex_end_nodes(spec, node):
            # A path ending at a pre-cutoff node consists of pre-cutoff
            # nodes only (descendants of new nodes are new), so the end
            # node's age decides the whole path's.
            end_new = end.uid > ctx.cutoff
            yield from _match_children_delta(pattern.children, end, binding,
                                             ctx, need_new and not end_new,
                                             end_new)
        return
    if isinstance(spec, TreeVar):
        # The entry prune already rejected unchanged subtrees under
        # need_new, so reaching here with need_new implies the subtree (and
        # hence the binding) is new.
        extended = dict(binding)
        extended[spec] = node
        yield extended, node.version > ctx.cutoff
        return
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        if not spec.admits(node.marking):
            return
        self_new = node.uid > ctx.cutoff
        bound = binding.get(spec)
        if bound is not None:
            if bound != node.marking:
                return
            yield from _match_children_delta(pattern.children, node, binding,
                                             ctx, need_new and not self_new,
                                             self_new)
        else:
            extended = dict(binding)
            extended[spec] = node.marking
            yield from _match_children_delta(pattern.children, node, extended,
                                             ctx, need_new and not self_new,
                                             self_new)
        return
    if spec == node.marking:
        self_new = node.uid > ctx.cutoff
        yield from _match_children_delta(pattern.children, node, binding,
                                         ctx, need_new and not self_new,
                                         self_new)


def _match_children_delta(patterns: List[PatternNode], node: Node,
                          binding: Assignment, ctx: _DeltaContext,
                          need_new: bool,
                          have_new: bool) -> Iterator[Tuple[Assignment, bool]]:
    """Embed the child patterns, threading the newness obligation.

    Only the *last* remaining sibling inherits a hard ``need_new``: earlier
    siblings may match old data as long as a later one reaches new data —
    that split is exactly the semi-naive ``Δ⋈full + full⋈Δ`` decomposition,
    applied inside a single pattern.
    """
    if not patterns:
        if need_new:
            return
        yield binding, have_new
        return
    first, rest = patterns[0], patterns[1:]
    first_need = need_new and not rest
    candidates: Iterable[Node] = (
        ctx.new_children(node) if first_need else node.children
    )
    spec = first.spec
    if isinstance(spec, (Label, FunName, Value)):
        candidates = [c for c in candidates if c.marking == spec]
    for child in candidates:
        for extended, sub_new in _match_node_delta(first, child, binding,
                                                   ctx, first_need):
            new_now = have_new or sub_new
            yield from _match_children_delta(rest, node, extended, ctx,
                                             need_new and not new_now,
                                             new_now)


def match_pattern_delta(pattern: PatternNode, root: Node, cutoff: int,
                        binding: Optional[Assignment] = None
                        ) -> Iterator[Assignment]:
    """Assignments embedding ``pattern`` at ``root`` that use post-cutoff data.

    The complement of the cached set: together with the assignments found at
    stamp ``cutoff`` this covers all current embeddings (monotone growth,
    Proposition 3.1).
    """
    if root.version <= cutoff:
        return
    ctx = _DeltaContext(cutoff)
    for assignment, _used_new in _match_node_delta(pattern, root,
                                                   dict(binding or {}),
                                                   ctx, True):
        yield assignment


def enumerate_assignments_delta(query: PositiveQuery,
                                documents: Mapping[str, Node],
                                cutoff: int,
                                seen: set) -> List[Assignment]:
    """Satisfying assignments not yet recorded in ``seen``.

    Semi-naive over body atoms: one pass per atom, restricting that atom's
    embeddings to the delta since ``cutoff`` while the other atoms match in
    full.  A pass is skipped when its atom's document is unchanged, so an
    invocation that grew a single document only pays for the atoms reading
    it.  ``seen`` is updated in place with the new assignments' keys.
    """
    if perf.flags.query_planner:
        from .plan import compile_query  # lazy: plan imports this module

        return compile_query(query).execute_delta(documents, cutoff, seen)
    body = query.body
    for atom in body:
        if atom.document not in documents:
            raise MissingDocumentError(atom.document, documents.keys())
    new_assignments: List[Assignment] = []
    for i, delta_atom in enumerate(body):
        if documents[delta_atom.document].version <= cutoff:
            continue
        bindings: List[Assignment] = [{}]
        for j, atom in enumerate(body):
            root = documents[atom.document]
            extended: List[Assignment] = []
            step_seen = set()
            for binding in bindings:
                matches = (
                    match_pattern_delta(atom.pattern, root, cutoff, binding)
                    if j == i else match_pattern(atom.pattern, root, binding)
                )
                for result in matches:
                    key = _binding_key(result)
                    if key not in step_seen:
                        step_seen.add(key)
                        extended.append(result)
            bindings = extended
            if not bindings:
                break
        keyer = binding_keyer(query)
        for binding in bindings:
            key = keyer(binding)
            if key in seen:
                continue
            seen.add(key)
            if _inequalities_hold(query.inequalities, binding):
                new_assignments.append(binding)
    return new_assignments


def _binding_key(binding: Assignment) -> frozenset:
    """Hashable identity of an assignment, for deduplication.

    Tree-variable images are compared by canonical key, so two embeddings
    binding a variable to equivalent subtrees count as one assignment.
    Works on *partial* bindings (mid-join dedup); complete assignments of
    a known query should use :func:`binding_keyer` instead.
    """
    items = []
    for variable, value in binding.items():
        if isinstance(value, Node):
            items.append((variable, ("tree", canonical_key(value))))
        else:
            items.append((variable, value))
    return frozenset(items)


def binding_keyer(query: PositiveQuery):
    """A compiled keyer for *complete* assignments of ``query``.

    Every satisfying assignment binds exactly the body variables, so a
    plain value tuple in one fixed variable order identifies it — no
    per-item variable hashing, no frozenset build.  The keyer is cached
    on the query and shared by every consumer (planner, naive matcher,
    incremental evaluator) so keys in persisted ``seen`` sets stay
    comparable whichever path produced them.
    """
    keyer = getattr(query, "_binding_keyer", None)
    if keyer is not None:
        return keyer
    from .variables import variable_sort_key  # local: tiny helper

    ordered = tuple(sorted(query.body_variables(), key=variable_sort_key))
    tree_vars = tuple(v for v in ordered if isinstance(v, TreeVar))
    if not tree_vars:
        def keyer(binding, _ordered=ordered):
            return tuple([binding[v] for v in _ordered])
    else:
        def keyer(binding, _ordered=ordered):
            return tuple([
                canonical_key(binding[v]) if isinstance(v, TreeVar)
                else binding[v]
                for v in _ordered])
    query._binding_keyer = keyer
    return keyer


def enumerate_assignments(query: PositiveQuery,
                          documents: Mapping[str, Node]) -> List[Assignment]:
    """All distinct satisfying assignments for the rule body.

    With ``perf.flags.query_planner`` set (the default) the enumeration
    routes through the compiled plan of :mod:`paxml.query.plan`; the
    naive join below is the oracle the plan executor is tested against,
    and the runtime fallback when the flag is off.
    """
    if perf.flags.query_planner:
        from .plan import compile_query  # lazy: plan imports this module

        return compile_query(query).execute(documents)
    bindings: List[Assignment] = [{}]
    for atom in query.body:
        if atom.document not in documents:
            raise MissingDocumentError(atom.document, documents.keys())
        root = documents[atom.document]
        extended: List[Assignment] = []
        seen = set()
        for binding in bindings:
            for result in match_pattern(atom.pattern, root, binding):
                key = _binding_key(result)
                if key not in seen:
                    seen.add(key)
                    extended.append(result)
        bindings = extended
        if not bindings:
            return []
    return [b for b in bindings if _inequalities_hold(query.inequalities, b)]


# ----------------------------------------------------------------------
# Witness collection (provenance tracing).
#
# Given a *complete* assignment — one the matchers above already produced —
# re-walking the pattern cheaply recovers an embedding's image: the uids of
# the document nodes each pattern node mapped onto.  Only the provenance
# layer calls this, and only while tracing is on, so the enumeration
# matchers stay free of bookkeeping.
# ----------------------------------------------------------------------


def _match_node_witness(pattern: PatternNode, node: Node,
                        binding: Assignment, trail: Tuple[int, ...]
                        ) -> Iterator[Tuple[Assignment, Tuple[int, ...]]]:
    spec = pattern.spec
    if isinstance(spec, RegexSpec):
        for end in _regex_end_nodes(spec, node):
            yield from _match_children_witness(
                pattern.children, end, binding, trail + (node.uid, end.uid))
        return
    if isinstance(spec, TreeVar):
        bound = binding.get(spec)
        if (bound is None or bound is node
                or canonical_key(bound) == canonical_key(node)):
            yield binding, trail + (node.uid,)
        return
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        if not spec.admits(node.marking):
            return
        bound = binding.get(spec)
        if bound is not None and bound != node.marking:
            return
        yield from _match_children_witness(pattern.children, node, binding,
                                           trail + (node.uid,))
        return
    if spec == node.marking:
        yield from _match_children_witness(pattern.children, node, binding,
                                           trail + (node.uid,))


def _match_children_witness(patterns: List[PatternNode], node: Node,
                            binding: Assignment, trail: Tuple[int, ...]
                            ) -> Iterator[Tuple[Assignment, Tuple[int, ...]]]:
    if not patterns:
        yield binding, trail
        return
    first, rest = patterns[0], patterns[1:]
    candidates: Iterable[Node] = node.children
    spec = first.spec
    if isinstance(spec, (Label, FunName, Value)):
        candidates = [c for c in node.children if c.marking == spec]
    for child in candidates:
        for _extended, grown in _match_node_witness(first, child, binding,
                                                    trail):
            yield from _match_children_witness(rest, node, binding, grown)


def match_pattern_witness(pattern: PatternNode, root: Node,
                          binding: Assignment
                          ) -> Iterator[Tuple[Assignment, Tuple[int, ...]]]:
    """Embeddings of ``pattern`` at ``root`` consistent with ``binding``,
    paired with the uids of the image nodes (root first)."""
    yield from _match_node_witness(pattern, root, binding, ())


def witness_uids(query: PositiveQuery, documents: Mapping[str, Node],
                 binding: Assignment) -> List[int]:
    """Image-node uids of one embedding per body atom under ``binding``."""
    uids: set = set()
    for atom in query.body:
        root = documents.get(atom.document)
        if root is None:
            continue
        for _assignment, trail in match_pattern_witness(atom.pattern, root,
                                                        binding):
            uids.update(trail)
            break  # one witness per atom suffices for provenance
    return sorted(uids)


def valuation_summary(binding: Assignment) -> Dict[str, str]:
    """A JSON-safe rendering of an assignment for provenance events."""
    from ..tree.serializer import to_canonical

    summary: Dict[str, str] = {}
    for variable, value in binding.items():
        if isinstance(value, Node):
            text = to_canonical(value)
            summary[str(variable)] = (text if len(text) <= 60
                                      else text[:57] + "...")
        else:
            summary[str(variable)] = str(value)
    return summary


def _operand_value(operand, binding: Assignment):
    if isinstance(operand, (LabelVar, FunVar, ValueVar)):
        return binding[operand]
    return operand


def _inequalities_hold(inequalities: List[Inequality], binding: Assignment) -> bool:
    return all(
        _operand_value(ineq.left, binding) != _operand_value(ineq.right, binding)
        for ineq in inequalities
    )


def evaluate_snapshot(query: PositiveQuery,
                      documents: Mapping[str, Node],
                      rule_index: int = 0) -> Forest:
    """The snapshot result ``q(I)``, as a reduced forest.

    ``documents`` maps document names (including, when the query is a
    service body, the reserved names ``input`` and ``context``) to tree
    roots.  The input trees are never mutated; results are fresh trees.
    """
    assignments = enumerate_assignments(query, documents)
    results = []
    for binding in assignments:
        answer = instantiate(query.head, binding)
        results.append(answer)
        if obs_bus.ACTIVE:
            stage_answer(canonical_key(answer), rule=str(query),
                         rule_index=rule_index,
                         valuation=valuation_summary(binding),
                         matched=witness_uids(query, documents, binding))
    return Forest(reduce_forest(results))
