"""Snapshot evaluation of positive queries (Section 3.1).

The *snapshot result* ``q(I)`` is the forest of all ``µ(r)`` for assignments
µ that respect typing, satisfy the inequalities, and embed every body
pattern into its document: ``µ(pi) ⊆ I(di)``.  Embeddings are subsumption
homomorphisms — root to root, parent-child preserving, non-injective — so
two pattern siblings may map onto the same document node.

Tree variables are enumerated over *actual document subtrees* only: any
other tree assigned to the variable is subsumed by the subtree at the image
node, so restricting to actual subtrees changes nothing after forest
reduction (the result is the same reduced forest).

The matcher also evaluates positive+reg patterns natively by walking
document paths and NFA states in lockstep; Proposition 5.1's translation ψ
(:mod:`paxml.analysis.translation`) is validated against this native
semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..tree.document import Forest
from ..tree.node import FunName, Label, Node, Value
from ..tree.reduction import canonical_key, reduce_forest
from .pattern import Assignment, PatternNode, RegexSpec, instantiate
from .rule import Inequality, PositiveQuery
from .variables import FunVar, LabelVar, TreeVar, ValueVar


class MissingDocumentError(KeyError):
    """A body atom refers to a document the environment does not provide."""

    def __init__(self, name: str, available: Iterable[str]):
        super().__init__(name)
        self.name = name
        self.available = sorted(available)

    def __str__(self) -> str:
        return (
            f"query reads document {self.name!r} but the environment only "
            f"provides {self.available}"
        )


def _regex_end_nodes(spec: RegexSpec, start: Node) -> Iterator[Node]:
    """All nodes ``nm`` with an accepted path ``start = n0 … nm``.

    The word includes both endpoints' labels, so only label nodes can lie on
    a path.  In a tree the path from ``start`` to any node is unique, hence
    each node is visited at most once and the walk is linear.
    """
    if not isinstance(start.marking, Label):
        return
    nfa = spec.nfa
    states = nfa.step([nfa.initial], start.marking.name)
    if not states:
        return
    stack: List[Tuple[Node, frozenset]] = [(start, states)]
    while stack:
        node, node_states = stack.pop()
        if node_states & nfa.accepting:
            yield node
        for child in node.children:
            if isinstance(child.marking, Label):
                next_states = nfa.step(node_states, child.marking.name)
                if next_states:
                    stack.append((child, next_states))


def _match_node(pattern: PatternNode, node: Node,
                binding: Assignment) -> Iterator[Assignment]:
    """All extensions of ``binding`` embedding ``pattern`` at ``node``."""
    spec = pattern.spec
    if isinstance(spec, RegexSpec):
        for end in _regex_end_nodes(spec, node):
            yield from _match_children(pattern.children, end, binding)
        return
    if isinstance(spec, TreeVar):
        extended = dict(binding)
        extended[spec] = node  # copied only at instantiation time
        yield extended
        return
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        if not spec.admits(node.marking):
            return
        bound = binding.get(spec)
        if bound is not None:
            if bound != node.marking:
                return
            yield from _match_children(pattern.children, node, binding)
        else:
            extended = dict(binding)
            extended[spec] = node.marking
            yield from _match_children(pattern.children, node, extended)
        return
    # Constant marking.
    if spec == node.marking:
        yield from _match_children(pattern.children, node, binding)


def _match_children(patterns: List[PatternNode], node: Node,
                    binding: Assignment) -> Iterator[Assignment]:
    """Embed each child pattern at *some* child of ``node`` (non-injectively)."""
    if not patterns:
        yield binding
        return
    first, rest = patterns[0], patterns[1:]
    candidates: Iterable[Node] = node.children
    spec = first.spec
    if isinstance(spec, (Label, FunName, Value)):
        candidates = [c for c in node.children if c.marking == spec]
    for child in candidates:
        for extended in _match_node(first, child, binding):
            yield from _match_children(rest, node, extended)


def match_pattern(pattern: PatternNode, root: Node,
                  binding: Optional[Assignment] = None) -> Iterator[Assignment]:
    """All assignments µ with ``µ(pattern) ⊆ root`` (root mapped to root)."""
    yield from _match_node(pattern, root, dict(binding or {}))


def _binding_key(binding: Assignment) -> frozenset:
    """Hashable identity of an assignment, for deduplication.

    Tree-variable images are compared by canonical key, so two embeddings
    binding a variable to equivalent subtrees count as one assignment.
    """
    items = []
    for variable, value in binding.items():
        if isinstance(value, Node):
            items.append((variable, ("tree", canonical_key(value))))
        else:
            items.append((variable, value))
    return frozenset(items)


def enumerate_assignments(query: PositiveQuery,
                          documents: Mapping[str, Node]) -> List[Assignment]:
    """All distinct satisfying assignments for the rule body."""
    bindings: List[Assignment] = [{}]
    for atom in query.body:
        if atom.document not in documents:
            raise MissingDocumentError(atom.document, documents.keys())
        root = documents[atom.document]
        extended: List[Assignment] = []
        seen = set()
        for binding in bindings:
            for result in match_pattern(atom.pattern, root, binding):
                key = _binding_key(result)
                if key not in seen:
                    seen.add(key)
                    extended.append(result)
        bindings = extended
        if not bindings:
            return []
    return [b for b in bindings if _inequalities_hold(query.inequalities, b)]


def _operand_value(operand, binding: Assignment):
    if isinstance(operand, (LabelVar, FunVar, ValueVar)):
        return binding[operand]
    return operand


def _inequalities_hold(inequalities: List[Inequality], binding: Assignment) -> bool:
    return all(
        _operand_value(ineq.left, binding) != _operand_value(ineq.right, binding)
        for ineq in inequalities
    )


def evaluate_snapshot(query: PositiveQuery,
                      documents: Mapping[str, Node]) -> Forest:
    """The snapshot result ``q(I)``, as a reduced forest.

    ``documents`` maps document names (including, when the query is a
    service body, the reserved names ``input`` and ``context``) to tree
    roots.  The input trees are never mutated; results are fresh trees.
    """
    assignments = enumerate_assignments(query, documents)
    results = [instantiate(query.head, binding) for binding in assignments]
    return Forest(reduce_forest(results))
