"""Typed variables of the positive query language (Section 3.1).

The paper distinguishes four kinds of variables, one per node kind plus
tree variables:

* **label variables** (``@x`` in concrete syntax) range over labels;
* **function variables** (``#x``) range over function names;
* **value variables** (``$x``) range over atomic values;
* **tree variables** (``*X``) range over whole subtrees of documents.

Simple queries (Definition 3.1) are the queries using no tree variables —
the restriction that buys decidability of termination, finiteness and
stability in Section 3–4.
"""

from __future__ import annotations

from typing import Union

from ..tree.node import FunName, Label, Node, Value


class _BaseVar:
    __slots__ = ("name", "_h")
    sigil = "?"
    kind = "variable"

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"variable name must be a non-empty string, got {name!r}")
        self.name = name
        self._h = hash((type(self).__name__, name))

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.name == self.name

    def __hash__(self) -> int:
        return self._h

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.sigil + self.name


class LabelVar(_BaseVar):
    """Ranges over labels; matches data nodes marked with a label."""

    sigil = "@"
    kind = "label"

    def admits(self, marking: object) -> bool:
        return isinstance(marking, Label)


class FunVar(_BaseVar):
    """Ranges over function names; matches service-call nodes."""

    sigil = "#"
    kind = "function"

    def admits(self, marking: object) -> bool:
        return isinstance(marking, FunName)


class ValueVar(_BaseVar):
    """Ranges over atomic values; matches value leaves."""

    sigil = "$"
    kind = "value"

    def admits(self, marking: object) -> bool:
        return isinstance(marking, Value)


class TreeVar(_BaseVar):
    """Ranges over whole subtrees; the non-*simple* feature.

    Tree variables may only appear as pattern leaves (they stand for an
    entire subtree) and at most once in a rule body (Definition 3.1(3) —
    allowing repeats would let rules test tree equality, which breaks
    monotonicity, Proposition 3.1(2)).
    """

    sigil = "*"
    kind = "tree"


Variable = Union[LabelVar, FunVar, ValueVar, TreeVar]
NodeVariable = Union[LabelVar, FunVar, ValueVar]  # variables binding a marking


def binds_marking(variable: Variable) -> bool:
    """True for variables that bind a single marking (not a subtree)."""
    return isinstance(variable, (LabelVar, FunVar, ValueVar))


def marking_for(variable: NodeVariable, binding: object) -> object:
    """Validate that ``binding`` suits ``variable`` and return the marking."""
    if isinstance(variable, LabelVar) and isinstance(binding, Label):
        return binding
    if isinstance(variable, FunVar) and isinstance(binding, FunName):
        return binding
    if isinstance(variable, ValueVar) and isinstance(binding, Value):
        return binding
    raise TypeError(f"{variable} cannot be bound to {binding!r}")


def variable_sort_key(variable: Variable):
    return (variable.kind, variable.name)
