"""Concrete syntax for positive queries.

The rule syntax follows the paper, with explicit sigils for the four
variable kinds (the paper uses fonts, which plain text cannot carry)::

    songs{$x} :- doc1/directory{cd{title{$x}, singer{"Carla Bruni"},
                                   rating{"***"}}}

* ``$x``  — value variable
* ``@x``  — label variable
* ``#x``  — function variable
* ``*X``  — tree variable
* ``!Name`` — a function-name constant (a service call in a head, or a
  call to match in a body)
* ``[a.(b|c)*]`` — a regular path expression (Section 5)

A rule is ``head :- conjunct, conjunct, …`` where each conjunct is either a
body atom ``doc/pattern`` or an inequality ``x != y``.  Several rules may be
separated by ``;`` (used by :class:`~paxml.system.service.UnionQueryService`).
``%`` starts a comment to end of line.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..tree.node import FunName, Label, Marking, Value
from ..tree.parser import ParseError, Token, TokenStream
from .pattern import PatternNode, RegexSpec
from .rule import BodyAtom, Inequality, InequalityOperand, PositiveQuery
from .variables import FunVar, LabelVar, TreeVar, ValueVar, Variable

_VAR_SIGILS = {
    "DOLLAR": ValueVar,
    "AT": LabelVar,
    "HASH": FunVar,
    "STAR": TreeVar,
}


def _parse_number_marking(text: str) -> Value:
    return Value(float(text)) if "." in text else Value(int(text))


def _parse_spec(stream: TokenStream):
    """Parse one node spec: marking, variable, or regex."""
    token = stream.peek()
    if token.kind in _VAR_SIGILS:
        stream.next()
        name = stream.expect("IDENT")
        return _VAR_SIGILS[token.kind](name.text)
    if token.kind == "BANG":
        stream.next()
        nxt = stream.peek()
        if nxt.kind == "HASH":  # tolerate "!#x" as a function variable
            stream.next()
            return FunVar(stream.expect("IDENT").text)
        return FunName(stream.expect("IDENT").text)
    if token.kind == "LBRACKET":
        stream.next()
        pieces: List[str] = []
        depth = 1
        while True:
            inner = stream.next()
            if inner.kind == "EOF":
                raise stream.error("unterminated regular path expression")
            if inner.kind == "LBRACKET":
                depth += 1
            elif inner.kind == "RBRACKET":
                depth -= 1
                if depth == 0:
                    break
            if inner.kind == "STRING":
                pieces.append(f'"{inner.text}"')
            else:
                pieces.append(inner.text)
        text = "".join(pieces)
        try:
            return RegexSpec(text)
        except ValueError as exc:
            raise ParseError(str(exc), stream.text, token.pos) from exc
    if token.kind == "IDENT":
        stream.next()
        if token.text == "true":
            return Value(True)
        if token.text == "false":
            return Value(False)
        return Label(token.text)
    if token.kind == "BQUOTE":
        stream.next()
        return Label(token.text)
    if token.kind == "STRING":
        stream.next()
        return Value(token.text)
    if token.kind == "NUMBER":
        stream.next()
        return _parse_number_marking(token.text)
    raise stream.error(f"expected a pattern node, found {token.kind} {token.text!r}")


def parse_pattern_node(stream: TokenStream) -> PatternNode:
    spec = _parse_spec(stream)
    children: List[PatternNode] = []
    if stream.accept("LBRACE"):
        if stream.peek().kind != "RBRACE":
            children.append(parse_pattern_node(stream))
            while stream.accept("COMMA"):
                children.append(parse_pattern_node(stream))
        stream.expect("RBRACE")
    try:
        return PatternNode(spec, children)
    except ValueError as exc:
        raise ParseError(str(exc), stream.text, stream.peek().pos) from exc


def parse_pattern(text: str) -> PatternNode:
    """Parse a standalone tree pattern, e.g. ``parse_pattern('a{$x, *T}')``."""
    stream = TokenStream(text)
    pattern = parse_pattern_node(stream)
    stream.expect("EOF")
    return pattern


def _parse_inequality_operand(stream: TokenStream) -> InequalityOperand:
    spec = _parse_spec(stream)
    if isinstance(spec, RegexSpec):
        raise stream.error("regular path expressions cannot appear in inequalities")
    return spec  # Variables and markings are both valid operands.


def _is_atom_start(stream: TokenStream) -> bool:
    """An atom is ``IDENT '/' …``; anything else is an inequality."""
    token = stream.peek()
    if token.kind != "IDENT":
        return False
    following = stream.tokens[stream.index + 1]
    return following.kind == "SLASH"


def _parse_conjunct(stream: TokenStream) -> Union[BodyAtom, Inequality]:
    if _is_atom_start(stream):
        document = stream.expect("IDENT").text
        stream.expect("SLASH")
        pattern = parse_pattern_node(stream)
        return BodyAtom(document, pattern)
    left = _parse_inequality_operand(stream)
    stream.expect("NEQ")
    right = _parse_inequality_operand(stream)
    try:
        return Inequality(left, right)
    except (TypeError, ValueError) as exc:
        raise ParseError(str(exc), stream.text, stream.peek().pos) from exc


def parse_query_from_stream(stream: TokenStream,
                            name: Optional[str] = None) -> PositiveQuery:
    head = parse_pattern_node(stream)
    body: List[BodyAtom] = []
    inequalities: List[Inequality] = []
    stream.expect("TURNSTILE")
    if stream.peek().kind not in ("EOF", "SEMI"):
        conjuncts = [_parse_conjunct(stream)]
        while stream.accept("COMMA"):
            conjuncts.append(_parse_conjunct(stream))
        for conjunct in conjuncts:
            if isinstance(conjunct, BodyAtom):
                body.append(conjunct)
            else:
                inequalities.append(conjunct)
    try:
        return PositiveQuery(head, body, inequalities, name=name)
    except ValueError as exc:
        raise ParseError(str(exc), stream.text, stream.peek().pos) from exc


def parse_query(text: str, name: Optional[str] = None) -> PositiveQuery:
    """Parse a single rule.

    >>> q = parse_query('t{$x, $y} :- d/r{t{c0{$x}, c1{$y}}}')
    >>> q.is_simple
    True
    """
    stream = TokenStream(text)
    query = parse_query_from_stream(stream, name=name)
    stream.expect("EOF")
    return query


def parse_queries(text: str, name: Optional[str] = None) -> List[PositiveQuery]:
    """Parse ``;``-separated rules (the body of a union service)."""
    stream = TokenStream(text)
    queries: List[PositiveQuery] = []
    while stream.peek().kind != "EOF":
        queries.append(parse_query_from_stream(stream, name=name))
        if not stream.accept("SEMI"):
            break
    stream.expect("EOF")
    if not queries:
        raise ParseError("expected at least one rule", text, 0)
    return queries
