"""Positive AXML tree patterns (Section 3.1) and their instantiation.

A tree pattern is a tree whose node specifications are markings (labels,
function names, atomic values), typed variables, or — in the positive+reg
extension of Section 5 — a :class:`RegexSpec` standing for a downward path
whose label word belongs to a regular language.

Given a typing-respecting assignment µ, :func:`instantiate` computes µ(p);
the matcher (:mod:`paxml.query.matching`) enumerates all µ with
``µ(p) ⊆ d``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ..automata.nfa import NFA
from ..automata.regex import Regex, parse_regex
from ..tree.node import FunName, Label, Marking, Node, Value
from .variables import FunVar, LabelVar, TreeVar, ValueVar, Variable, binds_marking


class RegexSpec:
    """A regular path expression used in place of a label (Section 5).

    The node carrying this spec matches document node ``n`` when there is a
    downward path ``n = n0 … nm`` whose label word is accepted; the pattern's
    children then have to match below the path's *end node* ``nm``.
    """

    __slots__ = ("regex", "nfa", "_text")

    def __init__(self, regex: Union[Regex, str]):
        if isinstance(regex, str):
            regex = parse_regex(regex)
        self.regex = regex
        self.nfa = NFA.from_regex(regex)
        self._text = str(regex)
        if self.nfa.accepts_empty():
            raise ValueError(
                f"regex {self._text!r} accepts the empty word; a zero-length "
                "path has no end node to anchor the pattern at (Section 5)"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RegexSpec) and other._text == self._text

    def __hash__(self) -> int:
        return hash(("RegexSpec", self._text))

    def __repr__(self) -> str:
        return f"RegexSpec({self._text!r})"

    def __str__(self) -> str:
        return f"[{self._text}]"


NodeSpec = Union[Marking, Variable, RegexSpec]


class PatternNode:
    """One node of a tree pattern: a spec plus children patterns."""

    __slots__ = ("spec", "children")

    def __init__(self, spec: NodeSpec, children: Optional[List["PatternNode"]] = None):
        self.spec = spec
        self.children: List[PatternNode] = list(children or [])
        if isinstance(spec, (Value, ValueVar, TreeVar)) and self.children:
            raise ValueError(
                f"{spec} patterns must be leaves: values are leaves (Def. 2.1) "
                "and tree variables stand for whole subtrees"
            )

    def iter_nodes(self) -> Iterator["PatternNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def variables(self) -> List[Variable]:
        """All variables, in pre-order, possibly with repeats."""
        return [n.spec for n in self.iter_nodes()
                if isinstance(n.spec, (LabelVar, FunVar, ValueVar, TreeVar))]

    def has_tree_vars(self) -> bool:
        return any(isinstance(n.spec, TreeVar) for n in self.iter_nodes())

    def has_regex(self) -> bool:
        return any(isinstance(n.spec, RegexSpec) for n in self.iter_nodes())

    def size(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Longest root-to-leaf path in edges — how deep matching inspects."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def copy(self) -> "PatternNode":
        return PatternNode(self.spec, [c.copy() for c in self.children])

    def __repr__(self) -> str:
        return f"PatternNode<{pattern_to_text(self)}>"


Assignment = Dict[Variable, Union[Marking, Node]]


def instantiate(pattern: PatternNode, assignment: Assignment) -> Node:
    """Compute µ(p): substitute every variable and build a plain tree.

    Tree-variable images are deep-copied so instantiations never share
    nodes with documents.  Raises :class:`KeyError` on unbound variables and
    :class:`ValueError` on regex specs (those denote path constraints, not
    trees; heads may not contain them).
    """
    spec = pattern.spec
    if isinstance(spec, RegexSpec):
        raise ValueError("regular path expressions cannot appear in rule heads")
    if isinstance(spec, TreeVar):
        image = assignment[spec]
        if not isinstance(image, Node):
            raise TypeError(f"tree variable {spec} bound to non-tree {image!r}")
        return image.copy()
    if isinstance(spec, (LabelVar, FunVar, ValueVar)):
        image = assignment[spec]
        if isinstance(image, Node):
            raise TypeError(f"{spec.kind} variable {spec} bound to a tree")
        if not spec.admits(image):
            raise TypeError(f"{spec} cannot be bound to {image!r}")
        marking: Marking = image  # type: ignore[assignment]
    else:
        marking = spec  # a concrete marking
    return Node(marking, [instantiate(child, assignment) for child in pattern.children])


def pattern_to_text(pattern: PatternNode) -> str:
    """Concrete syntax for a pattern (round-trips with the query parser)."""
    spec = pattern.spec
    if isinstance(spec, Label):
        head = spec.name
    elif isinstance(spec, FunName):
        head = "!" + spec.name
    elif isinstance(spec, Value):
        if isinstance(spec.value, bool):
            head = "true" if spec.value else "false"
        elif isinstance(spec.value, (int, float)):
            head = repr(spec.value)
        else:
            escaped = spec.value.replace("\\", "\\\\").replace('"', '\\"')
            head = f'"{escaped}"'
    elif isinstance(spec, (LabelVar, FunVar, ValueVar, TreeVar)):
        head = str(spec)
    elif isinstance(spec, RegexSpec):
        head = str(spec)
    else:
        raise TypeError(f"unknown pattern spec {spec!r}")
    if not pattern.children:
        return head
    inner = ", ".join(pattern_to_text(child) for child in pattern.children)
    return f"{head}{{{inner}}}"


def from_tree(tree: Node) -> PatternNode:
    """Lift a plain tree to the (variable-free) pattern matching exactly it."""
    return PatternNode(tree.marking, [from_tree(child) for child in tree.children])
