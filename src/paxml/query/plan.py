"""Compiled match plans: the query compiler over the marking indexes.

:func:`paxml.query.matching.enumerate_assignments` realizes Proposition
3.1's PTIME bound as naive backtracking — sibling patterns join in author
order, every candidate set is a linear scan of ``node.children``, each
binding extension copies the whole assignment dict, and inequalities are
checked only on complete assignments.  This module compiles each
:class:`~paxml.query.rule.PositiveQuery` once into an executable plan
that removes all four costs:

* **sibling ordering** — each pattern node's children are reordered by
  static selectivity (constant subpatterns before regex paths before
  marking variables before tree variables, bigger constants first), so
  cheap filters run before binding generators;
* **constant subpattern hash-consing** — variable-free subpatterns are
  instantiated once into plain trees (their :func:`canonical_key` is the
  hash-consing identity); duplicate or subsumed constant siblings are
  dropped at compile time (a sibling whose tree is subsumed by another's
  embeds wherever the other does, non-injectively), and at run time the
  whole subpattern becomes one :func:`is_subsumed` test against the
  *persistent* subsumption cache — repeated evaluations pay nothing;
* **indexed candidates** — constant-marked siblings draw candidates from
  :func:`paxml.tree.index.child_bucket` instead of scanning children,
  and a sibling shaped ``p{q{$z}, …}`` with ``$z`` bound probes the
  value index (:func:`~paxml.tree.index.probe_bucket`) so an equi-join
  touches only the rows that can match;
* **undo-log binding with pushed-down checks** — one mutable assignment
  dict threads through the whole body join; binding a variable pushes it
  on a trail (undone on backtrack, no ``dict(binding)`` copies), and
  every inequality fires the moment its second operand binds, pruning
  the search at the earliest possible point;
* **selectivity-ordered joins** — body atoms are greedily ordered per
  evaluation using the per-document marking census: atoms whose constant
  markings are rare (low estimated fanout) run first, and atoms sharing
  already-bound variables are discounted, so the join frontier stays
  small.

Delta evaluation (:func:`QueryPlan.execute_delta`) keeps the semi-naive
contract of :func:`~paxml.query.matching.enumerate_assignments_delta`:
one pass per changed atom, that atom restricted to post-cutoff data (and
forced first in the join order — the delta side of ``Δ⋈full``), the
``seen`` set filtering re-derived assignments.  Constant-subpattern
shortcuts in delta mode may report an embedding as "new" liberally (the
cached subsumption verdict does not say *which* nodes the homomorphism
used); that over-approximation is sound because ``seen`` already filters
every previously-delivered assignment — only completeness (never missing
a genuinely new assignment) is load-bearing, and the liberal report
preserves it.

The naive matcher stays untouched as the test oracle; the
``perf.flags.query_planner`` switchboard bit routes evaluation through
plans and back at runtime.

**Closure lowering** (``perf.flags.closure_compile``): on first planned
execution each plan is additionally lowered to a tree of specialized
Python closures, one per plan node — the per-call ``isinstance`` ladder
of ``_match_node``/``_match_node_delta`` is resolved once at lowering
time, candidate access paths (probe, bucket, child scan) are selected
statically, and sibling continuations are precomposed.  Lowering also
enables the *runtime-const* subpattern shortcut: a closed subpattern
(no regex, no tree variables) whose node variables are all bound by the
time the join reaches it is instantiated into a plain tree, hash-consed
per (plan node, bound values), and matched with a single
:func:`is_subsumed` test against the persistent subsumption cache —
this is what makes ``const_subpattern_tests`` fire on join shapes like
``t{c0{$z}, c1{$y}}`` with ``$z`` bound, where the compile-time const
path never could (no benchmark query contains a variable-free
subpattern).  With the flag off, ``_run_join`` drives the PR 4
interpreter unchanged — it stays the oracle the lowered path is tested
against.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .. import perf
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..tree import index as tree_index
from ..tree.node import FunName, Label, Marking, Node, Value
from ..tree.reduction import canonical_key
from ..tree.subsumption import is_subsumed
from .matching import MissingDocumentError, _regex_end_nodes, binding_keyer
from .pattern import Assignment, PatternNode, RegexSpec, instantiate, pattern_to_text
from .rule import Inequality, PositiveQuery
from .variables import FunVar, LabelVar, TreeVar, ValueVar, Variable

_CONST_MARKINGS = (Label, FunName, Value)
_NODE_VARS = (LabelVar, FunVar, ValueVar)


class PlanNode:
    """One pattern node of a compiled plan.

    ``children`` are in planned (selectivity) order.  ``const_tree`` is
    the instantiated plain tree when the whole subpattern is variable-
    and regex-free — matching it at a document node is exactly the
    subsumption test ``const_tree ⊑ node``.  ``probe`` is the optional
    value-index access path ``(q_marking, operand)``: document candidates
    for this node must own a ``q_marking`` child holding the operand's
    value as a leaf.
    """

    __slots__ = ("spec", "children", "const_tree", "const_key", "probe")

    def __init__(self, spec, children: List["PlanNode"]):
        self.spec = spec
        self.children = children
        self.const_tree: Optional[Node] = None
        self.const_key = None
        self.probe: Optional[Tuple[Marking, object]] = None

    def to_pattern(self) -> PatternNode:
        """The planned subpattern as a plain pattern (for display)."""
        return PatternNode(self.spec, [c.to_pattern() for c in self.children])

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def _selectivity_rank(node: PlanNode) -> Tuple[int, int]:
    """Sort key: lower = matched earlier = expected more selective."""
    spec = node.spec
    if node.const_tree is not None:
        group = 0          # one cached subsumption test, binds nothing
    elif isinstance(spec, _CONST_MARKINGS):
        group = 1          # constant bucket lookup, variables below
    elif isinstance(spec, RegexSpec):
        group = 2
    elif isinstance(spec, ValueVar):
        group = 3
    elif isinstance(spec, FunVar):
        group = 4
    elif isinstance(spec, LabelVar):
        group = 5
    else:                  # TreeVar: matches any subtree, defer to last
        group = 6
    return (group, -node.size())


def _compile_pattern(pattern: PatternNode) -> PlanNode:
    children = [_compile_pattern(child) for child in pattern.children]
    node = PlanNode(pattern.spec, children)
    is_const = isinstance(pattern.spec, _CONST_MARKINGS) and all(
        child.const_tree is not None for child in children)
    if is_const:
        node.const_tree = instantiate(pattern, {})
        node.const_key = canonical_key(node.const_tree)
        return node
    # Hash-cons constant siblings by canonical key, then drop every
    # constant sibling subsumed by another: subsumption homomorphisms are
    # non-injective, so an embedding of the dominating sibling restricts
    # to one of the dominated (both may map onto the same document
    # child) — the dominated conjunct is redundant.
    consts: List[PlanNode] = []
    rest: List[PlanNode] = []
    for child in children:
        if child.const_tree is None:
            rest.append(child)
            continue
        if any(is_subsumed(child.const_tree, kept.const_tree)
               for kept in consts):
            continue
        consts = [kept for kept in consts
                  if not is_subsumed(kept.const_tree, child.const_tree)]
        consts.append(child)
    node.children = sorted(consts + rest, key=_selectivity_rank)
    if isinstance(pattern.spec, (Label, FunName)):
        node.probe = _find_probe(node)
    return node


def _find_probe(node: PlanNode) -> Optional[Tuple[Marking, object]]:
    """An access path ``(q_marking, operand)`` for value-index narrowing.

    Looks for a child ``q`` with a constant label/function marking that
    itself requires a value leaf (a ``Value`` constant or a ``ValueVar``)
    directly below — a necessary condition every candidate must satisfy,
    checkable through :func:`paxml.tree.index.probe_bucket` in O(answer)
    once the operand is known.
    """
    for q in node.children:
        if not isinstance(q.spec, (Label, FunName)):
            continue
        for leaf in q.children:
            if isinstance(leaf.spec, Value):
                return (q.spec, leaf.spec)
            if isinstance(leaf.spec, ValueVar):
                return (q.spec, leaf.spec)
    return None


class PlanAtom:
    """One compiled ``d/p`` conjunct."""

    __slots__ = ("document", "root", "variables", "specs")

    def __init__(self, document: str, root: PlanNode):
        self.document = document
        self.root = root
        self.variables: Tuple[Variable, ...] = tuple(_ordered_variables(root))
        self.specs: Tuple[object, ...] = tuple(_iter_specs(root))


def _ordered_variables(root: PlanNode) -> List[Variable]:
    out: List[Variable] = []
    seen: Set[Variable] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node.spec, (LabelVar, FunVar, ValueVar, TreeVar)) \
                and node.spec not in seen:
            seen.add(node.spec)
            out.append(node.spec)
        stack.extend(node.children)
    return out


def _iter_specs(root: PlanNode):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node.spec
        if node.const_tree is None:
            stack.extend(node.children)


class QueryPlan:
    """An executable plan for one positive query."""

    def __init__(self, query: PositiveQuery):
        self.query = query
        self.atoms: List[PlanAtom] = [
            PlanAtom(atom.document, _compile_pattern(atom.pattern))
            for atom in query.body
        ]
        self._closure_backend = None  # lazily lowered, see _closures()
        self.always_false = False
        # var → other operands it must differ from (vars or constants);
        # checked the moment the *second* operand binds.
        self.ineq_by_var: Dict[Variable, List[object]] = {}
        for ineq in query.inequalities:
            left_var = isinstance(ineq.left, _NODE_VARS)
            right_var = isinstance(ineq.right, _NODE_VARS)
            if left_var:
                self.ineq_by_var.setdefault(ineq.left, []).append(ineq.right)
            if right_var:
                self.ineq_by_var.setdefault(ineq.right, []).append(ineq.left)
            if not left_var and not right_var and ineq.left == ineq.right:
                self.always_false = True

    # ------------------------------------------------------------------
    # join ordering
    # ------------------------------------------------------------------

    def _atom_cost(self, atom: PlanAtom, documents: Mapping[str, Node],
                   bound: Set[Variable]) -> float:
        """Log-scale estimate of the atom's result multiplicity.

        Constant markings contribute their census count in the document
        (low-fanout buckets are cheap); unbound marking variables and
        regex paths contribute the document size; bound variables and
        tree variables act as filters and cost nothing.
        """
        counts, total = tree_index.marking_census(documents[atom.document])
        cost = 0.0
        for spec in atom.specs:
            if isinstance(spec, _CONST_MARKINGS):
                cost += math.log1p(counts.get(spec, 0))
            elif isinstance(spec, RegexSpec):
                cost += math.log1p(total)
            elif isinstance(spec, TreeVar):
                continue
            elif spec in bound:
                continue
            else:
                cost += math.log1p(total)
        return cost

    def join_order(self, documents: Mapping[str, Node],
                   first: Optional[int] = None) -> List[int]:
        """Greedy selectivity order over body atoms (ties: author order)."""
        remaining = list(range(len(self.atoms)))
        bound: Set[Variable] = set()
        order: List[int] = []
        if first is not None:
            remaining.remove(first)
            order.append(first)
            bound.update(self.atoms[first].variables)
        while remaining:
            best = min(remaining, key=lambda i: (
                self._atom_cost(self.atoms[i], documents, bound), i))
            remaining.remove(best)
            order.append(best)
            bound.update(self.atoms[best].variables)
        return order

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _check_documents(self, documents: Mapping[str, Node]) -> bool:
        """Raise on missing documents; False when an atom cannot match."""
        for atom in self.atoms:
            if atom.document not in documents:
                raise MissingDocumentError(atom.document, documents.keys())
        for atom in self.atoms:
            spec = atom.root.spec
            if isinstance(spec, _CONST_MARKINGS) \
                    and spec != documents[atom.document].marking:
                return False
        return True

    def execute(self, documents: Mapping[str, Node]) -> List[Assignment]:
        """All distinct satisfying assignments (= naive enumeration)."""
        perf.stats.planned_evaluations += 1
        if not self._check_documents(documents) or self.always_false:
            return []
        state = _ExecState(self.ineq_by_var, cutoff=-1)
        results: List[Assignment] = []
        order = self.join_order(documents)
        self._run_join(order, None, documents, state, results, seen=None)
        return results

    def execute_delta(self, documents: Mapping[str, Node], cutoff: int,
                      seen: set) -> List[Assignment]:
        """Satisfying assignments not yet in ``seen`` (updated in place)."""
        perf.stats.planned_delta_evaluations += 1
        if not self._check_documents(documents) or self.always_false:
            return []
        results: List[Assignment] = []
        for i, atom in enumerate(self.atoms):
            if documents[atom.document].version <= cutoff:
                continue
            state = _ExecState(self.ineq_by_var, cutoff=cutoff)
            order = self.join_order(documents, first=i)
            self._run_join(order, i, documents, state, results, seen=seen)
        return results

    def _closures(self):
        """The lowered (full, delta) matcher closures, one pair per atom.

        Lowered once per plan, on first closure-path execution; the
        result is cached on the plan (plans are immutable), so toggling
        ``perf.flags.closure_compile`` back and forth costs nothing.
        """
        backend = self._closure_backend
        if backend is None:
            ineq_vars = frozenset(self.ineq_by_var)
            backend = self._closure_backend = (
                [_compile_full(atom.root, ineq_vars) for atom in self.atoms],
                [_compile_delta(atom.root, ineq_vars) for atom in self.atoms],
            )
            perf.stats.closure_compilations += 1
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.PLAN_LOWERED, rule=str(self.query),
                             atoms=len(self.atoms))
        return backend

    def _run_join(self, order: List[int], delta_atom: Optional[int],
                  documents: Mapping[str, Node], state: "_ExecState",
                  results: List[Assignment], seen: Optional[set]) -> None:
        # Variables first bound at each join position are static given the
        # order, so per-atom extensions are deduplicated on exactly those.
        new_vars: List[Tuple[Variable, ...]] = []
        bound: Set[Variable] = set()
        for index in order:
            fresh = tuple(v for v in self.atoms[index].variables
                          if v not in bound)
            new_vars.append(fresh)
            bound.update(fresh)
        binding, trail = state.binding, state.trail
        if perf.flags.closure_compile:
            full_matchers, delta_matchers = self._closures()
        else:
            full_matchers = delta_matchers = None

        bkey = binding_keyer(self.query) if seen is not None else None

        def run_atom(k: int) -> None:
            if k == len(order):
                if seen is not None:
                    key = bkey(binding)
                    if key in seen:
                        return
                    seen.add(key)
                results.append(dict(binding))
                return
            atom = self.atoms[order[k]]
            root = documents[atom.document]
            fresh = new_vars[k]
            # Collect this atom's distinct extensions of the current
            # binding before recursing: many embeddings induce the same
            # extension (non-injective matching), and deduplicating here
            # is what keeps the join polynomial.
            exts: List[Tuple[object, ...]] = []
            ext_keys: Set[Tuple[object, ...]] = set()

            def emit() -> None:
                key = tuple(
                    ("t", canonical_key(binding[v]))
                    if isinstance(binding[v], Node) else binding[v]
                    for v in fresh)
                if key not in ext_keys:
                    ext_keys.add(key)
                    exts.append(tuple(binding[v] for v in fresh))

            mark = len(trail)
            if delta_atom is not None and order[k] == delta_atom:
                if delta_matchers is not None:
                    delta_matchers[order[k]](root, state, True,
                                             lambda _new: emit())
                else:
                    _match_node_delta(atom.root, root, state, True,
                                      lambda _new: emit())
            elif full_matchers is not None:
                full_matchers[order[k]](root, state, emit)
            else:
                _match_node(atom.root, root, state, emit)
            state.undo_to(mark)
            for ext in exts:
                ok = True
                for variable, value in zip(fresh, ext):
                    if not state.bind(variable, value):
                        ok = False
                        break
                if ok:
                    run_atom(k + 1)
                state.undo_to(mark)

        run_atom(0)


class _ExecState:
    """Undo-log assignment shared by the whole join.

    ``bind`` installs a variable, records it on the trail, and fires
    every inequality whose second operand just became known;
    ``undo_to`` rolls the assignment back to a trail mark.  No
    ``dict(binding)`` copies happen anywhere on the search path — a full
    assignment is copied out only when it reaches the join's end.
    """

    __slots__ = ("binding", "trail", "ineq_by_var", "cutoff", "_new_memo")

    def __init__(self, ineq_by_var: Dict[Variable, List[object]], cutoff: int):
        self.binding: Dict[Variable, object] = {}
        self.trail: List[Variable] = []
        self.ineq_by_var = ineq_by_var
        self.cutoff = cutoff
        self._new_memo: Dict[Tuple[int, object], List[Node]] = {}

    def bind(self, variable: Variable, value: object) -> bool:
        others = self.ineq_by_var.get(variable)
        if others is not None:
            binding = self.binding
            for other in others:
                resolved = (binding.get(other)
                            if isinstance(other, _NODE_VARS) else other)
                if resolved is not None and resolved == value:
                    return False
        self.binding[variable] = value
        self.trail.append(variable)
        return True

    def undo_to(self, mark: int) -> None:
        binding, trail = self.binding, self.trail
        while len(trail) > mark:
            del binding[trail.pop()]

    def new_children(self, node: Node,
                     candidates: Sequence[Node], key: object) -> List[Node]:
        """Post-cutoff members of ``candidates``, memoised per (node, key)."""
        memo_key = (id(node), key)
        cached = self._new_memo.get(memo_key)
        if cached is None:
            cutoff = self.cutoff
            cached = [c for c in candidates if c.version > cutoff]
            self._new_memo[memo_key] = cached
        return cached


# ----------------------------------------------------------------------
# Plan executors: callback-style analogues of the naive matchers, with
# indexed candidates, constant-subpattern subsumption shortcuts, and the
# shared undo-log binding.
# ----------------------------------------------------------------------


def _candidates(plan_node: PlanNode, node: Node,
                state: _ExecState) -> Sequence[Node]:
    spec = plan_node.spec
    if isinstance(spec, _CONST_MARKINGS):
        if plan_node.probe is not None:
            q_marking, operand = plan_node.probe
            value = (operand if isinstance(operand, Value)
                     else state.binding.get(operand))
            if value is not None:
                return tree_index.probe_bucket(node, spec, q_marking, value)
        return tree_index.child_bucket(node, spec)
    return node.children


def _match_node(plan_node: PlanNode, node: Node, state: _ExecState,
                cont: Callable[[], None]) -> None:
    """Invoke ``cont`` once per distinct binding extension embedding
    ``plan_node`` at ``node`` (extensions live in ``state.binding``)."""
    spec = plan_node.spec
    if plan_node.const_tree is not None:
        perf.stats.const_subpattern_tests += 1
        if is_subsumed(plan_node.const_tree, node):
            cont()
        return
    if isinstance(spec, RegexSpec):
        for end in _regex_end_nodes(spec, node):
            _match_children(plan_node.children, 0, end, state, cont)
        return
    if isinstance(spec, TreeVar):
        if state.bind(spec, node):
            cont()
            state.undo_to(len(state.trail) - 1)
        return
    if isinstance(spec, _NODE_VARS):
        if not spec.admits(node.marking):
            return
        bound = state.binding.get(spec)
        if bound is not None:
            if bound == node.marking:
                _match_children(plan_node.children, 0, node, state, cont)
        elif state.bind(spec, node.marking):
            _match_children(plan_node.children, 0, node, state, cont)
            state.undo_to(len(state.trail) - 1)
        return
    if spec == node.marking:
        _match_children(plan_node.children, 0, node, state, cont)


def _match_children(children: List[PlanNode], i: int, node: Node,
                    state: _ExecState, cont: Callable[[], None]) -> None:
    if i == len(children):
        cont()
        return
    first = children[i]

    def rest() -> None:
        _match_children(children, i + 1, node, state, cont)

    for child in _candidates(first, node, state):
        _match_node(first, child, state, rest)


def _delta_candidates(plan_node: PlanNode, node: Node, state: _ExecState,
                      need_new: bool) -> Sequence[Node]:
    spec = plan_node.spec
    if isinstance(spec, _CONST_MARKINGS):
        if plan_node.probe is not None:
            q_marking, operand = plan_node.probe
            value = (operand if isinstance(operand, Value)
                     else state.binding.get(operand))
            if value is not None:
                probed = tree_index.probe_bucket(node, spec, q_marking, value)
                if need_new:
                    return [c for c in probed if c.version > state.cutoff]
                return probed
        bucket = tree_index.child_bucket(node, spec)
        if need_new:
            return state.new_children(node, bucket, spec)
        return bucket
    if need_new:
        return state.new_children(node, node.children, None)
    return node.children


def _match_node_delta(plan_node: PlanNode, node: Node, state: _ExecState,
                      need_new: bool,
                      cont: Callable[[bool], None]) -> None:
    """Delta analogue; ``cont`` receives whether the subtree's embedding
    (liberally) touched post-cutoff data.  See the module docstring for
    why liberal reporting on constant shortcuts is sound."""
    if need_new and node.version <= state.cutoff:
        return
    spec = plan_node.spec
    if plan_node.const_tree is not None:
        perf.stats.const_subpattern_tests += 1
        if is_subsumed(plan_node.const_tree, node):
            cont(node.version > state.cutoff)
        return
    if isinstance(spec, RegexSpec):
        for end in _regex_end_nodes(spec, node):
            end_new = end.uid > state.cutoff
            _match_children_delta(plan_node.children, 0, end, state,
                                  need_new and not end_new, end_new, cont)
        return
    if isinstance(spec, TreeVar):
        if state.bind(spec, node):
            cont(node.version > state.cutoff)
            state.undo_to(len(state.trail) - 1)
        return
    if isinstance(spec, _NODE_VARS):
        if not spec.admits(node.marking):
            return
        self_new = node.uid > state.cutoff
        bound = state.binding.get(spec)
        if bound is not None:
            if bound == node.marking:
                _match_children_delta(plan_node.children, 0, node, state,
                                      need_new and not self_new, self_new,
                                      cont)
        elif state.bind(spec, node.marking):
            _match_children_delta(plan_node.children, 0, node, state,
                                  need_new and not self_new, self_new, cont)
            state.undo_to(len(state.trail) - 1)
        return
    if spec == node.marking:
        self_new = node.uid > state.cutoff
        _match_children_delta(plan_node.children, 0, node, state,
                              need_new and not self_new, self_new, cont)


def _match_children_delta(children: List[PlanNode], i: int, node: Node,
                          state: _ExecState, need_new: bool, have_new: bool,
                          cont: Callable[[bool], None]) -> None:
    if i == len(children):
        if not need_new:
            cont(have_new)
        return
    first = children[i]
    # Only the last remaining sibling inherits a hard newness obligation —
    # the in-pattern ``Δ⋈full + full⋈Δ`` split of the naive delta matcher,
    # preserved under the planned sibling order.
    first_need = need_new and i == len(children) - 1

    def rest(sub_new: bool) -> None:
        new_now = have_new or sub_new
        _match_children_delta(children, i + 1, node, state,
                              need_new and not new_now, new_now, cont)

    for child in _delta_candidates(first, node, state, first_need):
        _match_node_delta(first, child, state, first_need, rest)


# ----------------------------------------------------------------------
# Closure lowering (perf.flags.closure_compile).
#
# Each plan node becomes one specialized closure with the same contract
# as _match_node / _match_node_delta, but with every per-call decision
# the interpreter re-derives — the spec's kind, the candidate access
# path, the admits() class, the sibling continuation — resolved once at
# lowering time.  The interpreter above stays byte-for-byte untouched as
# the oracle.
# ----------------------------------------------------------------------

_ADMITS = {LabelVar: Label, FunVar: FunName, ValueVar: Value}

# Hash-consed runtime-const instantiations: (plan-node id, bound values)
# → the instantiated plain tree.  Reusing one tree object per valuation
# keeps its (uid, version) stable, so every repeated test lands in the
# persistent subsumption cache.
_RT_CONST_CACHE: Dict[tuple, Node] = {}
_RT_CONST_MAX = 200_000

perf.register_cache(_RT_CONST_CACHE.clear)


def _rt_const_info(plan_node: PlanNode):
    """``(variables, template)`` when the subpattern is *runtime-const*.

    A subpattern qualifies when it is closed — no regex edges and no tree
    variables anywhere — so that once its node variables are bound the
    whole subtree denotes one concrete tree: matching it at a node is
    then exactly ``instantiate(template, binding) ⊑ node``, one cached
    subsumption test instead of a structural search.  (An all-constant
    subpattern never reaches here: ``const_tree`` already covers it.)
    """
    variables: List[Variable] = []
    stack = [plan_node]
    while stack:
        node = stack.pop()
        spec = node.spec
        if isinstance(spec, (RegexSpec, TreeVar)):
            return None
        if isinstance(spec, _NODE_VARS) and spec not in variables:
            variables.append(spec)
        stack.extend(node.children)
    if not variables:
        return None
    return tuple(variables), plan_node.to_pattern()


def _rt_const_tree(pid: int, template: PatternNode,
                   values: tuple, binding) -> Node:
    key = (pid, values)
    tree = _RT_CONST_CACHE.get(key)
    if tree is None:
        if len(_RT_CONST_CACHE) >= _RT_CONST_MAX:
            _RT_CONST_CACHE.clear()
        tree = instantiate(template, binding)
        _RT_CONST_CACHE[key] = tree
    return tree


def _compile_candidates(plan_node: PlanNode):
    """``(node, state) -> candidates`` with the access path preselected;
    None means the caller should scan ``node.children`` directly."""
    spec = plan_node.spec
    if not isinstance(spec, _CONST_MARKINGS):
        return None
    probe = plan_node.probe
    if probe is None:
        def cand(node, state):
            return tree_index.child_bucket(node, spec)
        return cand
    q_marking, operand = probe
    if isinstance(operand, Value):
        def cand(node, state):
            return tree_index.probe_bucket(node, spec, q_marking, operand)
        return cand

    def cand(node, state):
        value = state.binding.get(operand)
        if value is not None:
            return tree_index.probe_bucket(node, spec, q_marking, value)
        return tree_index.child_bucket(node, spec)
    return cand


def _compile_full(plan_node: PlanNode, ineq_vars: frozenset):
    """Lower one plan node to a ``(node, state, cont)`` closure."""
    spec = plan_node.spec
    const_tree = plan_node.const_tree
    if const_tree is not None:
        def m_const(node, state, cont):
            perf.stats.const_subpattern_tests += 1
            if is_subsumed(const_tree, node):
                cont()
        return m_const
    children_m = _compile_children_full(plan_node.children, ineq_vars)
    if isinstance(spec, RegexSpec):
        def m_regex(node, state, cont):
            for end in _regex_end_nodes(spec, node):
                children_m(end, state, cont)
        return m_regex
    if isinstance(spec, TreeVar):
        # Inequalities only ever constrain node variables, so tree-var
        # binds cannot fail — push/pop the trail inline.
        def m_tree(node, state, cont):
            state.binding[spec] = node
            state.trail.append(spec)
            cont()
            del state.binding[spec]
            state.trail.pop()
        return m_tree
    if isinstance(spec, _NODE_VARS):
        admits = _ADMITS[type(spec)]
        unconstrained = spec not in ineq_vars
        if not plan_node.children:
            # Leaf variables (the overwhelmingly common case: data values
            # under a relation row) skip the empty-children continuation;
            # without inequalities on the variable the bind cannot fail,
            # so the trail discipline inlines too (matchers are
            # symmetric: ``cont`` returns with the trail as it found it).
            if unconstrained:
                def m_var_leaf_free(node, state, cont):
                    marking = node.marking
                    if type(marking) is not admits:
                        return
                    binding = state.binding
                    bound = binding.get(spec)
                    if bound is not None:
                        if bound == marking:
                            cont()
                    else:
                        binding[spec] = marking
                        state.trail.append(spec)
                        cont()
                        del binding[spec]
                        state.trail.pop()
                return m_var_leaf_free

            def m_var_leaf(node, state, cont):
                marking = node.marking
                if type(marking) is not admits:
                    return
                bound = state.binding.get(spec)
                if bound is not None:
                    if bound == marking:
                        cont()
                elif state.bind(spec, marking):
                    cont()
                    state.undo_to(len(state.trail) - 1)
            return m_var_leaf

        def m_var(node, state, cont):
            marking = node.marking
            if type(marking) is not admits:
                return
            bound = state.binding.get(spec)
            if bound is not None:
                if bound == marking:
                    children_m(node, state, cont)
            elif state.bind(spec, marking):
                children_m(node, state, cont)
                state.undo_to(len(state.trail) - 1)
        return m_var

    if not plan_node.children:
        def m_struct_leaf(node, state, cont):
            if spec == node.marking:
                cont()
        return m_struct_leaf

    def m_struct(node, state, cont):
        if spec == node.marking:
            children_m(node, state, cont)

    rt = _rt_const_info(plan_node)
    if rt is None:
        return m_struct
    rt_vars, template = rt
    pid = id(plan_node)

    def m_rt(node, state, cont):
        binding = state.binding
        values = []
        for variable in rt_vars:
            value = binding.get(variable)
            if value is None:
                m_struct(node, state, cont)
                return
            values.append(value)
        tree = _rt_const_tree(pid, template, tuple(values), binding)
        perf.stats.const_subpattern_tests += 1
        if is_subsumed(tree, node):
            cont()
    return m_rt


def _compile_children_full(children: List[PlanNode], ineq_vars: frozenset):
    if not children:
        def tail(node, state, cont):
            cont()
        return tail
    head_m = _compile_full(children[0], ineq_vars)
    cand = _compile_candidates(children[0])
    if len(children) == 1:
        if cand is None:
            def step_last_scan(node, state, cont):
                for child in node.children:
                    head_m(child, state, cont)
            return step_last_scan

        def step_last(node, state, cont):
            for child in cand(node, state):
                head_m(child, state, cont)
        return step_last
    rest_m = _compile_children_full(children[1:], ineq_vars)
    if cand is None:
        def step_scan(node, state, cont):
            def rest():
                rest_m(node, state, cont)
            for child in node.children:
                head_m(child, state, rest)
        return step_scan

    def step(node, state, cont):
        def rest():
            rest_m(node, state, cont)
        for child in cand(node, state):
            head_m(child, state, rest)
    return step


def _compile_candidates_delta(plan_node: PlanNode):
    """``(node, state, need_new) -> candidates``, delta analogue."""
    spec = plan_node.spec
    if not isinstance(spec, _CONST_MARKINGS):
        def cand_scan(node, state, need_new):
            if need_new:
                return state.new_children(node, node.children, None)
            return node.children
        return cand_scan
    probe = plan_node.probe
    if probe is None:
        def cand_bucket(node, state, need_new):
            bucket = tree_index.child_bucket(node, spec)
            if need_new:
                return state.new_children(node, bucket, spec)
            return bucket
        return cand_bucket
    q_marking, operand = probe
    const_operand = isinstance(operand, Value)

    def cand_probe(node, state, need_new):
        value = operand if const_operand else state.binding.get(operand)
        if value is not None:
            probed = tree_index.probe_bucket(node, spec, q_marking, value)
            if need_new:
                cutoff = state.cutoff
                return [c for c in probed if c.version > cutoff]
            return probed
        bucket = tree_index.child_bucket(node, spec)
        if need_new:
            return state.new_children(node, bucket, spec)
        return bucket
    return cand_probe


def _compile_delta(plan_node: PlanNode, ineq_vars: frozenset):
    """Lower one plan node to a ``(node, state, need_new, cont)`` closure;
    ``cont`` receives the (liberal) subtree-newness flag, exactly as
    ``_match_node_delta``."""
    spec = plan_node.spec
    const_tree = plan_node.const_tree
    if const_tree is not None:
        def m_const(node, state, need_new, cont):
            cutoff = state.cutoff
            if need_new and node.version <= cutoff:
                return
            perf.stats.const_subpattern_tests += 1
            if is_subsumed(const_tree, node):
                cont(node.version > cutoff)
        return m_const
    children_m = _compile_children_delta(plan_node.children, ineq_vars)
    if isinstance(spec, RegexSpec):
        def m_regex(node, state, need_new, cont):
            cutoff = state.cutoff
            if need_new and node.version <= cutoff:
                return
            for end in _regex_end_nodes(spec, node):
                end_new = end.uid > cutoff
                children_m(end, state, need_new and not end_new, end_new,
                           cont)
        return m_regex
    if isinstance(spec, TreeVar):
        def m_tree(node, state, need_new, cont):
            cutoff = state.cutoff
            if need_new and node.version <= cutoff:
                return
            state.binding[spec] = node
            state.trail.append(spec)
            cont(node.version > cutoff)
            del state.binding[spec]
            state.trail.pop()
        return m_tree
    if isinstance(spec, _NODE_VARS):
        admits = _ADMITS[type(spec)]
        unconstrained = spec not in ineq_vars
        if not plan_node.children:
            if unconstrained:
                def m_var_leaf_free(node, state, need_new, cont):
                    cutoff = state.cutoff
                    if need_new and node.version <= cutoff:
                        return
                    marking = node.marking
                    if type(marking) is not admits:
                        return
                    self_new = node.uid > cutoff
                    if need_new and not self_new:
                        return
                    binding = state.binding
                    bound = binding.get(spec)
                    if bound is not None:
                        if bound == marking:
                            cont(self_new)
                    else:
                        binding[spec] = marking
                        state.trail.append(spec)
                        cont(self_new)
                        del binding[spec]
                        state.trail.pop()
                return m_var_leaf_free

            def m_var_leaf(node, state, need_new, cont):
                cutoff = state.cutoff
                if need_new and node.version <= cutoff:
                    return
                marking = node.marking
                if type(marking) is not admits:
                    return
                self_new = node.uid > cutoff
                if need_new and not self_new:
                    return
                bound = state.binding.get(spec)
                if bound is not None:
                    if bound == marking:
                        cont(self_new)
                elif state.bind(spec, marking):
                    cont(self_new)
                    state.undo_to(len(state.trail) - 1)
            return m_var_leaf

        def m_var(node, state, need_new, cont):
            cutoff = state.cutoff
            if need_new and node.version <= cutoff:
                return
            marking = node.marking
            if type(marking) is not admits:
                return
            self_new = node.uid > cutoff
            bound = state.binding.get(spec)
            if bound is not None:
                if bound == marking:
                    children_m(node, state, need_new and not self_new,
                               self_new, cont)
            elif state.bind(spec, marking):
                children_m(node, state, need_new and not self_new,
                           self_new, cont)
                state.undo_to(len(state.trail) - 1)
        return m_var

    def m_struct(node, state, need_new, cont):
        cutoff = state.cutoff
        if need_new and node.version <= cutoff:
            return
        if spec == node.marking:
            self_new = node.uid > cutoff
            children_m(node, state, need_new and not self_new, self_new,
                       cont)

    rt = _rt_const_info(plan_node)
    if rt is None:
        return m_struct
    rt_vars, template = rt
    pid = id(plan_node)

    def m_rt(node, state, need_new, cont):
        cutoff = state.cutoff
        if need_new and node.version <= cutoff:
            return
        binding = state.binding
        values = []
        for variable in rt_vars:
            value = binding.get(variable)
            if value is None:
                m_struct(node, state, need_new, cont)
                return
            values.append(value)
        tree = _rt_const_tree(pid, template, tuple(values), binding)
        perf.stats.const_subpattern_tests += 1
        if is_subsumed(tree, node):
            # Liberal newness report, same argument as the const path:
            # ``seen`` filters re-derived assignments, so only
            # completeness is load-bearing.
            cont(node.version > cutoff)
    return m_rt


def _compile_children_delta(children: List[PlanNode], ineq_vars: frozenset):
    if not children:
        def tail(node, state, need_new, have_new, cont):
            if not need_new:
                cont(have_new)
        return tail
    head_m = _compile_delta(children[0], ineq_vars)
    cand = _compile_candidates_delta(children[0])
    is_last = len(children) == 1
    rest_m = _compile_children_delta(children[1:], ineq_vars)

    def step(node, state, need_new, have_new, cont):
        # Only the last remaining sibling inherits a hard newness
        # obligation — the Δ⋈full split, exactly as the interpreter.
        first_need = need_new and is_last

        def rest(sub_new):
            new_now = have_new or sub_new
            rest_m(node, state, need_new and not new_now, new_now, cont)
        for child in cand(node, state, first_need):
            head_m(child, state, first_need, rest)
    return step


# ----------------------------------------------------------------------
# Compilation cache and display
# ----------------------------------------------------------------------


def compile_query(query: PositiveQuery) -> QueryPlan:
    """The (cached) compiled plan of ``query``.

    Plans are immutable and depend only on the rule text, so one plan per
    query object lives for the process; the switchboard flag is consulted
    at dispatch time, not here.
    """
    plan = getattr(query, "_compiled_plan", None)
    if plan is None:
        plan = QueryPlan(query)
        query._compiled_plan = plan  # type: ignore[attr-defined]
        perf.stats.plan_compilations += 1
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.PLAN_COMPILED, rule=str(query),
                         atoms=[{"document": atom.document,
                                 "pattern": pattern_to_text(
                                     atom.root.to_pattern())}
                                for atom in plan.atoms])
    return plan


def warm_system(system) -> None:
    """Pre-compile the plans of every positive service of ``system``.

    Called by both engines at construction so the first invocation of a
    run pays no compile latency and ``plan_compiled`` events land before
    the run's first attempt.
    """
    if not perf.flags.query_planner:
        return
    for service in system.services.values():
        for query in getattr(service, "queries", []):
            compile_query(query)


def describe_plan(query: PositiveQuery,
                  documents: Optional[Mapping[str, Node]] = None) -> str:
    """Human-readable rendering of the compiled plan (CLI ``paxml plan``)."""
    plan = compile_query(query)
    lines = [f"rule: {query}"]
    if plan.always_false:
        lines.append("  always empty: an inequality compares equal constants")
    for position, atom in enumerate(plan.atoms):
        root = atom.root
        consts = sum(1 for _ in _iter_const_nodes(root))
        probes = [f"{node.spec}→{node.probe[0]}→{node.probe[1]}"
                  for node in _iter_plan_nodes(root) if node.probe is not None]
        probe = f"  probes: {', '.join(probes)}" if probes else ""
        lines.append(
            f"  atom {position}: {atom.document}/"
            f"{pattern_to_text(root.to_pattern())}"
            f"  [const subpatterns: {consts}]{probe}")
    for variable, others in sorted(plan.ineq_by_var.items(),
                                   key=lambda item: str(item[0])):
        rendered = ", ".join(str(o) for o in others)
        lines.append(f"  on binding {variable}: check != {rendered}")
    if documents is not None:
        try:
            order = plan.join_order(documents)
        except KeyError:
            order = list(range(len(plan.atoms)))
        lines.append(
            "  join order vs current documents: "
            + " → ".join(f"atom {i} ({plan.atoms[i].document})"
                         for i in order))
    return "\n".join(lines)


def _iter_const_nodes(root: PlanNode):
    stack = [root]
    while stack:
        node = stack.pop()
        if node.const_tree is not None:
            yield node
        else:
            stack.extend(node.children)


def _iter_plan_nodes(root: PlanNode):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)
