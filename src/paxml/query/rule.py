"""Positive queries: rules ``head :- body`` (Definition 3.1).

A :class:`PositiveQuery` bundles a head pattern, a body of ``d/p`` atoms and
a conjunction of inequalities, and enforces the paper's three well-formedness
conditions:

1. body atoms pair document names with patterns;
2. *safety* — every head variable occurs in some body pattern;
3. inequalities only mention label / function / value variables or constants
   (never tree variables), and no tree variable occurs twice in the body.

Condition 3 is what keeps the snapshot semantics monotone
(Proposition 3.1(2) shows it breaks with tree (in)equality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..tree.node import FunName, Label, Marking, Value
from .pattern import PatternNode, RegexSpec, pattern_to_text
from .variables import FunVar, LabelVar, TreeVar, ValueVar, Variable

InequalityOperand = Union[Variable, Marking]


@dataclass(frozen=True)
class BodyAtom:
    """One ``d/p`` conjunct: pattern ``p`` must embed into document ``d``."""

    document: str
    pattern: PatternNode

    def __str__(self) -> str:
        return f"{self.document}/{pattern_to_text(self.pattern)}"


@dataclass(frozen=True)
class Inequality:
    """An ``x != y`` conjunct over non-tree variables and constants."""

    left: InequalityOperand
    right: InequalityOperand

    def __post_init__(self):
        for operand in (self.left, self.right):
            if isinstance(operand, TreeVar):
                raise ValueError(
                    "inequalities over tree variables are forbidden "
                    "(they would break monotonicity, Prop. 3.1(2))"
                )
            if not isinstance(operand, (LabelVar, FunVar, ValueVar,
                                        Label, FunName, Value)):
                raise TypeError(f"bad inequality operand {operand!r}")

    def __str__(self) -> str:
        def text(operand: InequalityOperand) -> str:
            if isinstance(operand, (LabelVar, FunVar, ValueVar)):
                return str(operand)
            if isinstance(operand, Label):
                return operand.name
            if isinstance(operand, FunName):
                return "!" + operand.name
            return str(operand)

        return f"{text(self.left)} != {text(self.right)}"


class QueryValidationError(ValueError):
    """Raised when a rule violates Definition 3.1."""


class PositiveQuery:
    """A positive query ``r :- d1/p1, …, dn/pn, e1, …, em``."""

    def __init__(self, head: PatternNode, body: Sequence[BodyAtom],
                 inequalities: Sequence[Inequality] = (),
                 name: Optional[str] = None):
        self.head = head
        self.body: List[BodyAtom] = list(body)
        self.inequalities: List[Inequality] = list(inequalities)
        self.name = name
        self._validate()

    # ------------------------------------------------------------------
    # well-formedness (Definition 3.1)
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        body_vars = self.body_variables()
        for variable in self.head_variables():
            if variable not in body_vars:
                raise QueryValidationError(
                    f"head variable {variable} does not occur in the body "
                    "(safety, Def. 3.1(2))"
                )
        seen_tree_vars: Set[TreeVar] = set()
        for atom in self.body:
            for variable in atom.pattern.variables():
                if isinstance(variable, TreeVar):
                    if variable in seen_tree_vars:
                        raise QueryValidationError(
                            f"tree variable {variable} occurs twice in the body "
                            "(Def. 3.1(3))"
                        )
                    seen_tree_vars.add(variable)
        for inequality in self.inequalities:
            for operand in (inequality.left, inequality.right):
                if isinstance(operand, (LabelVar, FunVar, ValueVar)) \
                        and operand not in body_vars:
                    raise QueryValidationError(
                        f"inequality variable {operand} does not occur in the body"
                    )
        if any(isinstance(n.spec, RegexSpec) for n in self.head.iter_nodes()):
            raise QueryValidationError(
                "regular path expressions may appear only in body patterns"
            )
        if isinstance(self.head.spec, (FunName, FunVar)):
            raise QueryValidationError(
                "a rule head cannot be rooted at a function node: answers "
                "are forests of documents, whose roots carry labels or "
                "values (Def. 2.1(ii))"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def head_variables(self) -> Set[Variable]:
        return set(self.head.variables())

    def body_variables(self) -> Set[Variable]:
        variables: Set[Variable] = set()
        for atom in self.body:
            variables.update(atom.pattern.variables())
        return variables

    def tree_variables(self) -> Set[TreeVar]:
        return {v for v in self.body_variables() if isinstance(v, TreeVar)} | {
            v for v in self.head_variables() if isinstance(v, TreeVar)
        }

    @property
    def is_simple(self) -> bool:
        """Simple queries use no tree variables (Definition 3.1)."""
        return not self.tree_variables()

    @property
    def has_regex(self) -> bool:
        """True for positive+reg queries (Section 5)."""
        return any(atom.pattern.has_regex() for atom in self.body)

    def document_names(self) -> Set[str]:
        return {atom.document for atom in self.body}

    def function_names(self) -> Set[str]:
        """Function names mentioned anywhere in the rule (head or body)."""
        names: Set[str] = set()
        for pattern in [self.head] + [atom.pattern for atom in self.body]:
            for node in pattern.iter_nodes():
                if isinstance(node.spec, FunName):
                    names.add(node.spec.name)
        return names

    def head_function_names(self) -> Set[str]:
        """Function names the rule can *emit* (calls embedded in answers)."""
        return {
            node.spec.name
            for node in self.head.iter_nodes()
            if isinstance(node.spec, FunName)
        }

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts += [str(ineq) for ineq in self.inequalities]
        body = ", ".join(parts) if parts else ""
        return f"{pattern_to_text(self.head)} :- {body}"

    def __repr__(self) -> str:
        return f"PositiveQuery<{self}>"
