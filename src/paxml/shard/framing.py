"""Length-prefixed frames: the shard layer's wire protocol.

Every message between a coordinator and its workers (and between the
serve front and its session hosts) is one frame::

    +------+----------------+------------------+
    | type |  payload length |  payload bytes  |
    | 1 B  |  4 B big-endian |                 |
    +------+----------------+------------------+

Two frame types exist.  ``FRAME_JSON`` carries a control message — a
JSON object with a ``kind`` field.  ``FRAME_GRAFTS`` carries a
replication batch: an 8-byte ``(origin shard, sequence)`` header
followed by a packed PXG1 graft batch (:func:`paxml.kernel.graft.
encode_batch`) — the coordinator forwards these payloads to peers
verbatim, without decoding, so the replication bus costs it framing
only.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Tuple

from ..kernel.graft import GraftRecord, decode_batch, encode_batch

FRAME_JSON = 0x4A    # 'J'
FRAME_GRAFTS = 0x47  # 'G'

_HEADER = struct.Struct(">BI")
_GRAFT_HEAD = struct.Struct(">II")

# A frame above this size is a protocol error, not a workload: even the
# fleet benchmarks ship batches in the tens of kilobytes.
MAX_FRAME = 1 << 28


class FramingError(RuntimeError):
    """A malformed or oversized frame arrived on the shard bus."""


def frame(kind: int, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(kind, len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """The next ``(type, payload)``; raises ``IncompleteReadError`` at EOF."""
    header = await reader.readexactly(_HEADER.size)
    kind, length = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    payload = await reader.readexactly(length) if length else b""
    return kind, payload


async def send_json(writer: asyncio.StreamWriter,
                    message: Dict[str, Any]) -> None:
    writer.write(frame(FRAME_JSON,
                       json.dumps(message, separators=(",", ":")).encode()))
    await writer.drain()


def decode_json(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FramingError(f"bad JSON control frame: {exc}") from None
    if not isinstance(message, dict) or "kind" not in message:
        raise FramingError("control frames must be objects with a 'kind'")
    return message


def pack_grafts(origin: int, seq: int,
                records: List[GraftRecord]) -> bytes:
    return _GRAFT_HEAD.pack(origin, seq) + encode_batch(records)


def grafts_header(payload: bytes) -> Tuple[int, int]:
    """The ``(origin, seq)`` of a graft frame, without decoding the batch."""
    return _GRAFT_HEAD.unpack_from(payload)


def unpack_grafts(payload: bytes) -> Tuple[int, int, List[GraftRecord]]:
    origin, seq = _GRAFT_HEAD.unpack_from(payload)
    return origin, seq, decode_batch(payload[_GRAFT_HEAD.size:])


async def send_grafts(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(frame(FRAME_GRAFTS, payload))
    await writer.drain()
