"""The shard coordinator: spawn workers, run BSP rounds, merge results.

:func:`run_sharded` is the public entry.  It partitions the system's
documents across ``nshards`` worker processes (:func:`~paxml.shard.
plan.make_plan`), ships each worker the full system in wire form, and
then drives bulk-synchronous replication rounds:

1. every worker runs its *owned* call sites to local quiescence with
   its own :class:`~paxml.kernel.EvaluationKernel`;
2. workers ship the round's fresh graft records as one packed
   ``FRAME_GRAFTS`` batch;
3. the coordinator appends each batch to its ordered **shipped-log
   history** and forwards the payload verbatim to every peer;
4. workers apply the remote batches to their replicas and ack; the ack
   barrier closes the round.

The first round in which no worker produced a record is a global
fixpoint: every call site fleet-wide proved itself a no-op against
fully replicated state.  By the paper's order-independence theorem the
merged forest equals any sequential fixpoint of the same system.

The history doubles as the crash-recovery log.  When a worker dies —
injected via ``crash_round``/``crash_shard`` or detected through EOF on
its link — the coordinator respawns the process and replays the
history into it: the replica rebuilds from the last *shipped* log
prefix, the worker re-enqueues all its owned sites (re-proving
already-answered ones is a subsumption no-op), and the round proceeds.
Records a dead worker shipped but the coordinator had not yet broadcast
are discarded; the respawned worker simply re-derives them.

Routed calls (plan mode ``route``) piggyback on the same links: the
coordinator forwards ``call``/``answer`` control frames between workers
without interpreting them.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..system.system import AXMLSystem
from ..tree.document import Document
from ..tree.node import advance_stamp_clock
from ..tree.serializer import from_wire, wire_max_stamp
from .. import perf
from .framing import (
    FRAME_GRAFTS,
    FramingError,
    decode_json,
    grafts_header,
    read_frame,
    send_grafts,
    send_json,
)
from .plan import ShardError, ShardPlan, make_plan
from .wire import system_to_wire

# Per-wait timeout: generous enough for fleet benchmarks on a loaded
# box, small enough that a hung worker fails CI instead of stalling it.
DEFAULT_TIMEOUT = 120.0


def _worker_entry(host: str, port: int, shard: int,
                  syspath: List[str]) -> None:
    """Child-process entry; importable so the spawn method can pickle it."""
    for entry in reversed(syspath):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from paxml.shard.worker import worker_main
    worker_main(host, port, shard)


@dataclass
class ShardRunResult:
    """The merged outcome of a sharded run."""

    documents: Dict[str, Document]
    plan: ShardPlan
    rounds: int
    records: int
    replay_ok: bool
    replay_errors: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    worker_stats: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    cpu_seconds: Dict[int, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    respawns: int = 0

    def signature(self) -> Dict[str, object]:
        """Canonical keys of the merged documents (cf. AXMLSystem)."""
        return {name: doc.canonical_key()
                for name, doc in self.documents.items()}

    def equivalent_to(self, system: AXMLSystem) -> bool:
        """Document-wise ``I ≡ J`` against a (run) single-process system."""
        if set(self.documents) != set(system.documents):
            return False
        return self.signature() == system.signature()


class WorkerDied(ShardError):
    """A worker's link closed while the coordinator still needed it."""

    def __init__(self, shard: int):
        super().__init__(f"shard worker {shard} died")
        self.shard = shard


class _Link:
    """One worker connection: process handle, streams, reader task."""

    def __init__(self, hub: "_Hub", shard: int, process,
                 reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.hub = hub
        self.shard = shard
        self.process = process
        self.reader = reader
        self.writer = writer
        self.alive = True
        self.task = asyncio.get_running_loop().create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                kind, payload = await read_frame(self.reader)
                if kind == FRAME_GRAFTS:
                    await self.hub.inbox.put(("grafts", self.shard, payload))
                    continue
                message = decode_json(payload)
                if message.get("kind") in ("call", "answer"):
                    await self.hub.forward(self.shard, message)
                else:
                    await self.hub.inbox.put(("msg", self.shard, message))
        except (asyncio.IncompleteReadError, ConnectionError, FramingError):
            self.alive = False
            await self.hub.inbox.put(("died", self.shard, None))

    async def close(self) -> None:
        self.alive = False
        self.task.cancel()
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5)


class _Hub:
    """Connection registry + the coordinator's single ordered inbox."""

    def __init__(self, timeout: float):
        self.links: Dict[int, _Link] = {}
        self.inbox: "asyncio.Queue[Tuple[str, int, Any]]" = asyncio.Queue()
        self.pending_hello: Dict[int, asyncio.Future] = {}
        self.timeout = timeout

    async def forward(self, origin: int, message: Dict[str, Any]) -> None:
        """Relay a routed call/answer frame to its target worker."""
        target = self.links.get(int(message.get("to", -1)))
        if target is not None and target.alive:
            await send_json(target.writer, message)
        elif message.get("kind") == "call":
            # The owner is (momentarily) gone: fail the call so the
            # caller's retry policy — not a hang — decides what happens.
            source = self.links.get(origin)
            if source is not None and source.alive:
                await send_json(source.writer, {
                    "kind": "answer", "id": message["id"], "ok": False,
                    "from": message.get("to"), "to": origin,
                    "error": "owner shard unavailable"})

    async def on_connection(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            kind, payload = await asyncio.wait_for(read_frame(reader),
                                                   self.timeout)
            hello = decode_json(payload)
            assert hello["kind"] == "hello"
        except Exception:
            writer.close()
            return
        shard = int(hello["shard"])
        future = self.pending_hello.pop(shard, None)
        if future is not None and not future.done():
            future.set_result((reader, writer))
        else:
            writer.close()

    async def expect(self, shard: int) -> Tuple[asyncio.StreamReader,
                                                asyncio.StreamWriter]:
        future = asyncio.get_running_loop().create_future()
        self.pending_hello[shard] = future
        return await asyncio.wait_for(future, self.timeout)


class _Coordinator:
    def __init__(self, system: AXMLSystem, nshards: int, *,
                 mode: str, engine: str,
                 config: Optional[Dict[str, Any]],
                 injector: Optional[Dict[str, Any]],
                 start_method: Optional[str],
                 crash_round: Optional[int], crash_shard: Optional[int],
                 validate_replay: bool, max_rounds: int, timeout: float,
                 lazy_queries: Optional[Sequence[str]] = None):
        self.system = system
        self.nshards = nshards
        self.plan = make_plan(system, nshards, mode=mode)
        self.engine = engine
        self.config = dict(config or {})
        self.injector = dict(injector) if injector else None
        self.start_method = start_method
        self.crash_round = crash_round
        self.crash_shard = crash_shard
        self.validate_replay = validate_replay
        self.max_rounds = max_rounds
        self.timeout = timeout
        self.lazy_queries = list(lazy_queries) if lazy_queries else None
        self.system_wire = system_to_wire(system)
        self.history: List[bytes] = []  # shipped-log prefix, broadcast order
        self.respawns = 0
        self.hub = _Hub(timeout)
        self.host = "127.0.0.1"
        self.port = 0
        self._mp = multiprocessing.get_context(start_method)
        self._syspath = [entry for entry in sys.path if entry]

    # -- lifecycle -------------------------------------------------------

    def _spawn_process(self, shard: int):
        process = self._mp.Process(
            target=_worker_entry,
            args=(self.host, self.port, shard, self._syspath),
            daemon=True, name=f"paxml-shard-{shard}")
        process.start()
        return process

    def _init_message(self, replay: bool) -> Dict[str, Any]:
        return {
            "kind": "init",
            "nshards": self.nshards,
            "plan": self.plan.to_json(),
            "system": self.system_wire,
            "engine": self.engine,
            "config": self.config,
            "injector": self.injector,
            "flags": perf.flags.snapshot(),
            "obs": obs_bus.ACTIVE,
            "replay": ([payload.hex() for payload in self.history]
                       if replay else []),
            # Relevance goal set (query texts): each worker seeds its own
            # tracker and keeps unneeded owned sites dormant.
            "lazy": self.lazy_queries,
        }

    async def _start_worker(self, shard: int, *, replay: bool) -> _Link:
        expect = asyncio.get_running_loop().create_task(
            self.hub.expect(shard))
        process = self._spawn_process(shard)
        try:
            reader, writer = await expect
        except asyncio.TimeoutError:
            process.kill()
            raise ShardError(
                f"shard worker {shard} never connected") from None
        link = _Link(self.hub, shard, process, reader, writer)
        self.hub.links[shard] = link
        await send_json(writer, self._init_message(replay))
        ready = await self._await_msg(shard, "ready")
        if ready is None:
            raise WorkerDied(shard)
        return link

    async def _respawn(self, shard: int) -> None:
        self.respawns += 1
        old = self.hub.links.pop(shard, None)
        if old is not None:
            await old.close()
        await self._start_worker(shard, replay=True)

    async def _kill(self, shard: int) -> None:
        """Hard-kill a worker process (the crash-injection primitive)."""
        link = self.hub.links.get(shard)
        if link is None:
            return
        if link.process is not None:
            link.process.kill()
            link.process.join(timeout=10)
        # Drain the death notice its reader task will post.
        while link.alive:
            await asyncio.sleep(0.01)

    async def _await_msg(self, shard: int,
                         kind: str) -> Optional[Dict[str, Any]]:
        """The next ``kind`` message from ``shard``; None if it died.

        Anything else that arrives meanwhile is re-queued, preserving
        order for the main loop.
        """
        stash: List[Tuple[str, int, Any]] = []
        found: Optional[Dict[str, Any]] = None
        while found is None:
            item = await asyncio.wait_for(self.hub.inbox.get(), self.timeout)
            source, origin, payload = item
            if origin == shard and source == "msg" and \
                    payload.get("kind") == kind:
                found = payload
            elif origin == shard and source == "died":
                stash.append(item)
                break
            else:
                stash.append(item)
        for item in stash:
            self.hub.inbox.put_nowait(item)
        return found

    # -- the round loop --------------------------------------------------

    async def run(self) -> ShardRunResult:
        started = time.perf_counter()
        server = await asyncio.start_server(self.hub.on_connection,
                                            self.host, 0)
        self.port = server.sockets[0].getsockname()[1]
        try:
            # Sequential on purpose: _await_msg is a single-consumer
            # protocol over one inbox; concurrent waiters could stash
            # each other's "ready" and deadlock.
            for shard in range(self.nshards):
                await self._start_worker(shard, replay=False)
            rounds, total_records = await self._round_loop()
            states = await self._finish()
        finally:
            for link in list(self.hub.links.values()):
                await link.close()
            server.close()
            await server.wait_closed()

        documents: Dict[str, Document] = {}
        high = 0
        for shard, state in states.items():
            for name, wire in state["documents"].items():
                # Imported nodes carry worker-minted stamps this process
                # has never seen; push the local clock past them or later
                # locally-minted (uid, version) pairs could collide with
                # them in the global perf caches.
                high = max(high, wire_max_stamp(wire))
                documents[name] = Document(name, from_wire(wire))
        advance_stamp_clock(high)
        missing = set(self.system.documents) - set(documents)
        if missing:
            raise ShardError(f"no shard reported documents: {sorted(missing)}")
        failures: List[str] = []
        replay_errors: List[str] = []
        for shard, state in states.items():
            failures.extend(state.get("failures") or [])
            if not state.get("replay_ok", True):
                replay_errors.append(state.get("replay_error")
                                     or f"shard {shard}: replay diverged")
        return ShardRunResult(
            documents=documents,
            plan=self.plan,
            rounds=rounds,
            records=total_records,
            replay_ok=not replay_errors,
            replay_errors=replay_errors,
            failures=failures,
            worker_stats={shard: state.get("stats", {})
                          for shard, state in states.items()},
            cpu_seconds={shard: float(state.get("cpu_seconds", 0.0))
                         for shard, state in states.items()},
            wall_seconds=time.perf_counter() - started,
            respawns=self.respawns,
        )

    async def _round_loop(self) -> Tuple[int, int]:
        total_records = 0
        for round_no in range(self.max_rounds):
            if round_no == self.crash_round and self.crash_shard is not None:
                # Deterministic injection point: kill before the round
                # starts, so exactly the shipped history is recoverable.
                await self._kill(self.crash_shard)
                await self._drain_death(self.crash_shard)
                await self._respawn(self.crash_shard)
            produced = await self._one_round(round_no)
            total_records += produced
            if obs_bus.ACTIVE:
                obs_bus.emit(obs_events.SHARD_ROUND, round=round_no,
                             produced=produced, workers=self.nshards)
            if produced == 0:
                return round_no + 1, total_records
        raise ShardError(
            f"no fixpoint within {self.max_rounds} rounds — the workload "
            "is still producing records (raise max_rounds?)")

    async def _drain_death(self, shard: int) -> None:
        """Remove a known-dead worker's queued items from the inbox."""
        kept: List[Tuple[str, int, Any]] = []
        while not self.hub.inbox.empty():
            item = self.hub.inbox.get_nowait()
            if item[1] != shard:
                kept.append(item)
        for item in kept:
            self.hub.inbox.put_nowait(item)

    async def _one_round(self, round_no: int) -> int:
        for link in self.hub.links.values():
            await send_json(link.writer, {"kind": "round", "round": round_no})
        waiting = set(range(self.nshards))
        batches: Dict[int, bytes] = {}
        produced = 0
        while waiting:
            source, origin, payload = await asyncio.wait_for(
                self.hub.inbox.get(), self.timeout)
            if source == "grafts":
                batches[origin] = payload
            elif source == "died":
                # Unplanned mid-round death: discard its unshipped batch,
                # rebuild from the shipped history, re-issue the round.
                batches.pop(origin, None)
                await self._respawn(origin)
                await send_json(self.hub.links[origin].writer,
                                {"kind": "round", "round": round_no})
            elif source == "msg" and payload.get("kind") == "round_done":
                # Guard both ways: a stale echo from a pre-respawn
                # incarnation, and a second report after a mid-round
                # respawn re-issued the round.
                if payload["round"] != round_no or origin not in waiting:
                    continue
                waiting.discard(origin)
                produced += int(payload["produced"])
            # other messages (late acks) are barrier-irrelevant: drop
        if not batches:
            return produced
        # Broadcast, then the apply/ack barrier.  History first: once a
        # batch is shipped it is part of the recoverable prefix.
        acks_needed: Dict[Tuple[int, int], set] = {}
        for origin, payload in sorted(batches.items()):
            self.history.append(payload)
            origin_id, seq = grafts_header(payload)
            peers = {shard for shard in self.hub.links if shard != origin}
            acks_needed[(origin_id, seq)] = peers
            for shard in peers:
                await send_grafts(self.hub.links[shard].writer, payload)
        while any(acks_needed.values()):
            source, origin, payload = await asyncio.wait_for(
                self.hub.inbox.get(), self.timeout)
            if source == "msg" and payload.get("kind") == "applied":
                key = (int(payload["origin"]), int(payload["seq"]))
                if key in acks_needed:
                    acks_needed[key].discard(origin)
            elif source == "died":
                # The history already contains every broadcast batch, so
                # a respawn replays exactly what the acks would confirm.
                for peers in acks_needed.values():
                    peers.discard(origin)
                await self._respawn(origin)
        return produced

    async def _finish(self) -> Dict[int, Dict[str, Any]]:
        for link in self.hub.links.values():
            await send_json(link.writer, {"kind": "finish",
                                          "validate": self.validate_replay})
        states: Dict[int, Dict[str, Any]] = {}
        while len(states) < self.nshards:
            source, origin, payload = await asyncio.wait_for(
                self.hub.inbox.get(), self.timeout)
            if source == "msg" and payload.get("kind") == "state":
                states[origin] = payload
            elif source == "died" and origin not in states:
                raise WorkerDied(origin)
        return states


def run_sharded(system: AXMLSystem, nshards: int, *,
                mode: str = "replicate",
                engine: str = "async",
                config: Optional[Dict[str, Any]] = None,
                injector: Optional[Dict[str, Any]] = None,
                start_method: Optional[str] = None,
                crash_round: Optional[int] = None,
                crash_shard: Optional[int] = None,
                validate_replay: bool = True,
                max_rounds: int = 64,
                timeout: float = DEFAULT_TIMEOUT,
                lazy_queries: Optional[Sequence[str]] = None) -> ShardRunResult:
    """Run ``system`` to its fixpoint across ``nshards`` worker processes.

    ``config`` and ``injector`` are keyword dictionaries for each
    worker's :class:`~paxml.runtime.policy.RuntimeConfig` and
    :class:`~paxml.runtime.faults.FaultInjector` (async engine only).
    ``crash_round``/``crash_shard`` inject a deterministic worker kill
    immediately before that round, exercising the resume-from-history
    path.  The caller's system is never mutated — workers evaluate
    copies rebuilt from wire form.

    ``lazy_queries`` (query texts) turns on relevance-guided laziness in
    every worker: sites unneeded for the goal set stay dormant, and the
    sharded run stabilizes once all *relevant* sites quiesce.
    """
    if nshards < 1:
        raise ShardError(f"need at least one worker, got {nshards}")
    if engine not in ("async", "sequential"):
        raise ShardError(f"unknown worker engine {engine!r}")
    if (crash_round is None) != (crash_shard is None):
        raise ShardError("crash injection needs both crash_round and "
                         "crash_shard")
    if crash_shard is not None and not 0 <= crash_shard < nshards:
        raise ShardError(f"crash_shard {crash_shard} out of range")
    if start_method is None and os.name == "posix":
        start_method = "fork"
    coordinator = _Coordinator(
        system, nshards, mode=mode, engine=engine, config=config,
        injector=injector, start_method=start_method,
        crash_round=crash_round, crash_shard=crash_shard,
        validate_replay=validate_replay, max_rounds=max_rounds,
        timeout=timeout, lazy_queries=lazy_queries)
    return asyncio.run(coordinator.run())
