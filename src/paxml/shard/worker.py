"""The shard worker process: one EvaluationKernel per shard.

A worker connects back to its coordinator, receives the full system in
wire form, and then participates in bulk-synchronous replication
rounds.  Within a round it drives its *owned* call sites — the ones in
documents its shard owns under the :class:`~paxml.shard.plan.ShardPlan`
— to local quiescence with its own engine (the concurrent
:class:`AsyncRuntime` or the sequential loop), then ships the graft
records the round produced.  Between rounds it applies the batches its
peers shipped to its replica documents.

Replica application is deliberately *not* re-evaluation: the records
arrive in the owner's log order, the site and parent uids resolve
against the replica (wire trees keep their uids), and grafting is
deterministic given identical prior state — so replicas converge to
node-for-node copies of the owner's documents.  Three kernel-level
details keep the incremental machinery sound across the boundary:

* inserted trees are **re-stamped with local versions** before grafting
  (uids stay the owner's): the delta-matching invariant "version ≤
  cutoff ⇒ no node created after the cutoff" is per-process, and an
  owner-side version could land below a local cutoff and hide the graft
  from incremental evaluation forever;
* the kernel's ``productive`` generation is bumped, voiding any no-op
  verdict computed against the pre-apply state;
* the record is appended to the local log under its originating shard
  tag, so replay-validation (:class:`~paxml.kernel.checkpoint.
  ReplayDivergence`) covers the replicated grafts exactly like local
  ones.

Remote applies never schedule the call sites they graft — those sites
live in documents another shard owns, and fairness for them is the
owner's job.  They do promote this worker's proven no-ops back to
fresh: replica state changed, so the verdicts are stale.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional

from .. import perf
from ..kernel import EXTERNAL_SERVICE, EvaluationKernel
from ..kernel.checkpoint import ReplayDivergence, apply_graft_record
from ..kernel.graft import GraftRecord
from ..obs import bus as obs_bus
from ..obs import events as obs_events
from ..query.parser import parse_query
from ..runtime.engine import AsyncRuntime
from ..runtime.faults import FaultInjector
from ..runtime.policy import RuntimeConfig
from ..runtime.transport import (
    CallRequest,
    LocalTransport,
    Transport,
    TransientServiceError,
)
from ..system.invocation import _validate_answers, find_path, graft_trees, graft_under
from ..system.rewriting import RewritingEngine
from ..system.system import AXMLSystem
from ..tree.document import CONTEXT, INPUT, Document
from ..tree.node import Node, advance_stamp_clock, next_stamp
from ..tree.serializer import from_wire, to_wire, wire_max_stamp
from .bootstrap import bootstrap_worker
from .framing import (
    FRAME_GRAFTS,
    FramingError,
    decode_json,
    pack_grafts,
    read_frame,
    send_grafts,
    send_json,
    unpack_grafts,
)
from .plan import ShardError, ShardPlan
from .wire import system_from_wire


class ShardChannel:
    """The worker side of the coordinator connection.

    One reader task demultiplexes incoming frames: replication batches
    and control messages go to :attr:`control`; ``answer`` frames
    resolve the matching pending routed call; ``call`` frames (a peer
    invoking a service this shard owns) are served inline via
    :attr:`on_call`.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, shard: int):
        self.reader = reader
        self.writer = writer
        self.shard = shard
        self.control: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self.on_call = None  # sync callback(message) -> answers wire list
        self._pending: Dict[str, asyncio.Future] = {}
        self._call_ids = itertools.count()
        self._reader_task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                kind, payload = await read_frame(self.reader)
                if kind == FRAME_GRAFTS:
                    origin, seq, records = unpack_grafts(payload)
                    await self.control.put({"kind": "grafts", "origin": origin,
                                            "seq": seq, "records": records})
                    continue
                message = decode_json(payload)
                mkind = message["kind"]
                if mkind == "answer":
                    future = self._pending.pop(message["id"], None)
                    if future is not None and not future.done():
                        future.set_result(message)
                elif mkind == "call":
                    asyncio.get_running_loop().create_task(
                        self._serve_call(message))
                else:
                    await self.control.put(message)
        except (asyncio.IncompleteReadError, ConnectionError, FramingError):
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("coordinator connection lost"))
            self._pending.clear()
            await self.control.put({"kind": "eof"})

    async def _serve_call(self, message: Dict[str, Any]) -> None:
        reply: Dict[str, Any] = {"kind": "answer", "id": message["id"],
                                 "to": message["from"], "from": self.shard}
        try:
            assert self.on_call is not None, "no call handler installed"
            reply["ok"] = True
            reply["answers"] = self.on_call(message)
        except Exception as exc:
            reply["ok"] = False
            reply["error"] = f"{type(exc).__name__}: {exc}"
        await send_json(self.writer, reply)

    async def remote_call(self, owner: int,
                          payload: Dict[str, Any]) -> List[dict]:
        call_id = f"{self.shard}.{next(self._call_ids)}"
        future = asyncio.get_running_loop().create_future()
        self._pending[call_id] = future
        await send_json(self.writer, {"kind": "call", "id": call_id,
                                      "from": self.shard, "to": owner,
                                      **payload})
        message = await future
        if not message.get("ok"):
            raise TransientServiceError(
                f"shard {owner} failed the routed call: "
                f"{message.get('error')}")
        return message["answers"]


class ShardTransport(Transport):
    """Route eligible calls to the owning shard; evaluate the rest locally.

    The routed request ships ``θ(input)`` and ``θ(context)`` as wire
    trees; the owner evaluates a *snapshot* answer against its own
    (authoritative) documents and the answer forest rides back as wire
    trees.  Grafting happens at the caller — which owns the call site's
    document — through the normal kernel path, so the graft becomes an
    ordinary record on the replication bus.
    """

    def __init__(self, system: AXMLSystem, channel: ShardChannel,
                 plan: ShardPlan, shard: int):
        super().__init__(None)
        self._local = LocalTransport(system)
        self._channel = channel
        self._plan = plan
        self._shard = shard

    def peer_of(self, service: str) -> str:
        owner = self._plan.route(service)
        if owner is None or owner == self._shard:
            return self._local.peer_of(service)
        return f"shard:{owner}"

    async def call(self, request: CallRequest):
        owner = self._plan.route(request.service)
        if owner is None or owner == self._shard:
            return await self._local.call(request)
        perf.stats.shard_remote_calls += 1
        payload = {
            "service": request.service,
            "site": request.site,
            "document": request.caller_document,
            "input": to_wire(request.input_tree),
            "context": (to_wire(request.context_tree)
                        if request.context_tree is not None else None),
        }
        answers = await self._channel.remote_call(owner, payload)
        return [from_wire(wire) for wire in answers]


class ShardWorker:
    """One shard's engine, replica set, and replication bookkeeping."""

    def __init__(self, shard: int, channel: ShardChannel,
                 init: Dict[str, Any]):
        self.shard = shard
        self.nshards = int(init["nshards"])
        self.channel = channel
        bootstrap_worker(shard, self.nshards, init.get("flags"),
                         obs_active=bool(init.get("obs")))
        self.plan = ShardPlan.from_json(init["plan"])
        self.system = system_from_wire(init["system"])
        self.engine_kind = str(init.get("engine", "async"))
        # The log is the replication stream: retention is a worker
        # requirement, not a perf preference.
        self.kernel = EvaluationKernel(
            self.system, sites=[],
            promote_front=(self.engine_kind == "sequential"),
            dedup_delivered=(self.engine_kind == "async"))
        self.kernel.log.retain = True
        self.kernel._capture_seed()
        self.by_uid: Dict[str, Dict[int, Node]] = {
            name: {node.uid: node for node in doc.root.iter_nodes()}
            for name, doc in self.system.documents.items()}
        self.replayed = 0
        for batch in init.get("replay", ()):
            _, _, records = unpack_grafts(
                bytes.fromhex(batch) if isinstance(batch, str) else batch)
            for record in records:
                # Replayed trees carry uids this shard minted in its
                # previous life — push the clock past them before this
                # incarnation mints anything, or fresh stamps could
                # collide inside our own residue class.
                for wire in record.trees:
                    advance_stamp_clock(wire_max_stamp(wire))
                self.apply_replica_record(record)
                self.replayed += 1
        for document, node in self.system.call_sites():
            if self.plan.owner(document.name) == self.shard:
                self.kernel.scheduler.enqueue(document, node)
        # Relevance-guided laziness: each worker seeds its own tracker over
        # the full replicated system, so owned-but-unneeded sites sit
        # dormant.  Fire-once is NOT enabled here — retirement needs global
        # feeder live-counts, and a worker only sees its own shard's.
        lazy_texts = init.get("lazy")
        if lazy_texts:
            self.kernel.enable_lazy(
                [parse_query(text) for text in lazy_texts])

        injector_spec = init.get("injector")
        injector = (FaultInjector(**injector_spec)
                    if injector_spec else None)
        config = RuntimeConfig(**(init.get("config") or {}))
        transport: Optional[Transport] = None
        if self.plan.routes:
            if self.engine_kind != "async":
                raise ShardError(
                    "routed cross-shard calls need the async engine "
                    "(the sequential loop cannot serve peers mid-round)")
            transport = ShardTransport(self.system, channel, self.plan,
                                       shard)
        if self.engine_kind == "async":
            self.runtime: Optional[AsyncRuntime] = AsyncRuntime(
                self.system, kernel=self.kernel, config=config,
                injector=injector, transport=transport)
            self.engine: Optional[RewritingEngine] = None
        elif self.engine_kind == "sequential":
            self.runtime = None
            self.engine = RewritingEngine(self.system, kernel=self.kernel)
        else:
            raise ShardError(f"unknown worker engine {self.engine_kind!r}")
        self.shipped = len(self.kernel.log.records)
        self.failures: List[str] = []

    # -- round execution -------------------------------------------------

    async def run_round(self) -> List[GraftRecord]:
        """Drive owned sites to local quiescence; the new local records."""
        perf.stats.shard_rounds += 1
        if self.runtime is not None:
            result = await self.runtime.arun()
            for failure in result.failures:
                self.failures.append(
                    f"!{failure.service}@{failure.document}: {failure.reason}")
        else:
            self.engine.run()
        fresh = [record for record in self.kernel.log.records[self.shipped:]
                 if record.shard is None]
        self.shipped = len(self.kernel.log.records)
        perf.stats.shard_records_shipped += len(fresh)
        return fresh

    # -- replica application ---------------------------------------------

    def apply_replica_record(self, record: GraftRecord) -> List[Node]:
        """Apply one shard-tagged record from the replication bus."""
        document = self.system.documents.get(record.document)
        index = self.by_uid.get(record.document)
        if document is None or index is None:
            raise ShardError(
                f"shard {self.shard}: record names unknown document "
                f"{record.document!r}")
        trees = [from_wire(wire) for wire in record.trees]
        for tree in trees:
            for node in tree.iter_nodes():
                node.version = next_stamp()
        target = index.get(record.site)
        if record.service == EXTERNAL_SERVICE:
            path = (find_path(document.root, target)
                    if target is not None else None)
            if path is None:
                raise ShardError(
                    f"shard {self.shard}: graft parent uid={record.site} is "
                    f"not live in replica {record.document!r}")
            inserted = graft_under(path, trees)
        else:
            path = (find_path(document.root, target)
                    if target is not None and target.is_function else None)
            if path is None or len(path) < 2:
                raise ShardError(
                    f"shard {self.shard}: call site uid={record.site} is "
                    f"not live in replica {record.document!r}")
            inserted = graft_trees(path, trees)
        for tree in inserted:
            for node in tree.iter_nodes():
                index[node.uid] = node
        self.kernel.log.append(record)
        perf.stats.shard_records_applied += 1
        if inserted:
            # Replica state changed: stale every outstanding no-op verdict
            # and re-verify proven no-ops — but do NOT schedule the new
            # call sites; their document's owner drives them.
            self.kernel.productive += 1
            self.kernel.scheduler.promote_tried()
            # Replica application bypasses apply_graft (and thus the graft
            # hooks), so feed the relevance tracker by hand: a peer's graft
            # can make one of *our* dormant owned sites weakly relevant.
            self.kernel.refresh_relevance(document, target, inserted)
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.SHARD_RECORD_APPLIED,
                         shard=self.shard, origin=record.shard,
                         document=record.document, service=record.service,
                         site=record.site, trees=len(record.trees))
        return inserted

    def apply_batch(self, records: List[GraftRecord]) -> int:
        applied = 0
        for record in records:
            self.apply_replica_record(record)
            applied += 1
        return applied

    # -- routed-call serving ---------------------------------------------

    def serve_call(self, message: Dict[str, Any]) -> List[dict]:
        """Evaluate a peer's routed call against this shard's documents."""
        service = self.system.services.get(message["service"])
        if service is None:
            raise ShardError(
                f"routed call names undeclared service {message['service']!r}")
        environment = dict(self.system.environment())
        if message.get("input") is not None:
            environment[INPUT] = from_wire(message["input"])
        if message.get("context") is not None:
            environment[CONTEXT] = from_wire(message["context"])
        answers = service.evaluate(environment)
        _validate_answers(service.name, answers)
        return [to_wire(answer) for answer in answers]

    # -- final state -----------------------------------------------------

    def validate_replay(self) -> None:
        """Replay seed + full log; :class:`ReplayDivergence` on mismatch.

        The log interleaves local records with shard-tagged replicated
        ones in application order, so this one check covers the whole
        consistency argument: if replication dropped, duplicated or
        reordered anything, the replayed forest cannot match the live
        replica.
        """
        seeds = self.kernel._seed_wire
        if seeds is None:
            return
        saved_store = perf.flags.columnar_store
        saved_index = perf.flags.child_index
        perf.flags.columnar_store = False
        perf.flags.child_index = False
        try:
            replayed = {name: Document(name, from_wire(wire))
                        for name, wire in seeds.items()}
            by_uid = {name: {node.uid: node
                             for node in doc.root.iter_nodes()}
                      for name, doc in replayed.items()}
            for record in self.kernel.log.records:
                apply_graft_record(replayed, by_uid, record)
        finally:
            perf.flags.columnar_store = saved_store
            perf.flags.child_index = saved_index
        for name, document in replayed.items():
            if (document.canonical_key()
                    != self.system.documents[name].canonical_key()):
                raise ReplayDivergence(
                    f"shard {self.shard}: document {name!r} replay is not "
                    "equivalent to the live replica")

    def final_state(self, validate: bool = True) -> Dict[str, Any]:
        replay_ok, replay_error = True, None
        if validate:
            try:
                self.validate_replay()
            except ReplayDivergence as exc:
                replay_ok, replay_error = False, str(exc)
        kernel = self.kernel
        return {
            "documents": {name: to_wire(self.system.documents[name].root)
                          for name in self.plan.owned(self.shard)},
            "replay_ok": replay_ok,
            "replay_error": replay_error,
            "steps": kernel.steps,
            "productive": kernel.productive,
            "log_records": len(kernel.log),
            "replayed": self.replayed,
            "failures": self.failures,
            "cpu_seconds": time.process_time(),
            "stats": {
                "shard_records_shipped": perf.stats.shard_records_shipped,
                "shard_records_applied": perf.stats.shard_records_applied,
                "shard_remote_calls": perf.stats.shard_remote_calls,
                "shard_rounds": perf.stats.shard_rounds,
                "graft_batch_bytes": perf.stats.graft_batch_bytes,
            },
        }


async def _amain(host: str, port: int, shard: int) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    channel = ShardChannel(reader, writer, shard)
    channel.start()
    await send_json(writer, {"kind": "hello", "shard": shard})
    init = await channel.control.get()
    if init.get("kind") != "init":
        raise ShardError(f"expected init, got {init.get('kind')!r}")
    worker = ShardWorker(shard, channel, init)
    channel.on_call = worker.serve_call
    if obs_bus.ACTIVE:
        obs_bus.emit(obs_events.SHARD_WORKER_STARTED, shard=shard,
                     nshards=worker.nshards,
                     owned=worker.plan.owned(shard),
                     replayed=worker.replayed)
    await send_json(writer, {"kind": "ready", "shard": shard,
                             "owned": worker.plan.owned(shard),
                             "replayed": worker.replayed})
    sequence = itertools.count()
    while True:
        message = await channel.control.get()
        kind = message["kind"]
        if kind == "round":
            fresh = await worker.run_round()
            if fresh:
                tagged = [replace(record, shard=shard) for record in fresh]
                await send_grafts(writer, pack_grafts(shard, next(sequence),
                                                      tagged))
            await send_json(writer, {
                "kind": "round_done", "shard": shard,
                "round": message["round"], "produced": len(fresh),
                "steps": worker.kernel.steps,
                "queue_depth": worker.kernel.scheduler.fresh_count(),
            })
        elif kind == "grafts":
            applied = worker.apply_batch(message["records"])
            await send_json(writer, {
                "kind": "applied", "shard": shard,
                "origin": message["origin"], "seq": message["seq"],
                "count": applied})
        elif kind == "finish":
            state = worker.final_state(
                validate=bool(message.get("validate", True)))
            await send_json(writer, {"kind": "state", "shard": shard,
                                     **state})
            break
        elif kind == "eof":
            return
        else:
            raise ShardError(f"unexpected control frame {kind!r}")
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


def worker_main(host: str, port: int, shard: int) -> None:
    """Process entry point (must stay importable for the spawn method)."""
    asyncio.run(_amain(host, port, shard))
