"""Partitioning documents (and service routes) across shards.

The paper's evaluation model makes documents the natural partition
unit: grafts only ever target one document, and grafts into different
documents commute (Theorem 2.1), so assigning each document a single
*owner* shard gives per-document single-writer replication for free —
every record for a document originates at its owner, and replicas apply
the owner's record stream in order.

Two execution modes share a plan:

* ``replicate`` (default) — every worker holds replicas of all
  documents and evaluates its own call sites locally against them;
  only graft records cross the wire.
* ``route`` — additionally, a call whose service reads documents owned
  entirely by one *other* shard is shipped to that owner as a
  call/answer record pair (the input and context trees ride along as
  wire trees); the answer grafts at the caller, which owns the site's
  document, so single-writer still holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..system.system import AXMLSystem
from ..tree.document import CONTEXT, INPUT


class ShardError(RuntimeError):
    """A sharded run cannot be set up or has violated its protocol."""


@dataclass
class ShardPlan:
    """Document ownership plus the routed-service table."""

    nshards: int
    owners: Dict[str, int] = field(default_factory=dict)
    routes: Dict[str, int] = field(default_factory=dict)

    def owner(self, document: str) -> int:
        return self.owners[document]

    def owned(self, shard: int) -> List[str]:
        return sorted(name for name, owner in self.owners.items()
                      if owner == shard)

    def route(self, service: str) -> Optional[int]:
        return self.routes.get(service)

    def to_json(self) -> Dict[str, object]:
        return {"nshards": self.nshards, "owners": self.owners,
                "routes": self.routes}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ShardPlan":
        return cls(nshards=int(data["nshards"]),
                   owners={str(k): int(v)
                           for k, v in dict(data["owners"]).items()},
                   routes={str(k): int(v)
                           for k, v in dict(data["routes"]).items()})


def make_plan(system: AXMLSystem, nshards: int,
              mode: str = "replicate") -> ShardPlan:
    """Greedy balanced partition of ``system``'s documents.

    Documents are weighted by ``1 + initial call sites`` (the best
    static proxy for evaluation work) and assigned largest-first to the
    least-loaded shard.  In ``route`` mode, each service whose rules
    read documents owned entirely by one shard gets a route to that
    owner; services reading no documents, or documents spread across
    shards, stay local everywhere.
    """
    if nshards < 1:
        raise ShardError(f"need at least one shard, got {nshards}")
    if mode not in ("replicate", "route"):
        raise ShardError(f"unknown shard mode {mode!r}")
    weights = {name: 1 for name in system.documents}
    for document, _ in system.call_sites():
        weights[document.name] += 1
    load = [0] * nshards
    owners: Dict[str, int] = {}
    for name in sorted(system.documents, key=lambda n: (-weights[n], n)):
        shard = min(range(nshards), key=lambda k: (load[k], k))
        owners[name] = shard
        load[shard] += weights[name]

    routes: Dict[str, int] = {}
    if mode == "route" and nshards > 1:
        for name, service in system.services.items():
            queries = getattr(service, "queries", None)
            if not queries:
                continue
            read = set()
            for query in queries:
                read.update(query.document_names())
            read -= {CONTEXT, INPUT}
            owner_set = {owners[doc] for doc in read if doc in owners}
            if len(owner_set) == 1:
                routes[name] = owner_set.pop()
    return ShardPlan(nshards=nshards, owners=owners, routes=routes)
