"""Shipping a whole system across the process boundary.

Workers rebuild the coordinator's system from its wire form: services
round-trip through their rule text (exactly as checkpoint bundles
serialize them) and documents through :func:`paxml.tree.serializer.
to_wire`, which preserves node uids — essential, because the records a
worker later receives reference call sites and graft parents *by uid*.

Opaque (black-box) services cannot cross a process boundary; a sharded
run requires a positive system, which is also the fragment the paper's
results are about.
"""

from __future__ import annotations

from typing import Dict, List

from ..query.parser import parse_query
from ..system.service import QueryService, Service, UnionQueryService
from ..system.system import AXMLSystem
from ..tree.document import Document
from ..tree.node import advance_stamp_clock
from ..tree.serializer import from_wire, to_wire, wire_max_stamp
from .plan import ShardError


def system_to_wire(system: AXMLSystem) -> Dict[str, object]:
    services: List[Dict[str, object]] = []
    for name in sorted(system.services):
        service = system.services[name]
        if not getattr(service, "is_positive", False):
            raise ShardError(
                f"service {name!r} is opaque (black-box) and cannot be "
                "shipped to shard workers; sharded runs need a positive "
                "system")
        services.append({"name": name,
                         "rules": [str(q) for q in service.queries]})
    return {
        "documents": {name: to_wire(doc.root)
                      for name, doc in system.documents.items()},
        "services": services,
    }


def system_from_wire(wire: Dict[str, object], *,
                     advance_clock: bool = True) -> AXMLSystem:
    """Rebuild the system; optionally push the stamp clock past it."""
    documents = [Document(name, from_wire(tree))
                 for name, tree in dict(wire["documents"]).items()]
    services: List[Service] = []
    for record in wire["services"]:
        name = str(record["name"])
        rules = [str(rule) for rule in record["rules"]]
        if len(rules) == 1:
            services.append(QueryService.parse(name, rules[0]))
        else:
            services.append(UnionQueryService(
                name, [parse_query(rule, name=name) for rule in rules]))
    if advance_clock:
        high = 0
        for tree in dict(wire["documents"]).values():
            high = max(high, wire_max_stamp(tree))
        advance_stamp_clock(high)
    return AXMLSystem(documents, services, validate=True, reduce=False)
