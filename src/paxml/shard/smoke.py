"""End-to-end sharded-execution smoke: ``python -m paxml.shard.smoke``.

Exercises the PR 9 multi-process layer the way CI wants it exercised:
a 2-worker run to fixpoint with per-worker replay validation and forest
equivalence against the sequential engine, a deterministic worker kill
mid-run that the coordinator survives by respawning from the graft log,
and a :class:`~paxml.serve.shard_pool.ShardPool` session-host round
trip (placement, run, bundle-carried migration, suspend + transparent
resume).  Prints ``SMOKE PASS`` and exits 0; any assertion or hang
(CI wraps it in ``timeout``) fails the job.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile

from ..system import materialize
from ..workloads import tc_system
from . import run_sharded

EDGES = [(1, 2), (2, 3), (3, 4)]

TC_TEXT = """
@document d0
r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}

@document d1
r{!g, !f}

@service g
t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}

@service f
t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}
"""

CLOSURE = "r{!f, !g, t{c0{1}, c1{2}}, t{c0{1}, c1{3}}, t{c0{2}, c1{3}}}"


def _sequential_fixpoint():
    system = tc_system(EDGES)
    assert materialize(system).terminated
    return system


def smoke_fixpoint() -> None:
    sequential = _sequential_fixpoint()
    result = run_sharded(tc_system(EDGES), 2, engine="sequential")
    assert not result.failures, result.failures
    assert result.replay_ok, result.replay_errors
    assert result.equivalent_to(sequential), "sharded forest diverged"
    print(f"[smoke] 2-worker fixpoint: rounds={result.rounds} "
          f"records={result.records} replay=ok")


def smoke_worker_kill() -> None:
    sequential = _sequential_fixpoint()
    result = run_sharded(tc_system(EDGES), 2, engine="sequential",
                         crash_round=1, crash_shard=0)
    assert result.respawns >= 1, "the injected kill never happened"
    assert not result.failures, result.failures
    assert result.replay_ok, result.replay_errors
    assert result.equivalent_to(sequential), \
        "post-crash forest diverged from the sequential fixpoint"
    print(f"[smoke] worker kill survived: respawns={result.respawns} "
          f"rounds={result.rounds} replay=ok")


async def smoke_pool() -> None:
    from ..serve.shard_pool import ShardPool

    with tempfile.TemporaryDirectory(prefix="paxml-shard-smoke-") as spool:
        pool = ShardPool(2, spool_dir=spool)
        await pool.start()
        try:
            for name in ("alpha", "beta"):
                await pool.place(name, TC_TEXT)
            assert len(set(pool.placement.values())) == 2, \
                "least-loaded placement left a worker idle"
            for name in ("alpha", "beta"):
                ran = await pool.forward("run", {"tenant": name,
                                                 "timeout": 60.0})
                assert ran["fixpoint"], f"{name} did not reach a fixpoint"
                read = await pool.forward("read", {"tenant": name,
                                                   "document": "d1"})
                assert read["tree"] == CLOSURE, read["tree"]

            moved = await pool.migrate("alpha")
            assert moved["from"] != moved["to"]
            read = await pool.forward("read", {"tenant": "alpha",
                                               "document": "d1"})
            assert read["tree"] == CLOSURE, "migration lost state"
            print(f"[smoke] migration alpha {moved['from']}->{moved['to']} "
                  "kept the closure")

            await pool.suspend("alpha")
            assert "alpha" in pool.spooled
            read = await pool.forward("read", {"tenant": "alpha",
                                               "document": "d1"})
            assert read["tree"] == CLOSURE, "transparent resume lost state"
            assert "alpha" in pool.placement
            print("[smoke] suspend + transparent resume ok")
        finally:
            await pool.shutdown()


def main() -> None:
    smoke_fixpoint()
    smoke_worker_kill()
    asyncio.run(smoke_pool())
    print("SMOKE PASS")


if __name__ == "__main__":
    try:
        main()
    except KeyboardInterrupt:
        sys.exit(130)
