"""Sharded multi-process execution with graft-log replication.

The paper's order-independence theorem says the limit ``[I]`` of a
positive system does not depend on which fair order the call sites
fire in — which makes the fixpoint embarrassingly partitionable.  This
package exploits that: a coordinator assigns each document an owner
shard (:mod:`~paxml.shard.plan`), every worker process runs its own
:class:`~paxml.kernel.EvaluationKernel` over a full replica of the
system (:mod:`~paxml.shard.worker`), and the workers exchange packed
:class:`~paxml.kernel.graft.GraftRecord` batches over length-prefixed
frames (:mod:`~paxml.shard.framing`) in bulk-synchronous rounds driven
by :func:`~paxml.shard.coordinator.run_sharded`.

Replication is log shipping: the same records that make a run
replayable (PR 3's graft log) are the records that make replicas
converge, and the coordinator's ordered history of shipped batches is
simultaneously the crash-recovery log — a respawned worker rebuilds
from the last shipped prefix and rejoins its round.
"""

from .bootstrap import bootstrap_worker
from .coordinator import (
    DEFAULT_TIMEOUT,
    ShardRunResult,
    WorkerDied,
    run_sharded,
)
from .plan import ShardError, ShardPlan, make_plan
from .wire import system_from_wire, system_to_wire

__all__ = [
    "DEFAULT_TIMEOUT",
    "ShardError",
    "ShardPlan",
    "ShardRunResult",
    "WorkerDied",
    "bootstrap_worker",
    "make_plan",
    "run_sharded",
    "system_from_wire",
    "system_to_wire",
]
