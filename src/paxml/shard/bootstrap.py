"""Per-process state bootstrap for shard workers.

paxml carries deliberate process-global state: the perf switchboard
(``perf.flags`` / ``perf.stats``), the registered process-level caches,
the observability bus, and the global stamp clock.  A worker process
must not trust any of it as inherited:

* under the ``fork`` start method the child gets a mid-run *copy* of the
  parent's globals — stats already nonzero, caches warm with the
  parent's nodes, bus subscribers pointing at parent-side objects;
* under ``spawn`` it gets a *fresh* module with compiled-in defaults,
  which silently ignores whatever flags the user configured.

Either way the contract is the same: the coordinator ships its flag
snapshot in the init message and the worker applies it **explicitly**
via :func:`bootstrap_worker`, after resetting everything else to zero.
The stamp clock is then restricted to the worker's residue class
(``shard (mod nshards)``) so stamps minted concurrently in different
workers can never collide when their wire forms meet in a replica.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .. import perf
from ..obs import bus as obs_bus
from ..tree.node import configure_stamp_clock


def bootstrap_worker(shard: int, nshards: int,
                     flags: Optional[Mapping[str, bool]] = None, *,
                     obs_active: bool = False) -> Dict[str, bool]:
    """Reset this process's global state and apply the explicit config.

    Must run before the worker builds any node of the run.  Returns the
    flag settings actually in effect (``PAXML_DISABLE_FLAGS`` still
    wins, exactly as in the parent).
    """
    perf.stats.reset()
    perf.clear_caches()
    obs_bus.reset()
    if obs_active:
        obs_bus.enable()
    if flags is not None:
        perf.flags.apply(dict(flags))
    configure_stamp_clock(offset=shard, stride=nshards)
    return perf.flags.snapshot()
