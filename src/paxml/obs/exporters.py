"""Exporters: JSONL event logs, Chrome trace-event files, Prometheus text.

Three views over the same run:

* :func:`write_jsonl` / :func:`read_jsonl` — the lossless archival form;
  a provenance index rebuilt from a read-back log is identical to one
  built live (the round-trip test asserts equality).
* :func:`to_chrome_trace` — the Chrome trace-event JSON format: load the
  file in ``chrome://tracing`` or https://ui.perfetto.dev and the run's
  in-flight window renders as a timeline, one lane per call site, with
  an ``in_flight`` counter track and instant markers for grafts,
  retries and breaker trips.
* :func:`prometheus_text` — the text exposition format for the unified
  metrics registry (counters, gauges, histogram summaries).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

from .events import (
    ATTEMPT_FAILED,
    ATTEMPT_FINISHED,
    ATTEMPT_STARTED,
    CALL_SCHEDULED,
    CIRCUIT_TRIP,
    Event,
    FLIGHT_DUMP,
    GRAFT_APPLIED,
    RETRY,
    RUN_FINISHED,
    RUN_STARTED,
    SERVE_OP,
    SPAN,
    SUBSCRIPTION_DELTA,
    WATCHDOG_STALL,
)
from .metrics import Histogram, Registry, REGISTRY

# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def write_jsonl(events: Iterable[Event],
                destination: Union[str, IO[str]]) -> int:
    """Write one event per line; returns the number written."""
    own = isinstance(destination, str)
    handle: IO[str] = open(destination, "w") if own else destination
    count = 0
    try:
        for event in events:
            handle.write(json.dumps(event.to_json_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_jsonl(source: Union[str, IO[str]]) -> List[Event]:
    """Read an event log back; blank lines are skipped."""
    own = isinstance(source, str)
    handle: IO[str] = open(source) if own else source
    try:
        return [Event.from_json_dict(json.loads(line))
                for line in handle if line.strip()]
    finally:
        if own:
            handle.close()


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------

def _microseconds(ts: float, origin: float) -> float:
    return (ts - origin) * 1e6


def to_chrome_trace(events: Iterable[Event]) -> Dict[str, object]:
    """Render an event stream as a Chrome trace-event document.

    Multi-tenant aware: each tenant becomes its own process (pid) with a
    ``process_name`` metadata row, untenanted events share the "paxml"
    process, and lanes (tids) are allocated per process — one per call
    site, one per serve op, one per span name — each with a
    ``thread_name`` metadata row.  Attempts and spans become complete
    ("X") slices, grafts/retries/trips/deltas become instants, and a
    per-process ``in_flight`` counter track shows the realized
    concurrency window over time.
    """
    events = sorted(events, key=lambda e: (e.ts, e.seq))
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = events[0].ts
    trace: List[Dict[str, object]] = []
    pids: Dict[Optional[str], int] = {}
    lanes: Dict[Tuple[int, object], int] = {}
    next_tid: Dict[int, int] = {}
    open_attempts: Dict[Tuple[int, int, int], Event] = {}
    in_flight: Dict[int, int] = {}

    def pid_of(data: Dict[str, object]) -> int:
        tenant = data.get("tenant")
        pid = pids.get(tenant)  # type: ignore[arg-type]
        if pid is None:
            pid = pids[tenant] = len(pids) + 1  # type: ignore[index]
            trace.append({"name": "process_name", "ph": "M", "pid": pid,
                          "args": {"name": ("paxml" if tenant is None
                                            else f"tenant {tenant}")}})
        return pid

    def lane(pid: int, key: object, label: str) -> int:
        tid = lanes.get((pid, key))
        if tid is None:
            tid = lanes[(pid, key)] = next_tid.get(pid, 1)
            next_tid[pid] = tid + 1
            trace.append({"name": "thread_name", "ph": "M", "pid": pid,
                          "tid": tid, "args": {"name": label}})
        return tid

    def site_lane(pid: int, data: Dict[str, object]) -> int:
        site = data.get("site", 0)
        service = data.get("service", "?")
        return lane(pid, ("site", site), f"!{service} @ node {site}")

    def counter(pid: int, ts: float) -> None:
        trace.append({"name": "in_flight", "ph": "C", "pid": pid,
                      "ts": _microseconds(ts, origin),
                      "args": {"calls": in_flight.get(pid, 0)}})

    for event in events:
        data = event.data
        ts = _microseconds(event.ts, origin)
        pid = pid_of(data)
        if event.kind == ATTEMPT_STARTED:
            open_attempts[(pid, data["site"], data["attempt"])] = event
            in_flight[pid] = in_flight.get(pid, 0) + 1
            counter(pid, event.ts)
        elif event.kind in (ATTEMPT_FINISHED, ATTEMPT_FAILED):
            key = (pid, data["site"], data["attempt"])
            start = open_attempts.pop(key, None)
            seconds = data.get("seconds", 0.0)
            begin = start.ts if start is not None else event.ts - seconds
            duration = (event.ts - begin if start is not None else seconds)
            ok = event.kind == ATTEMPT_FINISHED
            trace.append({
                "name": f"!{data['service']}"
                        + ("" if ok else " (failed)"),
                "cat": "attempt", "ph": "X", "pid": pid,
                "tid": site_lane(pid, data),
                "ts": _microseconds(begin, origin),
                "dur": max(duration, 0.0) * 1e6,
                "args": {k: v for k, v in data.items() if k != "service"},
            })
            if start is not None:
                in_flight[pid] = in_flight.get(pid, 0) - 1
                counter(pid, event.ts)
        elif event.kind == GRAFT_APPLIED:
            args = {"step": data.get("step"),
                    "trees": len(data.get("trees", ()))}
            if "trace_id" in data:
                args["trace_id"] = data["trace_id"]
            trace.append({
                "name": f"graft !{data.get('service', '?')}",
                "cat": "graft", "ph": "i", "s": "t", "pid": pid,
                "tid": site_lane(pid, data), "ts": ts, "args": args,
            })
        elif event.kind == SPAN:
            # Finished causal spans carry their own exact window.
            begin = data.get("ts_start", event.ts)
            end = data.get("ts_end", event.ts)
            status = data.get("status", "ok")
            trace.append({
                "name": str(data.get("name", "span"))
                        + ("" if status == "ok" else f" ({status})"),
                "cat": "span", "ph": "X", "pid": pid,
                "tid": lane(pid, ("span", data.get("name")),
                            f"span {data.get('name')}"),
                "ts": _microseconds(begin, origin),
                "dur": max(end - begin, 0.0) * 1e6,
                "args": {k: v for k, v in data.items()
                         if k not in ("name", "ts_start", "ts_end",
                                      "wall", "tenant")},
            })
        elif event.kind == SERVE_OP:
            seconds = data.get("seconds", 0.0)
            trace.append({
                "name": f"op:{data.get('op', '?')}",
                "cat": "serve", "ph": "X", "pid": pid,
                "tid": lane(pid, ("op", data.get("op")),
                            f"op {data.get('op')}"),
                "ts": _microseconds(event.ts - seconds, origin),
                "dur": max(seconds, 0.0) * 1e6,
                "args": {k: v for k, v in data.items() if k != "tenant"},
            })
        elif event.kind in (RETRY, CIRCUIT_TRIP):
            trace.append({
                "name": event.kind, "cat": "policy", "ph": "i", "s": "p",
                "pid": pid, "ts": ts, "args": dict(data),
            })
        elif event.kind in (RUN_STARTED, RUN_FINISHED):
            trace.append({
                "name": event.kind, "cat": "run", "ph": "i", "s": "p",
                "pid": pid, "ts": ts, "args": dict(data),
            })
        elif event.kind in (SUBSCRIPTION_DELTA, WATCHDOG_STALL, FLIGHT_DUMP):
            trace.append({
                "name": event.kind, "cat": "serve", "ph": "i", "s": "p",
                "pid": pid, "ts": ts, "args": dict(data),
            })
        elif event.kind == CALL_SCHEDULED:
            # One instant per scheduling decision, on the site's lane.
            trace.append({
                "name": "scheduled", "cat": "sched", "ph": "i", "s": "t",
                "pid": pid, "tid": site_lane(pid, data),
                "ts": ts, "args": dict(data),
            })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[Event], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle, indent=1)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"'
                     for name, value in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(registry: Optional[Registry] = None) -> str:
    """The registry in Prometheus text format (histograms as summaries)."""
    registry = registry or REGISTRY
    lines: List[str] = []
    for family in registry.families():
        kind = "summary" if family.kind == "histogram" else family.kind
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                summary = child.summary()
                for q in ("0.5", "0.95", "0.99"):
                    key = "p" + str(int(float(q) * 100))
                    if key in summary:
                        quantile_labels = dict(labels, quantile=q)
                        lines.append(f"{family.name}"
                                     f"{_labels_text(quantile_labels)} "
                                     f"{summary[key]}")
                lines.append(f"{family.name}_count{_labels_text(labels)} "
                             f"{summary['count']}")
                lines.append(f"{family.name}_sum{_labels_text(labels)} "
                             f"{summary['sum']}")
            else:
                lines.append(f"{family.name}{_labels_text(labels)} "
                             f"{child.value}")
    for name, entry in registry.collect().items():
        if any(name == family.name for family in registry.families()):
            continue
        samples = entry["samples"]  # type: ignore[index]
        lines.append(f"# TYPE {name} counter")
        for row in samples:  # type: ignore[union-attr]
            lines.append(f"{name}{_labels_text(row['labels'])} "
                         f"{row['value']}")
    return "\n".join(lines) + "\n"
