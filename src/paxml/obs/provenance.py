"""Derivation provenance: who grafted a node, from what, and when.

Two halves:

* **Answer staging** — while tracing is on, the query evaluators record,
  per freshly produced answer, how it was derived: the rule text, the
  rule's index within its service, a valuation summary, and the uids of
  the document nodes the rule body matched against.  The record is keyed
  by the answer's canonical key, which survives the copy that grafting
  makes, so the engines can attach it to the ``graft_applied`` event
  without the evaluators knowing anything about engines.
* **The provenance index** — built from ``graft_applied`` events (live,
  via :meth:`ProvenanceIndex.feed`, or offline from a JSONL event log),
  it maps *every* node uid inserted during a run to the
  :class:`Derivation` that inserted it and answers ``explain(uid)`` with
  the full derivation chain back to initial data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .events import Event, GRAFT_APPLIED

# ----------------------------------------------------------------------
# answer staging (written by the query layer, read at graft time)
# ----------------------------------------------------------------------

_STAGED: Dict[Hashable, Dict[str, Any]] = {}
_STAGED_MAX = 200_000  # answers staged but never grafted (e.g. plain queries)


def stage_answer(key: Hashable, *, rule: str, rule_index: int,
                 valuation: Dict[str, str], matched: List[int]) -> None:
    """Record how the answer with canonical key ``key`` was derived."""
    if len(_STAGED) >= _STAGED_MAX:
        _STAGED.clear()
    _STAGED[key] = {"rule": rule, "rule_index": rule_index,
                    "valuation": valuation, "matched": matched}


def take_staged(key: Hashable) -> Optional[Dict[str, Any]]:
    """Pop (and return) the staged derivation for ``key``, if any."""
    return _STAGED.pop(key, None)


def clear_staged() -> None:
    _STAGED.clear()


def graft_record(tree: "Any") -> Dict[str, Any]:
    """The per-tree payload of a ``graft_applied`` event.

    ``tree`` is the freshly inserted (copied) answer tree, already hanging
    off its parent in the document.  Provenance staged by the evaluator is
    matched by canonical key (identical for the copy) and inlined.
    """
    from ..tree.reduction import canonical_key
    from ..tree.serializer import to_canonical

    text = to_canonical(tree)
    if len(text) > 200:
        text = text[:197] + "..."
    record: Dict[str, Any] = {
        "root": tree.uid,
        "parent": tree.parent.uid if tree.parent is not None else None,
        "nodes": [node.uid for node in tree.iter_nodes()],
        "text": text,
    }
    staged = take_staged(canonical_key(tree))
    if staged is not None:
        record.update(staged)
    return record


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------


@dataclass
class Derivation:
    """Why one grafted tree is in the materialized document."""

    root: int                      # uid of the inserted tree's root
    nodes: Tuple[int, ...]         # uids of every node in the inserted tree
    parent: Optional[int]          # uid of the graft parent
    document: str
    service: str
    site: int                      # uid of the invoked call node
    step: int                      # engine step ordinal at graft time
    text: str                      # canonical text of the inserted tree
    rule: Optional[str] = None         # rule text, when a positive query
    rule_index: Optional[int] = None   # index of the rule within its service
    valuation: Dict[str, str] = field(default_factory=dict)
    matched: Tuple[int, ...] = ()  # uids of the body embedding's image nodes
    seq: int = -1                  # emitting event's sequence number
    ts: float = 0.0

    def headline(self) -> str:
        rule = ("rule ?" if self.rule_index is None
                else f"rule {self.rule_index}")
        return (f"grafted by {rule} of service {self.service!r} at step "
                f"{self.step} into {self.document!r}")


@dataclass
class ExplainEntry:
    """One link of a derivation chain, at ``depth`` from the asked node."""

    uid: int
    depth: int
    derivation: Optional[Derivation]   # None ⇒ the node is initial data

    @property
    def initial(self) -> bool:
        return self.derivation is None


class ProvenanceIndex:
    """Node-uid → derivation, rebuilt identically from any event source."""

    def __init__(self) -> None:
        self.derivations: List[Derivation] = []
        self.by_node: Dict[int, Derivation] = {}

    # -- construction ----------------------------------------------------

    def feed(self, event: Event) -> None:
        """Bus-subscriber entry point; ignores everything but grafts."""
        if event.kind != GRAFT_APPLIED:
            return
        data = event.data
        for tree in data.get("trees", ()):
            derivation = Derivation(
                root=tree["root"],
                nodes=tuple(tree.get("nodes", ())),
                parent=tree.get("parent"),
                document=data.get("document", "?"),
                service=data.get("service", "?"),
                site=data.get("site", -1),
                step=data.get("step", -1),
                text=tree.get("text", ""),
                rule=tree.get("rule"),
                rule_index=tree.get("rule_index"),
                valuation=dict(tree.get("valuation", {})),
                matched=tuple(tree.get("matched", ())),
                seq=event.seq,
                ts=event.ts,
            )
            self.derivations.append(derivation)
            for uid in derivation.nodes:
                self.by_node[uid] = derivation

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "ProvenanceIndex":
        index = cls()
        for event in events:
            index.feed(event)
        return index

    # -- queries ---------------------------------------------------------

    def derivation_of(self, uid: int) -> Optional[Derivation]:
        return self.by_node.get(uid)

    def derived_uids(self) -> Set[int]:
        return set(self.by_node)

    def roots(self) -> List[Derivation]:
        return list(self.derivations)

    def explain(self, uid: int, max_depth: int = 50) -> List[ExplainEntry]:
        """The full derivation chain for ``uid``.

        The first entry is the node itself; subsequent entries are the
        matched nodes its graft depended on, recursively, each resolved to
        its own derivation (or marked initial).  Each *derivation* is
        visited once — confluence makes the chain a DAG, and the visited
        set makes traversal linear even on dense sharing.
        """
        chain: List[ExplainEntry] = []
        # One event can graft several trees (several derivations share its
        # seq), so derivations are identified by (seq, root).
        visited: Set[Tuple[int, int]] = set()

        def walk(node_uid: int, depth: int) -> None:
            derivation = self.by_node.get(node_uid)
            chain.append(ExplainEntry(node_uid, depth, derivation))
            if derivation is None or depth >= max_depth:
                return
            if (derivation.seq, derivation.root) in visited:
                return
            visited.add((derivation.seq, derivation.root))
            for matched_uid in derivation.matched:
                walk(matched_uid, depth + 1)

        walk(uid, 0)
        return chain

    def format_explain(self, uid: int,
                       node_texts: Optional[Dict[int, str]] = None) -> str:
        """Human-readable rendering of :meth:`explain`."""
        lines: List[str] = []
        texts = node_texts or {}
        # (seq, root) → first uid rendered for that derivation
        shown_at: Dict[Tuple[int, int], int] = {}
        for entry in self.explain(uid):
            indent = "  " * entry.depth
            text = (entry.derivation.text if entry.derivation is not None
                    else texts.get(entry.uid, ""))
            shown = f" = {text}" if text else ""
            if entry.initial:
                lines.append(f"{indent}node {entry.uid}{shown}: initial data")
                continue
            d = entry.derivation
            assert d is not None
            first = shown_at.get((d.seq, d.root))
            if first is not None and first != entry.uid:
                lines.append(f"{indent}node {entry.uid}: same graft as "
                             f"node {first} (above)")
                continue
            shown_at[(d.seq, d.root)] = entry.uid
            lines.append(f"{indent}node {entry.uid}{shown}: {d.headline()}")
            if d.valuation:
                pairs = ", ".join(f"{k}={v}" for k, v in
                                  sorted(d.valuation.items()))
                lines.append(f"{indent}  valuation: {pairs}")
            if d.rule:
                lines.append(f"{indent}  rule: {d.rule}")
            if d.matched:
                lines.append(f"{indent}  matched nodes: "
                             f"{{{', '.join(map(str, d.matched))}}}")
        return "\n".join(lines)

    # -- equality (the exporter round-trip test) -------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceIndex):
            return NotImplemented
        return self.derivations == other.derivations

    def __len__(self) -> int:
        return len(self.derivations)
