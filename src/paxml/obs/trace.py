"""Causal trace contexts and spans for the serving layer.

A :class:`TraceContext` is minted once, at client-request admission
(head-based sampling: the decision to record is taken exactly once, at
the head of the call chain), and then *propagated* — through the JSONL
wire protocol as a ``trace`` envelope field, through the server's op
handlers via a :mod:`contextvars` variable, and through the evaluation
kernel via *site tagging*: every call node grafted while a context is
active inherits that context, so the invocation that later fires from
that node — possibly many slices and awaits later — re-activates it and
the grafts *it* produces carry the same ``trace_id``.  That is the
end-to-end causality contract: for a traced ``inject``, the resulting
:class:`~paxml.kernel.graft.GraftRecord`, the subscription deltas it
produces and the flight-recorder entries all carry the injecting
request's ``trace_id``.

Cost model (the PR 8 bench gates):

* tracing disabled (``perf.flags.tracing`` off) or an unsampled request
  — :func:`admit` returns ``None`` and *nothing downstream allocates*:
  the kernel's per-graft cost is one ``ContextVar.get`` returning
  ``None`` and the runtime's per-invocation cost one ``dict.get`` on an
  (empty) tag map.  Gate: ≤ 1 % CPU on the PR 7 many-tenants scenario.
* a sampled request — contexts are small frozen records, spans are built
  only at completion, and dispatch goes to explicitly registered span
  sinks (the flight recorder, a live ``watch`` tail).  Gate: ≤ 5 % at
  the default 10 % sampling rate.

Spans are mirrored onto the :mod:`paxml.obs.bus` as ``span`` events when
the bus is active, so the existing JSONL/Chrome-trace exporters render
them (tenants as pids, sessions/ops as tids — see
:func:`paxml.obs.exporters.to_chrome_trace`).
"""

from __future__ import annotations

import contextvars
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .. import perf
from . import bus as obs_bus
from . import events as obs_events

#: Default head-sampling rate for serve-layer requests; a server can
#: override per instance (``ServerOptions.trace_sample_rate``).  The
#: whole machinery is additionally gated by ``perf.flags.tracing``.
DEFAULT_SAMPLE_RATE = 0.1

_rng = random.Random()


def seed_sampler(seed: Optional[int]) -> None:
    """Make sampling decisions and ids deterministic (tests, replays)."""
    global _rng
    _rng = random.Random(seed)


def _new_id() -> str:
    return f"{_rng.getrandbits(64):016x}"


@dataclass(frozen=True)
class TraceContext:
    """One causal identity: (trace, span, parent, tenant, sampled-bit).

    Frozen so a context can be shared across tasks and tagged onto many
    call sites without aliasing surprises; derive with :meth:`child`.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None
    tenant: Optional[str] = None
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A new span under this one (same trace, same tenant)."""
        return TraceContext(trace_id=self.trace_id, span_id=_new_id(),
                            parent_span_id=self.span_id, tenant=self.tenant,
                            sampled=self.sampled)

    def to_wire(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"trace_id": self.trace_id,
                                  "span_id": self.span_id,
                                  "sampled": self.sampled}
        if self.parent_span_id is not None:
            record["parent_span_id"] = self.parent_span_id
        if self.tenant is not None:
            record["tenant"] = self.tenant
        return record

    @classmethod
    def from_wire(cls, record: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        """Rebuild a propagated context; unsampled envelopes drop to
        ``None`` (head-based sampling: nothing downstream records)."""
        if not record or not record.get("sampled", True):
            return None
        if "trace_id" not in record or "span_id" not in record:
            return None
        return cls(trace_id=str(record["trace_id"]),
                   span_id=str(record["span_id"]),
                   parent_span_id=record.get("parent_span_id"),
                   tenant=record.get("tenant"), sampled=True)


# ----------------------------------------------------------------------
# the active context (async-aware: contextvars follow the task)
# ----------------------------------------------------------------------

_current: contextvars.ContextVar[Optional[TraceContext]] = \
    contextvars.ContextVar("paxml_trace", default=None)


def current() -> Optional[TraceContext]:
    """The context active on this task, or ``None``."""
    return _current.get()


def activate(ctx: Optional[TraceContext]) -> contextvars.Token:
    """Set the active context; pair with :func:`restore` (loop-friendly
    when a ``with`` block would span awaits owned by different tasks)."""
    return _current.set(ctx)


def restore(token: contextvars.Token) -> None:
    _current.reset(token)


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """``with use(ctx): ...`` — scoped activation."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


# ----------------------------------------------------------------------
# admission (the one head-sampling decision per request)
# ----------------------------------------------------------------------


def admit(tenant: Optional[str] = None, *,
          rate: Optional[float] = None,
          parent: Optional[Dict[str, Any]] = None) -> Optional[TraceContext]:
    """Mint (or adopt) the context for one admitted client request.

    ``parent`` is the request's ``trace`` envelope field, if the client
    sent one — a propagated context is adopted as-is (its head already
    took the sampling decision) with a fresh span for the server-side
    op.  Otherwise a local head decision is taken at ``rate``
    (:data:`DEFAULT_SAMPLE_RATE` when ``None``).  Returns ``None`` for
    unsampled requests — the near-zero-cost path.
    """
    if not perf.flags.tracing:
        return None
    inherited = TraceContext.from_wire(parent)
    if inherited is not None:
        perf.stats.trace_requests_sampled += 1
        if tenant is not None and inherited.tenant is None:
            inherited = TraceContext(
                trace_id=inherited.trace_id, span_id=_new_id(),
                parent_span_id=inherited.span_id, tenant=tenant)
        return inherited
    r = DEFAULT_SAMPLE_RATE if rate is None else rate
    if r <= 0.0 or (r < 1.0 and _rng.random() >= r):
        perf.stats.trace_requests_unsampled += 1
        return None
    perf.stats.trace_requests_sampled += 1
    return TraceContext(trace_id=_new_id(), span_id=_new_id(), tenant=tenant)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


@dataclass
class Span:
    """One timed operation inside a trace (built at completion)."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str]
    tenant: Optional[str]
    name: str                  # e.g. "op:inject", "invoke:!f", "graft"
    ts_start: float            # time.perf_counter at entry
    ts_end: float
    wall: float                # epoch seconds at completion
    status: str = "ok"         # "ok" | "error"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.ts_end - self.ts_start

    def to_json_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_span_id": self.parent_span_id, "tenant": self.tenant,
                "name": self.name, "ts_start": self.ts_start,
                "ts_end": self.ts_end, "wall": self.wall,
                "status": self.status, "attrs": self.attrs}


SpanSink = Callable[[Span], None]

_sinks: List[SpanSink] = []


def subscribe_spans(fn: SpanSink) -> None:
    if fn not in _sinks:
        _sinks.append(fn)


def unsubscribe_spans(fn: SpanSink) -> None:
    try:
        _sinks.remove(fn)
    except ValueError:
        pass


def sink_count() -> int:
    return len(_sinks)


def emit_span(ctx: TraceContext, name: str, ts_start: float, ts_end: float,
              *, status: str = "ok", **attrs: Any) -> Span:
    """Build one finished span and dispatch it to sinks (and the bus).

    Callers hold the timing themselves (explicit start/end) so a span
    can straddle awaits without pinning a context manager to one task.
    """
    span = Span(trace_id=ctx.trace_id, span_id=ctx.span_id,
                parent_span_id=ctx.parent_span_id, tenant=ctx.tenant,
                name=name, ts_start=ts_start, ts_end=ts_end,
                wall=time.time(), status=status, attrs=attrs)
    perf.stats.trace_spans += 1
    for fn in list(_sinks):
        try:
            fn(span)
        except Exception:
            perf.stats.obs_dropped += 1
    if obs_bus.ACTIVE:
        obs_bus.emit(obs_events.SPAN, **span.to_json_dict())
    return span


@contextmanager
def span(name: str, ctx: Optional[TraceContext] = None,
         **attrs: Any) -> Iterator[Optional[TraceContext]]:
    """Time a block as a child span of ``ctx`` (or the active context).

    No-op (yields ``None``) when there is no context — the unsampled
    path stays allocation-free.  The child context is active inside the
    block, so grafts applied within inherit the span's identity.
    """
    parent = ctx if ctx is not None else _current.get()
    if parent is None:
        yield None
        return
    child = parent.child()
    token = _current.set(child)
    start = time.perf_counter()
    status = "ok"
    try:
        yield child
    except BaseException:
        status = "error"
        raise
    finally:
        _current.reset(token)
        emit_span(child, name, start, time.perf_counter(),
                  status=status, **attrs)


def reset() -> None:
    """Forget sinks and the active context (test isolation)."""
    _sinks.clear()
    try:
        _current.set(None)
    except LookupError:  # pragma: no cover
        pass
