"""The process-wide structured event bus (near-zero cost when off).

Instrumented call sites across the engines are written as::

    from ..obs import bus as obs_bus
    ...
    if obs_bus.ACTIVE:
        obs_bus.emit(events.GRAFT_APPLIED, document=..., service=..., ...)

``ACTIVE`` is a plain module-level bool, so a disabled bus costs one
attribute load and a branch per instrumentation point — the overhead
``benchmarks/bench_pr3.py`` budgets at ≤ 5 % of scenario wall-clock and
measures at well under 1 %.  Payload keyword arguments are only built
*inside* the guard, so no allocation happens when tracing is off.

Dispatch is synchronous and in-order (events carry a global sequence
number); a subscriber that raises is counted in ``dropped`` and in
``perf.stats.obs_dropped`` rather than crashing the engine mid-graft.
Emission is mirrored into ``perf.stats.obs_events`` so the perf
switchboard and the metrics registry agree on how much tracing happened
(the mirror-consistency tests assert exactly that).

Subscribers may register for a *subset* of kinds —
``subscribe(fn, kinds={"serve_op", "span"})`` — in which case ``fn`` is
only called for those kinds; a serve-layer exporter then pays nothing
for the hot-path graft events.  A bare ``subscribe(fn)`` still receives
everything.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from .. import perf
from .events import Event

Subscriber = Callable[[Event], None]

ACTIVE: bool = False

_subscribers: List[Subscriber] = []
_kind_subscribers: Dict[str, List[Subscriber]] = {}
_seq = itertools.count()

emitted: int = 0   # events successfully dispatched since process start
dropped: int = 0   # subscriber exceptions swallowed


def enable() -> None:
    """Turn the process-wide instrumentation on."""
    global ACTIVE
    ACTIVE = True


def disable() -> None:
    """Turn instrumentation off; subscribers stay registered."""
    global ACTIVE
    ACTIVE = False


def enabled() -> bool:
    return ACTIVE


def subscribe(fn: Subscriber,
              kinds: Optional[Iterable[str]] = None) -> None:
    """Register ``fn``; with ``kinds`` it only sees those event kinds.

    Re-subscribing the same callable replaces its previous registration
    (wildcard or filtered), so tightening a filter never double-delivers.
    """
    unsubscribe(fn)
    if kinds is None:
        _subscribers.append(fn)
        return
    for kind in kinds:
        _kind_subscribers.setdefault(kind, []).append(fn)


def unsubscribe(fn: Subscriber) -> None:
    try:
        _subscribers.remove(fn)
    except ValueError:
        pass
    for kind in [k for k, fns in _kind_subscribers.items() if fn in fns]:
        _kind_subscribers[kind].remove(fn)
        if not _kind_subscribers[kind]:
            del _kind_subscribers[kind]


def subscriber_count() -> int:
    distinct = set(_subscribers)
    for fns in _kind_subscribers.values():
        distinct.update(fns)
    return len(distinct)


def emit(kind: str, **data: Any) -> None:
    """Build and dispatch one event (no-op while the bus is disabled).

    Callers should guard with ``if bus.ACTIVE:`` so the payload dict is
    never built on the off path; the re-check here keeps a bare
    ``emit()`` call safe too.
    """
    global emitted, dropped
    if not ACTIVE:
        return
    event = Event(kind, next(_seq), time.perf_counter(), time.time(), data)
    emitted += 1
    perf.stats.obs_events += 1
    targeted = _kind_subscribers.get(kind)
    receivers = _subscribers + targeted if targeted else _subscribers
    for fn in list(receivers):
        try:
            fn(event)
        except Exception:
            dropped += 1
            perf.stats.obs_dropped += 1


def reset() -> None:
    """Disable, forget subscribers and zero the counters (test isolation)."""
    global ACTIVE, emitted, dropped, _seq
    ACTIVE = False
    _subscribers.clear()
    _kind_subscribers.clear()
    emitted = 0
    dropped = 0
    _seq = itertools.count()
