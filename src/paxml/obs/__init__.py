"""``paxml.obs`` — unified tracing, provenance and metrics.

Confluence makes the materialized limit ``[I]`` order-independent; this
package records the *history* that produced it.  Both engines emit typed
events into one process-wide bus (:mod:`paxml.obs.bus`); from the event
stream this package derives

* a **provenance index** answering "why is this node in the document?"
  (:mod:`paxml.obs.provenance`, surfaced as ``paxml explain``),
* a **unified metrics registry** absorbing ``perf.stats`` and the async
  runtime's counters behind one API (:mod:`paxml.obs.metrics`),
* three **exporters** — JSONL event logs, Chrome trace-event timelines
  for ``chrome://tracing``/Perfetto, and Prometheus text
  (:mod:`paxml.obs.exporters`, surfaced as ``paxml trace``).

Instrumentation is off by default and costs one module-attribute check
per site when off (see ``benchmarks/bench_pr3.py`` for the measured
budget).  Quickstart::

    from paxml import obs

    with obs.tracing() as trace:
        materialize(system)
    index = obs.ProvenanceIndex.from_events(trace.events)
    print(index.format_explain(some_node.uid))
    obs.write_jsonl(trace.events, "run.events.jsonl")
    obs.write_chrome_trace(trace.events, "run.trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from . import bus, events, trace
from .events import Event
from .exporters import (
    prometheus_text,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .flight import FlightRecorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    REGISTRY,
    ScopedRegistry,
    absorb_rewrite,
    absorb_runtime,
    nearest_rank,
)
from .provenance import Derivation, ExplainEntry, ProvenanceIndex
from .slo import DEFAULT_SLOS, SLOBoard, SLOSpec
from .trace import Span, TraceContext

enable = bus.enable
disable = bus.disable
enabled = bus.enabled
subscribe = bus.subscribe
unsubscribe = bus.unsubscribe
emit = bus.emit


class TraceRecorder:
    """A subscriber that collects the event stream in order."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def provenance(self) -> ProvenanceIndex:
        return ProvenanceIndex.from_events(self.events)


@contextmanager
def tracing(recorder: Optional[TraceRecorder] = None
            ) -> Iterator[TraceRecorder]:
    """Enable the bus for the duration of the block and record events.

    Restores the previous enabled state and unsubscribes the recorder on
    exit, so nested/sequential uses compose.
    """
    if recorder is None:   # not `or`: an empty recorder is falsy (__len__)
        recorder = TraceRecorder()
    was_active = bus.ACTIVE
    bus.subscribe(recorder)
    bus.enable()
    try:
        yield recorder
    finally:
        bus.unsubscribe(recorder)
        if not was_active:
            bus.disable()


__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "Derivation",
    "Event",
    "ExplainEntry",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "ProvenanceIndex",
    "REGISTRY",
    "Registry",
    "SLOBoard",
    "SLOSpec",
    "ScopedRegistry",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "absorb_rewrite",
    "absorb_runtime",
    "bus",
    "disable",
    "emit",
    "enable",
    "enabled",
    "events",
    "nearest_rank",
    "prometheus_text",
    "read_jsonl",
    "subscribe",
    "to_chrome_trace",
    "trace",
    "tracing",
    "unsubscribe",
    "write_chrome_trace",
    "write_jsonl",
]
