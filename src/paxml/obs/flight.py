"""Always-on bounded flight recorder for the serving layer.

A :class:`FlightRecorder` keeps the last *N* interesting records per
tenant in ring buffers — serve ops, spans, watchdog diagnostics, and
(when the bus is active) a kind-filtered slice of bus events — and can
dump them as a JSONL post-mortem bundle at any time: on demand (the
``dump`` server op), on drain, or from a crash handler.  Unlike the bus
it is *always on* once attached to a server: the cost is bounded by the
ring capacity and by what the serve layer explicitly records, not by
the engines' hot paths (graft/attempt events only reach it when the
bus is enabled *and* the recorder subscribed for them).

The dump format is one JSON object per line with the same shape as
:meth:`paxml.obs.events.Event.to_json_dict` — ``kind``/``seq``/``ts``/
``wall``/``data`` — so :func:`paxml.obs.exporters.read_jsonl` reads a
post-mortem bundle back and ``paxml explain`` / ``to_chrome_trace``
work on it unchanged.  Spans are recorded as ``span`` events whose
``data`` is :meth:`paxml.obs.trace.Span.to_json_dict`.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from . import bus as obs_bus
from . import events as obs_events
from .events import Event
from .trace import Span

#: Default ring capacity per tenant (records, not bytes).
DEFAULT_CAPACITY = 512

#: Bucket for records that carry no tenant (server-wide events).
GLOBAL = "*"

#: Bus kinds worth keeping in the ring when the bus is active.  The
#: per-attempt firehose (attempt_started/finished) is deliberately
#: excluded: the ring is for reconstructing *what went wrong*, and the
#: failure-shaped kinds below cover that without churning the buffer.
DEFAULT_BUS_KINDS = frozenset({
    obs_events.ATTEMPT_FAILED, obs_events.RETRY, obs_events.CIRCUIT_TRIP,
    obs_events.CALL_EXHAUSTED, obs_events.STALE_CALL,
    obs_events.GRAFT_APPLIED, obs_events.SUBSCRIPTION_DELTA,
    obs_events.TENANT_CREATED, obs_events.TENANT_SUSPENDED,
    obs_events.TENANT_RESUMED, obs_events.WATCHDOG_STALL,
})


class FlightRecorder:
    """Bounded per-tenant ring buffers of recent events and spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._rings: Dict[str, Deque[Dict[str, Any]]] = {}
        self._seq = itertools.count()
        self.recorded = 0   # total records accepted (before eviction)
        self.dumps = 0      # bundles written

    # -- recording -----------------------------------------------------

    def _ring(self, tenant: Optional[str]) -> Deque[Dict[str, Any]]:
        key = tenant if tenant is not None else GLOBAL
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = deque(maxlen=self.capacity)
        return ring

    def record(self, tenant: Optional[str], kind: str, /,
               **data: Any) -> None:
        """Record one ad-hoc JSON-safe event for ``tenant``.

        The tenant is stamped into the payload too, so a dumped bundle
        re-read through :func:`~paxml.obs.exporters.read_jsonl` buckets
        into the right Chrome-trace process."""
        if tenant is not None:
            data.setdefault("tenant", tenant)
        self._ring(tenant).append({
            "kind": kind, "seq": next(self._seq),
            "ts": time.perf_counter(), "wall": time.time(), "data": data})
        self.recorded += 1

    def record_event(self, event: Event) -> None:
        """Bus-subscriber entry point; buckets by the payload's tenant."""
        self._ring(event.data.get("tenant")).append(event.to_json_dict())
        self.recorded += 1

    def record_span(self, span: Span) -> None:
        """Span-sink entry point (wire with ``trace.subscribe_spans``)."""
        self._ring(span.tenant).append({
            "kind": obs_events.SPAN, "seq": next(self._seq),
            "ts": span.ts_end, "wall": span.wall,
            "data": span.to_json_dict()})
        self.recorded += 1

    def attach(self, kinds: Optional[Iterable[str]] = None) -> None:
        """Subscribe to the bus for ``kinds`` (:data:`DEFAULT_BUS_KINDS`
        when ``None``); only delivers while the bus is enabled."""
        obs_bus.subscribe(self.record_event,
                          kinds=DEFAULT_BUS_KINDS if kinds is None else kinds)

    def detach(self) -> None:
        obs_bus.unsubscribe(self.record_event)

    # -- inspection / dumping ------------------------------------------

    def tenants(self) -> List[str]:
        return sorted(self._rings)

    def snapshot(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Recent records, oldest first.  ``None`` merges every tenant
        (ordered by emission ``ts``); a tenant name selects one ring."""
        if tenant is not None:
            return list(self._rings.get(tenant, ()))
        merged: List[Dict[str, Any]] = []
        for ring in self._rings.values():
            merged.extend(ring)
        merged.sort(key=lambda r: (r.get("ts", 0.0), r.get("seq", 0)))
        return merged

    def dump(self, path: str, tenant: Optional[str] = None,
             reason: str = "manual") -> int:
        """Write a JSONL post-mortem bundle; returns records written."""
        records = self.snapshot(tenant)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.dumps += 1
        if obs_bus.ACTIVE:
            obs_bus.emit(obs_events.FLIGHT_DUMP,
                         tenant=tenant if tenant is not None else GLOBAL,
                         records=len(records), path=str(path), reason=reason)
        return len(records)

    def clear(self, tenant: Optional[str] = None) -> None:
        if tenant is None:
            self._rings.clear()
        else:
            self._rings.pop(tenant, None)
