"""The typed event taxonomy of the observability subsystem.

Every instrumented operation in the two engines emits one of the event
kinds below through :mod:`paxml.obs.bus`.  An event is a flat record —
kind, global sequence number, two clocks, and a JSON-safe payload dict —
so the same stream serialises losslessly to JSONL, renders as a Chrome
trace, and rebuilds the provenance index.

Taxonomy (the ``data`` keys each kind carries):

========================  =====================================================
kind                      payload
========================  =====================================================
``run_started``           engine, documents, services
``run_finished``          engine, status, steps, productive, seconds
``call_scheduled``        document, service, site
``attempt_started``       document, service, site, attempt
``attempt_finished``      document, service, site, attempt, seconds, answers
``attempt_failed``        document, service, site, attempt, reason, timeout
``retry``                 service, site, attempt, delay
``short_circuit``         service, site, wait
``circuit_trip``          peer, service
``stale_call``            document, service, site
``call_exhausted``        document, service, site, attempts, reason
``graft_applied``         document, service, site, step, trees — each tree a
                          record with root/nodes/parent/text plus provenance
                          (rule, rule_index, valuation, matched) when the
                          answer came from a positive query
``plan_compiled``         rule, atoms — each atom a record with document and
                          the planned (selectivity-ordered) pattern text
``plan_lowered``          rule, atoms — the plan was lowered to specialized
                          closures (once per plan, on first closure-path
                          execution)
``store_warmed``          rows, interned_markings — a document tree was
                          (re)indexed wholesale into the columnar store
``tenant_created``        tenant, documents, services
``tenant_suspended``      tenant, bundle, steps, productive
``tenant_resumed``        tenant, bundle, steps, productive
``subscription_opened``   tenant, query, initial — a continuous query was
                          registered (or re-attached) with that many
                          already-known answers
``subscription_delta``    tenant, query, answers — a graft produced new
                          certain answers for one continuous query (emitted
                          once per query, not per subscriber); plus
                          trace_id/span_id when the causing graft was traced
``span``                  trace_id, span_id, parent_span_id, tenant, name,
                          ts_start, ts_end, wall, status, attrs — a finished
                          causal span (mirror of paxml.obs.trace sinks)
``serve_op``              tenant, op, seconds, ok, and trace_id when the
                          request was sampled — one handled server request
``watchdog_stall``        tenant, stalled_for, fresh, parked, tried,
                          attempts, open_breakers, last_graft_trace — a
                          session whose frontier stopped advancing
``flight_dump``           tenant ("*" = all), records, path, reason — a
                          flight-recorder post-mortem bundle was written
``shard_worker_started``  shard, nshards, owned, replayed — a shard worker
                          finished bootstrapping (replayed counts records
                          re-applied from the coordinator's shipped-log
                          prefix after a crash respawn)
``shard_record_applied``  shard, origin, document, service, site, trees —
                          one replicated graft record applied to a replica
``shard_round``           round, produced, workers — the coordinator closed
                          one bulk-synchronous replication round
``relevance_changed``     reason (seed/reseed/graft/external), promoted,
                          demoted, relevant, dormant — the lazy scheduler's
                          weakly-relevant set changed and sites moved between
                          the fresh and dormant queues
========================  =====================================================

``site`` is always the call node's uid; ``ts`` is a monotonic
``time.perf_counter`` stamp shared by both engines (the Chrome-trace
timeline axis), ``wall`` the epoch time of emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

RUN_STARTED = "run_started"
RUN_FINISHED = "run_finished"
CALL_SCHEDULED = "call_scheduled"
ATTEMPT_STARTED = "attempt_started"
ATTEMPT_FINISHED = "attempt_finished"
ATTEMPT_FAILED = "attempt_failed"
RETRY = "retry"
SHORT_CIRCUIT = "short_circuit"
CIRCUIT_TRIP = "circuit_trip"
STALE_CALL = "stale_call"
CALL_EXHAUSTED = "call_exhausted"
GRAFT_APPLIED = "graft_applied"
PLAN_COMPILED = "plan_compiled"
PLAN_LOWERED = "plan_lowered"
STORE_WARMED = "store_warmed"
CHECKPOINT_SAVED = "checkpoint_saved"
RUN_RESUMED = "run_resumed"
TENANT_CREATED = "tenant_created"
TENANT_SUSPENDED = "tenant_suspended"
TENANT_RESUMED = "tenant_resumed"
SUBSCRIPTION_OPENED = "subscription_opened"
SUBSCRIPTION_DELTA = "subscription_delta"
SPAN = "span"
SERVE_OP = "serve_op"
WATCHDOG_STALL = "watchdog_stall"
FLIGHT_DUMP = "flight_dump"
SHARD_WORKER_STARTED = "shard_worker_started"
SHARD_RECORD_APPLIED = "shard_record_applied"
SHARD_ROUND = "shard_round"
RELEVANCE_CHANGED = "relevance_changed"

ALL_KINDS = frozenset({
    RUN_STARTED, RUN_FINISHED, CALL_SCHEDULED, ATTEMPT_STARTED,
    ATTEMPT_FINISHED, ATTEMPT_FAILED, RETRY, SHORT_CIRCUIT, CIRCUIT_TRIP,
    STALE_CALL, CALL_EXHAUSTED, GRAFT_APPLIED, PLAN_COMPILED, PLAN_LOWERED,
    STORE_WARMED, CHECKPOINT_SAVED, RUN_RESUMED, TENANT_CREATED,
    TENANT_SUSPENDED, TENANT_RESUMED, SUBSCRIPTION_OPENED, SUBSCRIPTION_DELTA,
    SPAN, SERVE_OP, WATCHDOG_STALL, FLIGHT_DUMP, SHARD_WORKER_STARTED,
    SHARD_RECORD_APPLIED, SHARD_ROUND, RELEVANCE_CHANGED,
})


@dataclass
class Event:
    """One structured event; ``data`` holds only JSON-safe values."""

    __slots__ = ("kind", "seq", "ts", "wall", "data")

    kind: str
    seq: int
    ts: float     # monotonic (time.perf_counter) — orders/aligns timelines
    wall: float   # epoch seconds at emission
    data: Dict[str, Any]

    def to_json_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "seq": self.seq, "ts": self.ts,
                "wall": self.wall, "data": self.data}

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any]) -> "Event":
        return cls(record["kind"], record["seq"], record["ts"],
                   record["wall"], record.get("data", {}))
