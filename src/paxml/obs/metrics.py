"""The unified metrics registry: labeled counters, gauges and histograms.

One process-wide :data:`REGISTRY` absorbs every counter the system keeps
behind a single API:

* the incremental-engine counters of :mod:`paxml.perf` are pulled in at
  collect time through a registered *collector* (no hot-path cost: the
  `perf.stats.x += 1` sites stay exactly as cheap as before);
* each :class:`paxml.runtime.metrics.RuntimeMetrics` run summary is
  pushed in once per run via :func:`absorb_runtime`;
* each sequential :class:`~paxml.system.rewriting.RewriteResult` via
  :func:`absorb_rewrite`;
* anything else can create its own labeled families.

``REGISTRY.collect()`` yields one JSON-safe snapshot;
:func:`paxml.obs.exporters.prometheus_text` renders the same registry in
the Prometheus text exposition format.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import perf

_SAMPLE_CAP = 10_000


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """The nearest-rank quantile of a pre-sorted non-empty sequence.

    ``ordered[ceil(q·n) - 1]`` — well-defined for every ``0 < q ≤ 1``
    including exactly at the sample-cap boundary, where the previous
    ``int(q·n)`` indexing was biased one rank high whenever ``q·n`` was
    integral.
    """
    if not ordered:
        raise ValueError("nearest_rank of an empty sequence")
    rank = math.ceil(q * len(ordered))
    return ordered[max(rank, 1) - 1]


class Counter:
    """A monotone counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Bounded-reservoir histogram with nearest-rank quantiles.

    Keeps the first ``cap`` observations exactly (enough for the bench
    scenarios), counts the rest in ``dropped``; ``count``/``total`` stay
    exact regardless.
    """

    __slots__ = ("samples", "dropped", "count", "total", "cap")

    def __init__(self, cap: int = _SAMPLE_CAP) -> None:
        self.samples: List[float] = []
        self.dropped = 0
        self.count = 0
        self.total = 0.0
        self.cap = cap

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self.samples) < self.cap:
            self.samples.append(value)
        else:
            self.dropped += 1

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": self.count, "sum": self.total,
                    "dropped": self.dropped}
        ordered = sorted(self.samples)
        return {
            "count": self.count,
            "sum": self.total,
            "dropped": self.dropped,
            "mean": self.total / self.count,
            "min": ordered[0],
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
            "max": ordered[-1],
        }


_KIND_TO_CLASS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """All instruments sharing one metric name, split by label values."""

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: Tuple[str, ...]):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _KIND_TO_CLASS[self.kind]()
        return child

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        return [(dict(zip(self.labelnames, key)), child)
                for key, child in sorted(self._children.items())]


class Registry:
    """A named collection of metric families plus pull-time collectors."""

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, float]]] = {}
        self._lock = threading.Lock()

    # -- family constructors --------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                labelnames: Sequence[str]) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(name, kind, help, tuple(labelnames))
                self._families[name] = family
            elif family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} re-registered as {kind}"
                    f"{tuple(labelnames)} but exists as {family.kind}"
                    f"{family.labelnames}")
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Family:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Family:
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = ()) -> Family:
        return self._family(name, "histogram", help, labelnames)

    # -- collectors (pull-time absorption, e.g. perf.stats) --------------

    def register_collector(self, prefix: str,
                           fn: Callable[[], Dict[str, float]]) -> None:
        self._collectors[prefix] = fn

    # -- reporting -------------------------------------------------------

    def families(self) -> List[Family]:
        return [self._families[name] for name in sorted(self._families)]

    def collect(self) -> Dict[str, object]:
        """One JSON-safe snapshot of every family and collector."""
        out: Dict[str, object] = {}
        for family in self.families():
            rows = []
            for labels, child in family.samples():
                if isinstance(child, Histogram):
                    rows.append({"labels": labels, **child.summary()})
                else:
                    rows.append({"labels": labels, "value": child.value})
            out[family.name] = {"type": family.kind, "help": family.help,
                                "samples": rows}
        for prefix, fn in sorted(self._collectors.items()):
            for key, value in fn().items():
                out[f"{prefix}_{key}"] = {
                    "type": "counter", "help": f"collected from {prefix}",
                    "samples": [{"labels": {}, "value": value}]}
        return out

    def reset(self) -> None:
        """Drop every family (collectors stay registered)."""
        with self._lock:
            self._families.clear()

    # -- label scoping ---------------------------------------------------

    def scoped(self, **bound: str) -> "ScopedRegistry":
        """A view of this registry with ``bound`` labels pre-applied.

        Every family created through the view carries the bound label
        *names* in its schema and the bound *values* on every sample —
        ``REGISTRY.scoped(tenant="acme").counter("grafts_applied")``
        yields ``grafts_applied{tenant="acme"}`` rows in the one shared
        registry, and a second tenant's scope fills its own rows of the
        same family instead of clobbering the first's.  Re-registering a
        name with a different label schema (e.g. unscoped) still raises,
        which is the collision guard multi-tenant reporting relies on.
        """
        return ScopedRegistry(self, dict(bound))


class _ScopedFamily:
    """A :class:`Family` proxy that merges pre-bound label values in."""

    def __init__(self, family: Family, bound: Dict[str, str]):
        self._family = family
        self._bound = bound
        self.name = family.name
        self.kind = family.kind

    def labels(self, **labels: str):
        clash = set(labels) & set(self._bound)
        if clash:
            raise ValueError(
                f"metric {self.name!r}: labels {sorted(clash)} are bound by "
                "the scope and cannot be overridden")
        return self._family.labels(**{**self._bound, **labels})


class ScopedRegistry:
    """A registry view that pins label values (see :meth:`Registry.scoped`).

    Quacks like :class:`Registry` for the family constructors, so the
    ``absorb_*`` helpers accept a scoped view transparently; nested
    scopes compose (``registry.scoped(tenant=t).scoped(shard=s)``).
    """

    def __init__(self, registry, bound: Dict[str, str]):
        self._registry = registry
        self._bound = bound

    @property
    def bound_labels(self) -> Dict[str, str]:
        return dict(self._bound)

    def _scoped_family(self, kind: str, name: str, help: str,
                       labelnames: Sequence[str]) -> _ScopedFamily:
        clash = set(labelnames) & set(self._bound)
        if clash:
            raise ValueError(
                f"metric {name!r}: labels {sorted(clash)} are already bound "
                "by the scope")
        schema = tuple(labelnames) + tuple(sorted(self._bound))
        family = getattr(self._registry, kind)(name, help, schema)
        if isinstance(family, _ScopedFamily):
            return family  # nested scope: the inner proxy already merges
        return _ScopedFamily(family, self._bound)

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> _ScopedFamily:
        return self._scoped_family("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> _ScopedFamily:
        return self._scoped_family("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = ()) -> _ScopedFamily:
        return self._scoped_family("histogram", name, help, labelnames)

    def scoped(self, **bound: str) -> "ScopedRegistry":
        overlap = set(bound) & set(self._bound)
        if overlap:
            raise ValueError(f"labels {sorted(overlap)} are already bound")
        return ScopedRegistry(self._registry, {**self._bound, **bound})


REGISTRY = Registry()

# The perf switchboard is absorbed by pull: its `stats.x += 1` hot sites
# keep their cost, and every scrape sees the current values.
REGISTRY.register_collector("paxml_perf", lambda: perf.stats.snapshot())


# ----------------------------------------------------------------------
# push-time absorption of the per-run metric bags
# ----------------------------------------------------------------------


def absorb_runtime(metrics, *, registry: Optional[Registry] = None,
                   engine: str = "async",
                   invocations_by_service: Optional[Dict[str, int]] = None
                   ) -> None:
    """Fold one :class:`RuntimeMetrics` run summary into the registry."""
    registry = registry or REGISTRY
    if invocations_by_service:
        invocations = registry.counter(
            "paxml_invocations_total", "Invocations by service",
            labelnames=("engine", "service"))
        for service, count in invocations_by_service.items():
            invocations.labels(engine=engine, service=service).inc(count)
    counters = registry.counter(
        "paxml_runtime_events_total",
        "Async-runtime counters, accumulated across runs",
        labelnames=("engine", "event"))
    for name in ("attempts", "attempts_failed", "retries", "exhausted",
                 "timeouts", "transient_errors", "short_circuits",
                 "circuit_trips", "stale_calls", "duplicate_deliveries",
                 "grafts_applied", "answers_deduplicated"):
        value = getattr(metrics, name, 0)
        if value:
            counters.labels(engine=engine, event=name).inc(value)
    registry.gauge(
        "paxml_runtime_in_flight_peak",
        "High-water mark of concurrent in-flight calls (last run)",
        labelnames=("engine",)).labels(engine=engine).set(
            getattr(metrics, "in_flight_peak", 0))
    latency = registry.histogram(
        "paxml_runtime_latency_seconds",
        "Latency of successful attempts", labelnames=("engine", "service"))
    for service, histogram in getattr(metrics, "latency", {}).items():
        child = latency.labels(engine=engine, service=service)
        for sample in histogram.samples:
            child.observe(sample)
        child.dropped += histogram.dropped
        child.count += histogram.dropped


def absorb_rewrite(result, *, registry: Optional[Registry] = None,
                   engine: str = "sequential") -> None:
    """Fold one sequential :class:`RewriteResult` into the registry."""
    registry = registry or REGISTRY
    counters = registry.counter(
        "paxml_rewrite_events_total",
        "Sequential-engine counters, accumulated across runs",
        labelnames=("engine", "event"))
    counters.labels(engine=engine, event="steps").inc(result.steps)
    counters.labels(engine=engine,
                    event="productive_steps").inc(result.productive_steps)
    invocations = registry.counter(
        "paxml_invocations_total", "Invocations by service",
        labelnames=("engine", "service"))
    for service, count in getattr(result, "invocations_by_service",
                                  {}).items():
        invocations.labels(engine=engine, service=service).inc(count)
    registry.gauge(
        "paxml_rewrite_last_run_seconds", "Wall-clock of the last run",
        labelnames=("engine",)).labels(engine=engine).set(
            result.duration_seconds)
