"""Declarative per-tenant SLOs evaluated continuously over serve ops.

An :class:`SLOSpec` states an objective the serving layer should hold —
"no more than 1 % of ``inject`` requests slower than 250 ms" is exactly
*p99 inject latency ≤ 250 ms*, restated as an error budget so it can be
evaluated continuously over a sliding window instead of re-sorting a
histogram on every request.  The :class:`SLOBoard` attached to a server
receives one ``observe(tenant, op, seconds, ok)`` per handled op (the
hub reports ``delta_push`` the same way, covering the inject→delta-push
objective end to end) and keeps, per (spec, tenant):

* a sliding window of the last ``window`` good/bad verdicts,
* the **burn rate** — observed bad fraction divided by the budget, the
  standard alerting quantity: 1.0 means the budget is being consumed
  exactly as fast as allowed, 2.0 twice as fast, 0 means no burn —

and mirrors the burn rate into the metrics registry as a
``paxml_slo_burn_rate{slo,tenant}`` gauge so ``stats``/``paxml top``
and the Prometheus exporter all read the same number.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence

from .metrics import REGISTRY, Registry

#: Objective kinds: "latency" marks an op bad when it errors *or*
#: exceeds ``threshold`` seconds; "errors" only when it errors.
OBJECTIVES = ("latency", "errors")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over a server op.

    ``budget`` is the allowed bad fraction (0.01 ≙ a p99 objective);
    ``op`` may be ``"*"`` to cover every op; ``window`` is the number of
    recent observations the verdict is computed over.
    """

    name: str
    op: str
    objective: str = "latency"
    threshold: float = 0.25     # seconds; ignored for "errors"
    budget: float = 0.01
    window: int = 500

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(f"unknown SLO objective {self.objective!r}")
        if not (0.0 < self.budget <= 1.0):
            raise ValueError("SLO budget must be in (0, 1]")
        if self.window < 1:
            raise ValueError("SLO window must be positive")

    def is_bad(self, seconds: float, ok: bool) -> bool:
        if not ok:
            return True
        return self.objective == "latency" and seconds > self.threshold

    def to_json_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "op": self.op,
                "objective": self.objective, "threshold": self.threshold,
                "budget": self.budget, "window": self.window}

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any]) -> "SLOSpec":
        return cls(name=record["name"], op=record["op"],
                   objective=record.get("objective", "latency"),
                   threshold=float(record.get("threshold", 0.25)),
                   budget=float(record.get("budget", 0.01)),
                   window=int(record.get("window", 500)))


#: The server's out-of-the-box objectives: a p99 latency bound on the
#: write path (inject), one on the inject→delta-push tail, and an
#: error-rate budget across every op.
DEFAULT_SLOS: Sequence[SLOSpec] = (
    SLOSpec(name="inject-latency-p99", op="inject",
            objective="latency", threshold=0.25, budget=0.01),
    SLOSpec(name="delta-push-p99", op="delta_push",
            objective="latency", threshold=0.5, budget=0.01),
    SLOSpec(name="op-error-rate", op="*",
            objective="errors", budget=0.02, window=1000),
)


class _Tracker:
    """Sliding-window verdicts for one (spec, tenant) pair."""

    __slots__ = ("window", "bad_in_window", "total", "bad")

    def __init__(self, size: int) -> None:
        self.window: Deque[bool] = deque(maxlen=size)
        self.bad_in_window = 0
        self.total = 0   # lifetime observations
        self.bad = 0     # lifetime bad verdicts

    def push(self, is_bad: bool) -> None:
        if len(self.window) == self.window.maxlen and self.window[0]:
            self.bad_in_window -= 1
        self.window.append(is_bad)
        if is_bad:
            self.bad_in_window += 1
            self.bad += 1
        self.total += 1

    def bad_fraction(self) -> float:
        return self.bad_in_window / len(self.window) if self.window else 0.0


class SLOBoard:
    """Continuous evaluation of a set of :class:`SLOSpec` per tenant."""

    def __init__(self, specs: Optional[Sequence[SLOSpec]] = None,
                 registry: Optional[Registry] = None) -> None:
        self.specs: List[SLOSpec] = list(
            DEFAULT_SLOS if specs is None else specs)
        self._registry = registry if registry is not None else REGISTRY
        self._trackers: Dict[tuple, _Tracker] = {}
        self._burn_gauge = self._registry.gauge(
            "paxml_slo_burn_rate",
            "Observed bad fraction over the SLO window divided by budget",
            labelnames=("slo", "tenant"))

    def observe(self, tenant: str, op: str, seconds: float,
                ok: bool) -> None:
        """Fold one handled op into every spec that covers it."""
        for spec in self.specs:
            if spec.op != "*" and spec.op != op:
                continue
            key = (spec.name, tenant)
            tracker = self._trackers.get(key)
            if tracker is None:
                tracker = self._trackers[key] = _Tracker(spec.window)
            tracker.push(spec.is_bad(seconds, ok))
            self._burn_gauge.labels(slo=spec.name, tenant=tenant).set(
                tracker.bad_fraction() / spec.budget)

    def report(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """JSON-safe rows (one per spec×tenant), worst burn first."""
        by_name = {spec.name: spec for spec in self.specs}
        rows = []
        for (name, t), tracker in self._trackers.items():
            if tenant is not None and t != tenant:
                continue
            spec = by_name.get(name)
            if spec is None:
                continue
            fraction = tracker.bad_fraction()
            rows.append({
                "slo": name, "tenant": t, "op": spec.op,
                "objective": spec.objective, "threshold": spec.threshold,
                "budget": spec.budget, "window": len(tracker.window),
                "bad_fraction": fraction,
                "burn_rate": fraction / spec.budget,
                "breached": fraction > spec.budget,
                "observed": tracker.total, "bad_total": tracker.bad,
            })
        rows.sort(key=lambda r: (-r["burn_rate"], r["slo"], r["tenant"]))
        return rows

    def reset(self) -> None:
        self._trackers.clear()
