"""``repro`` — harness-facing alias for the :mod:`paxml` library.

The reproduction of *Positive Active XML* (PODS 2004) lives under the
import name ``paxml``; this package re-exports its full public API so both
``import repro`` and ``import paxml`` work.
"""

from paxml import *  # noqa: F401,F403
from paxml import __all__, __version__  # noqa: F401

core = __import__("paxml")  # the implementation package
