"""Regular path expressions and the ψ translation (Section 5, Prop. 5.1).

A positive+reg query navigates a parts catalogue with ``[part+.name]``;
ψ eliminates the regex by adding a state-propagation service (one rule per
NFA move) and annotation calls, preserving the result — and, for simple
inputs, preserving simplicity.

Run:  python examples/regular_paths.py
"""

from paxml import (
    AXMLSystem,
    evaluate_snapshot,
    materialize,
    parse_query,
    strip_forest,
    translate,
)


def main() -> None:
    catalogue = AXMLSystem.build(documents={
        "cat": '''catalogue{
            part{name{"engine"},
                 part{name{"piston"}, part{name{"ring"}}},
                 part{name{"valve"}}},
            part{name{"chassis"}, part{name{"axle"}}},
            doc{name{"manual"}}}''',
    })

    # All component names at ANY nesting depth below a part:
    query = parse_query('component{$n} :- cat/catalogue{[part+.name]{$n}}')
    print("query:", query)

    native = evaluate_snapshot(query, catalogue.environment())
    print("\n== native evaluation (NFA walks document paths) ==")
    print(native.pretty())
    assert len(native) == 6  # every part name, not the manual

    # ------------------------------------------------------------------
    # ψ: compile the regex away (Proposition 5.1)
    # ------------------------------------------------------------------
    translated = translate(catalogue, query)
    propagation = translated.system.services["axprop"]
    print(f"\nψ added service 'axprop' with {len(propagation.queries)} rules; "
          f"simplicity preserved: {translated.preserves_simplicity}")
    print(f"translated query: {translated.query}")

    outcome = materialize(translated.system)
    via_psi = strip_forest(
        evaluate_snapshot(translated.query, translated.system.environment())
    )
    print(f"\n== via ψ ({outcome.steps} annotation invocations) ==")
    print(via_psi.pretty())
    assert via_psi.equivalent_to(native), "Prop. 5.1(3): [q](I) = [q'](I')"
    print("\n[q](I) = [q'](I'): verified")


if __name__ == "__main__":
    main()
