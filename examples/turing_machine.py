"""Lemma 3.1: positive AXML systems simulate Turing machines.

Compiles a Turing machine into a positive AXML system — the tape becomes a
"line tree", every transition becomes one (non-simple) rule of a ``step``
service, and all configurations accumulate monotonically in one document —
then cross-checks the simulation against a native TM run.

This is why termination of positive systems is undecidable
(Corollary 3.1), and why the paper carves out the *simple* fragment.

Run:  python examples/turing_machine.py
"""

from paxml import to_compact
from paxml.turing import (
    anbn_recognizer,
    binary_increment,
    compile_machine,
    run,
    simulate,
    word_to_line,
)


def main() -> None:
    print("tape encoding of 'aabb':", to_compact(word_to_line("aabb")))

    machine = anbn_recognizer()
    system = compile_machine(machine, "aabb")
    rules = sum(len(s.queries) for s in system.services.values())
    print(f"\ncompiled a^n b^n recognizer: {rules} rules "
          f"(one per transition, plus padding and result extraction)")
    print(f"system is positive: {system.is_positive}, "
          f"simple: {system.is_simple}  (tree variables shuttle the tape)")

    for word in ("aabb", "aab", "aaabbb"):
        native = run(machine, word)
        sim = simulate(machine, word)
        match = sim.configurations == {c.normalized() for c in native.visited}
        print(f"\n  input {word!r}:")
        print(f"    native TM : accepted={native.accepted} "
              f"({len(native.visited)} configurations)")
        print(f"    AXML      : accepted={sim.accepted} "
              f"({len(sim.configurations)} configuration trees, "
              f"{sim.steps} invocations)")
        print(f"    configuration sets match: {match}")
        assert match and sim.accepted == native.accepted

    # A machine that *computes* rather than decides: binary increment,
    # LSB first; the accept rule extracts the output tape.
    inc = binary_increment()
    sim = simulate(inc, "111")  # 7, LSB-first
    print(f"\nbinary increment of 111 (=7): output tape {sim.result_tapes} "
          f"(=8, LSB-first)")
    assert sim.result_tapes == {"0001"}


if __name__ == "__main__":
    main()
