"""P2P data management: AXML documents and services across peers.

The paper frames AXML as peer-to-peer data integration (Section 1,
Section 6): each peer stores documents and offers services; answers —
which may embed further calls to *other* peers — stream back over the
wire.  This example runs the jazz scenario over three simulated peers in
both the pull and the push delivery mode and shows the distributed run
converging to the same state as a centralised one.

Run:  python examples/p2p_network.py
"""

from paxml import parse_query, to_canonical
from paxml.peers import Mode, Network, Peer


def build_peers():
    portal = Peer("portal")
    portal.add_document("directory", '''directory{
        cd{title{"Body and Soul"}, singer{"Billie Holiday"},
           !GetRating{"Body and Soul"}},
        !FreeMusicDB{type{"Jazz"}}}''')

    ratings = Peer("ratings.example.org")
    ratings.add_document("ratingsdb", '''db{
        entry{song{"Body and Soul"}, stars{"****"}},
        entry{song{"So What"}, stars{"*****"}}}''')
    ratings.offer_service((
        "GetRating",
        'rating{$s} :- input/input{$t}, '
        'ratingsdb/db{entry{song{$t}, stars{$s}}}',
    ))

    music = Peer("musicmoz.example.org")
    music.add_document("musicdb",
                       'db{item{title{"So What"}}, item{title{"Freddie Freeloader"}}}')
    music.offer_service((
        # Answers embed calls back to the *ratings* peer — intensional
        # information travelling between peers.
        "FreeMusicDB",
        'cd{title{$t}, !GetRating{$t}} :- musicdb/db{item{title{$t}}}',
    ))
    return portal, ratings, music


def main() -> None:
    for mode in (Mode.PULL, Mode.PUSH):
        portal, ratings, music = build_peers()
        network = Network([portal, ratings, music], mode=mode, seed=42)
        stats = network.run()
        print(f"== {mode.value} mode ==")
        print(f"  messages: {stats.messages_delivered}, "
              f"requests: {stats.requests}, grafts: {stats.grafts}, "
              f"quiescent: {network.quiescent()}")

        titles = portal.snapshot_query(
            parse_query('t{$x} :- directory/directory{cd{title{$x}}}')
        )
        print(f"  portal now lists: {sorted(to_canonical(t) for t in titles)}")

        rated = portal.snapshot_query(parse_query(
            'r{title{$t}, stars{$s}} :- '
            'directory/directory{cd{title{$t}, rating{$s}}}'))
        print(f"  rated cds: {len(rated)} "
              f"(ratings fetched transitively for promo cds too)")
        print()


if __name__ == "__main__":
    main()
