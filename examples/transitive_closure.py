"""Recursion in positive AXML: the transitive-closure system (Example 3.2).

Three takes on the same computation:

1. the paper's simple positive system, materialised by fair rewriting;
2. a reference datalog engine (semi-naive), plus the generic
   datalog → AXML compiler, checked to agree;
3. the *fire-once* semantics, which refuses to evaluate the recursive
   rule and therefore computes strictly less (end of Section 4).

Run:  python examples/transitive_closure.py
"""

from paxml import fire_once, materialize, parse_query, evaluate_snapshot
from paxml.datalog import (
    compile_program,
    evaluate,
    facts_of_document,
    transitive_closure_program,
)
from paxml.workloads import chain_edges, tc_system

PAIRS_QUERY = parse_query(
    "pair{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"
)


def main() -> None:
    edges = chain_edges(6)  # 0 → 1 → … → 6
    print(f"base relation: {edges}")

    # ------------------------------------------------------------------
    # 1. the paper's Example 3.2, scaled to the chain
    # ------------------------------------------------------------------
    system = tc_system(edges)
    outcome = materialize(system)
    closure = evaluate_snapshot(PAIRS_QUERY, system.environment())
    print(f"\n[positive AXML]  status={outcome.status.value}, "
          f"invocations={outcome.steps}, |TC| = {len(closure)}")

    # ------------------------------------------------------------------
    # 2. reference datalog engine + the generic compiler
    # ------------------------------------------------------------------
    program = transitive_closure_program(edges)
    reference = evaluate(program)
    print(f"[datalog engine] rounds={reference.rounds}, "
          f"|TC| = {len(reference.relation('tc'))}")

    compiled = compile_program(program)
    materialize(compiled)
    compiled_tc = {f for f in facts_of_document(compiled) if f[0] == "tc"}
    agree = compiled_tc == {("tc", t) for t in reference.relation("tc")}
    print(f"[compiled AXML]  agrees with engine: {agree}")
    assert agree and len(closure) == len(reference.relation("tc"))

    # ------------------------------------------------------------------
    # 3. fire-once: each call at most once, only when stable — the
    #    recursive rule f never fires, so only the base relation is copied
    # ------------------------------------------------------------------
    once = tc_system(edges)
    report = fire_once(once)
    partial = evaluate_snapshot(PAIRS_QUERY, once.environment())
    print(f"\n[fire-once]      fired={report.fired}, "
          f"withheld={sorted(report.skipped_recursive)}, "
          f"|result| = {len(partial)}  (the closure is lost)")
    assert len(partial) < len(closure)


if __name__ == "__main__":
    main()
