"""Quickstart: the paper's jazz-portal scenario, end to end.

Builds the Section 1 / Section 2 music portal as an AXML system, inspects
the intensional document, materialises the embedded service calls, and
queries the result — first the snapshot, then the full result.

Run:  python examples/quickstart.py
"""

from paxml import (
    AXMLSystem,
    evaluate_snapshot,
    materialize,
    parse_query,
    to_xml,
)


def main() -> None:
    # ------------------------------------------------------------------
    # An AXML document: extensional cds next to embedded service calls.
    # ``!Name{…}`` is a call node; its children are the call parameters.
    # ------------------------------------------------------------------
    system = AXMLSystem.build(
        documents={
            "portal": '''
                directory{
                    cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
                    cd{title{"Body and Soul"}, singer{"Billie Holiday"},
                       !GetRating{"Body and Soul"}},
                    cd{title{"Where or When"}, singer{"Peggy Lee"},
                       rating{"*****"}},
                    promos{!FreeMusicDB{type{"Jazz"}}}}''',
            "ratingsdb": '''
                db{entry{song{"Body and Soul"}, stars{"****"}},
                   entry{song{"So What"}, stars{"*****"}}}''',
            "musicdb": 'db{item{title{"So What"}}, item{title{"Freddie Freeloader"}}}',
        },
        services={
            # Positive services: rules  head :- body  over tree patterns.
            # $x binds atomic values, @x labels, #x function names, *X subtrees.
            "GetRating": 'rating{$s} :- input/input{$t}, '
                         'ratingsdb/db{entry{song{$t}, stars{$s}}}',
            "FreeMusicDB": 'cd{title{$t}, !GetRating{$t}} '
                           ':- musicdb/db{item{title{$t}}}',
        },
    )
    print("== the intensional portal document ==")
    print(to_xml(system.documents["portal"].root))

    # ------------------------------------------------------------------
    # Snapshot semantics: query what is materialised *right now*.
    # ------------------------------------------------------------------
    ratings_query = parse_query(
        'res{title{$t}, rating{$r}} :- '
        'portal/directory{cd{title{$t}, rating{$r}}}'
    )
    before = evaluate_snapshot(ratings_query, system.environment())
    print("\n== snapshot result (before any call fires) ==")
    print(before.pretty())

    # ------------------------------------------------------------------
    # Materialise: fair rewriting to the fixpoint [I] (Theorem 2.1 says
    # the order of invocations does not matter).
    # ------------------------------------------------------------------
    outcome = materialize(system)
    print(f"\nmaterialised in {outcome.steps} invocations "
          f"({outcome.productive_steps} productive); status={outcome.status.value}")

    after = evaluate_snapshot(ratings_query, system.environment())
    print("\n== full result (snapshot over [I]) ==")
    print(after.pretty())

    # The free-music promos arrived too, each carrying a new GetRating call
    # that was chased in turn — intensional answers compose.
    promo_query = parse_query(
        'promo{$t} :- portal/directory{promos{cd{title{$t}}}}'
    )
    print("\n== promo cds pulled from the remote music db ==")
    print(evaluate_snapshot(promo_query, system.environment()).pretty())


if __name__ == "__main__":
    main()
