"""Lazy query evaluation (Section 4): invoke only the calls a query needs.

A portal with many cd entries embeds one ``!GetRating`` call per unrated
cd, plus a stack of promo branches whose ``!FreeMusicDB`` calls a ratings
query never needs.  Eager evaluation materialises everything; the lazy
evaluator runs the PTIME *weak relevance* analysis each round and skips
the promos entirely.

Run:  python examples/lazy_portal.py
"""

from paxml import (
    eager_evaluate,
    is_q_stable,
    is_weakly_stable,
    lazy_evaluate,
    parse_query,
    weakly_relevant_calls,
)
from paxml.workloads import portal_system

RATINGS = parse_query(
    "res{title{$t}, rating{$r}} :- portal/directory{cd{title{$t}, rating{$r}}}"
)


def main() -> None:
    base = portal_system(n_cds=30, materialized_fraction=0.4,
                         n_irrelevant=15, seed=11)
    calls = sorted({node.marking.name for _d, node in base.call_sites()})
    print(f"portal: 30 cds, {base.call_count()} embedded calls {calls}")

    relevant = weakly_relevant_calls(base, RATINGS)
    names = sorted({node.marking.name for _d, node in relevant.relevant})
    print(f"weakly relevant to the ratings query: {len(relevant)} calls "
          f"({names}) — the promos never qualify")

    lazy_system = base.copy()
    lazy = lazy_evaluate(lazy_system, RATINGS)
    print(f"\n[lazy]  invocations={lazy.invocations} "
          f"rounds={lazy.rounds} stable={lazy.stable} "
          f"answers={len(lazy.answer)}")

    eager_system = base.copy()
    answer, eager_calls, terminated = eager_evaluate(eager_system, RATINGS)
    print(f"[eager] invocations={eager_calls} terminated={terminated} "
          f"answers={len(answer)}")

    assert lazy.answer.equivalent_to(answer), "lazy and eager must agree"
    saved = eager_calls - lazy.invocations
    print(f"\nsame answer, {saved} service invocations saved "
          f"({100 * saved / eager_calls:.0f}%)")

    # Stability after the lazy run: the exact (expensive) check certifies
    # the system is q-stable.  The weak PTIME check stays conservative —
    # exhausted GetRating calls still *look* relevant to it (their parents
    # sit at query positions), which is exactly the one-sided soundness
    # the paper describes: weakly stable ⇒ stable, never the converse.
    print(f"weakly stable now: {is_weakly_stable(lazy_system, RATINGS)} "
          "(conservative: sufficient, not necessary)")
    print(f"exactly q-stable:  {is_q_stable(lazy_system, RATINGS).value}")


if __name__ == "__main__":
    main()
