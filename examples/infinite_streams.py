"""Infinite semantics: divergence, regular limits, and decidability.

* Example 2.1 — a *simple* divergent system: the limit is an infinite but
  **regular** tree, so it has a finite graph representation (Lemma 3.2)
  and termination is decidable (Theorem 3.3);
* Example 3.3 — a *non-simple* divergent system: a tree variable copies
  ever-deeper subtrees, the limit is not regular, and the analysis can
  only answer UNKNOWN (Corollary 3.1 — undecidable in general).

Run:  python examples/infinite_streams.py
"""

from paxml import (
    AXMLSystem,
    analyze_termination,
    build_graph_representation,
    materialize,
    reduced_copy,
    to_canonical,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Example 2.1: subscriptions that keep sending data
    # ------------------------------------------------------------------
    sub = AXMLSystem.build(documents={"d": "a{!f}"},
                           services={"f": "a{!f} :- "})
    report = analyze_termination(sub)
    print(f"Example 2.1: termination analysis → {report.status.value}")
    print(f"  pumping witness (repeated configuration): {report.witness}")

    representation = build_graph_representation(sub)
    graph = representation.graph("d")
    print(f"  finite graph representation: {graph.vertex_count()} vertices, "
          f"denotes a finite tree: {graph.is_finite()}")
    for depth in (2, 4, 6):
        prefix = reduced_copy(representation.unfold("d", depth))
        print(f"  unfolded to depth {depth}: {to_canonical(prefix)}")

    # Cross-check against direct (budgeted) rewriting.
    direct = AXMLSystem.build(documents={"d": "a{!f}"},
                              services={"f": "a{!f} :- "})
    materialize(direct, max_steps=4)
    print(f"  direct rewriting prefix : "
          f"{to_canonical(direct.documents['d'].root)}")

    # ------------------------------------------------------------------
    # Example 3.3: the same call returns more and more data
    # ------------------------------------------------------------------
    growing = AXMLSystem.build(
        documents={"dp": "a{a{b}, !g}"},
        services={"g": "a{a{*X}} :- context/a{a{*X}}"},
    )
    report = analyze_termination(growing, max_steps=25)
    print(f"\nExample 3.3: termination analysis → {report.status.value} "
          "(non-simple: undecidable in general, so a budget verdict)")

    materialize(growing, max_steps=4)
    root = growing.documents["dp"].root
    chains = sorted(child.depth() for child in root.children if child.is_label)
    print(f"  after 4 productive invocations of the single !g call, the "
          f"document holds chains of depths {chains}")
    print(f"  the limit contains a^i{{b}} for every i — not a regular tree")


if __name__ == "__main__":
    main()
