"""E6 — Lemma 3.2 / Theorem 3.3: deciding termination of simple systems.

Rows: for the nesting-chain family (terminating and divergent variants)
and growing transitive closures, the decision, the number of
configurations the saturation visited, and the representation's vertex
count.  Shape: cost grows with the configuration space (the EXPTIME
worst case is in the *number of distinct instantiations*, not the raw
document size), and every verdict matches ground truth.
"""

import time

import pytest

from paxml.analysis import (
    analyze_termination,
    build_graph_representation,
)
from paxml.workloads import (
    chain_edges,
    fanout_divergent_system,
    nesting_chain_system,
    tc_system,
)

from .harness import print_table

FAMILY = [
    ("chain-2/term", lambda: nesting_chain_system(2, diverge=False), True),
    ("chain-4/term", lambda: nesting_chain_system(4, diverge=False), True),
    ("chain-8/term", lambda: nesting_chain_system(8, diverge=False), True),
    ("chain-2/div", lambda: nesting_chain_system(2, diverge=True), False),
    ("chain-4/div", lambda: nesting_chain_system(4, diverge=True), False),
    ("chain-8/div", lambda: nesting_chain_system(8, diverge=True), False),
    ("fanout-3/div", lambda: fanout_divergent_system(3), False),
    ("tc-chain-6", lambda: tc_system(chain_edges(6)), True),
    ("tc-chain-10", lambda: tc_system(chain_edges(10)), True),
]


@pytest.mark.parametrize("name,factory,_terminates", FAMILY[:6])
def test_decision_cost(benchmark, name, factory, _terminates):
    benchmark.group = "E6 termination decision"
    benchmark.name = name
    benchmark(lambda: analyze_termination(factory()))


def test_e6_rows(benchmark):
    rows = []
    for name, factory, terminates in FAMILY:
        start = time.perf_counter()
        report = analyze_termination(factory())
        elapsed = time.perf_counter() - start
        assert report.terminates == terminates, name
        vertices = "-"
        if factory().is_simple:
            representation = build_graph_representation(factory())
            assert representation.is_finite() == terminates
            vertices = sum(representation.vertex_counts().values())
        rows.append((name, report.status.value, report.configs_seen,
                     vertices, f"{elapsed * 1e3:.1f} ms"))
    print_table("E6: termination decision & graph representation "
                "(Thm. 3.3, Lemma 3.2)",
                ["system", "verdict", "configs", "rep-vertices", "time"],
                rows)
    benchmark(lambda: None)
