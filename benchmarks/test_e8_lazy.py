"""E8 — Section 4 / Theorem 4.1: lazy evaluation saves service calls.

Rows: portal workloads sweeping the fraction of irrelevant calls — eager
vs lazy invocation counts, answers checked equal, and the PTIME weak
stability verdicts.  Shape: lazy invocation count tracks only the
query-relevant calls, so the gap widens linearly with the number of
irrelevant branches while answers stay identical.
"""

import time

import pytest

from paxml.analysis import eager_evaluate, lazy_evaluate, weakly_relevant_calls
from paxml.query import parse_query
from paxml.workloads import portal_system

from .harness import print_table

RATINGS = parse_query(
    "res{title{$t}, rating{$r}} :- portal/directory{cd{title{$t}, rating{$r}}}"
)

SWEEP = [(20, 0), (20, 5), (20, 10), (20, 20), (20, 40)]


@pytest.mark.parametrize("cds,irrelevant", SWEEP[:3])
def test_lazy_cost(benchmark, cds, irrelevant):
    base = portal_system(cds, n_irrelevant=irrelevant, seed=5)
    benchmark.group = "E8 lazy"
    benchmark.name = f"irrelevant={irrelevant}"
    benchmark(lambda: lazy_evaluate(base.copy(), RATINGS))


@pytest.mark.parametrize("cds,irrelevant", SWEEP[:3])
def test_eager_cost(benchmark, cds, irrelevant):
    base = portal_system(cds, n_irrelevant=irrelevant, seed=5)
    benchmark.group = "E8 eager"
    benchmark.name = f"irrelevant={irrelevant}"
    benchmark(lambda: eager_evaluate(base.copy(), RATINGS))


def test_e8_rows(benchmark):
    rows = []
    gaps = []
    for cds, irrelevant in SWEEP:
        base = portal_system(cds, n_irrelevant=irrelevant, seed=5)
        relevant = len(weakly_relevant_calls(base, RATINGS))
        lazy = lazy_evaluate(base.copy(), RATINGS)
        answer, eager_calls, _ = eager_evaluate(base.copy(), RATINGS)
        assert lazy.answer.equivalent_to(answer)
        gaps.append(eager_calls - lazy.invocations)
        rows.append((f"{cds} cds + {irrelevant} promos", relevant,
                     lazy.invocations, eager_calls, gaps[-1],
                     len(answer)))
    print_table("E8: lazy vs eager evaluation (Section 4)",
                ["portal", "weakly-relevant", "lazy calls", "eager calls",
                 "saved", "answers"], rows)
    # Shape: savings grow monotonically with the irrelevant-call count.
    assert gaps == sorted(gaps)
    assert gaps[-1] > gaps[0]
    benchmark(lambda: None)
