"""PR 5 benchmark: the shared evaluation kernel and checkpoint/resume.

Produces ``BENCH_pr5.json`` (repo root by default).  Two claims are
measured:

* **Kernel overhead** — the engines now route every step through
  ``paxml.kernel`` (shared scheduler, ``apply_graft`` choke point,
  transactional graft log).  PR 4's planned-mode ``e3``/``e4`` workloads
  (see ``benchmarks/_kernel_probe.py``) must run within 3% of the PR 4
  engine.  The baseline is re-measured *live* in the same session from a
  git worktree of the commit that recorded ``BENCH_pr4.json`` — both
  sides run the identical probe in identical subprocesses, so machine
  drift between sessions cancels out.  Without git history the stored
  ``BENCH_pr4.json`` numbers are used instead (and noted as cross-
  session, hence noisy).
* **Checkpoint/resume vs rerun** — on a front-loaded workload (heavy
  cycle-join probes sit at the head of the round-robin order, so the
  first 80% of steps carry nearly all the cost), finishing from a bundle
  written at the 80% mark — checkpoint write + bundle load + remaining
  steps — must be ≥5× cheaper than rerunning from scratch.  The resumed
  fixpoint is verified subsumption-equivalent to the rerun's.

Run::

    PYTHONPATH=src python benchmarks/bench_pr5.py            # full
    PYTHONPATH=src python benchmarks/bench_pr5.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml import perf
from paxml.kernel import resume
from paxml.system import AXMLSystem, RewritingEngine, materialize
from paxml.tree.node import fun, label
from paxml.workloads import random_edges, relation_tree

from harness import timed, write_bench_json

OVERHEAD_LIMIT = 0.03
SAVINGS_TARGET = 5.0
REPEATS = 5


# ----------------------------------------------------------------------
# kernel overhead (same-session A/B via the shared probe)
# ----------------------------------------------------------------------


def _run_probe(root: str, src: str, sizes) -> dict:
    """Run ``_kernel_probe.py`` in a subprocess against ``src``."""
    env = dict(os.environ, PYTHONPATH=src)
    script = os.path.join(root, "benchmarks", "_kernel_probe.py")
    output = subprocess.check_output(
        [sys.executable, script, *map(str, sizes)], env=env, text=True)
    return json.loads(output.strip().splitlines()[-1])


def _pr4_revision(root: str):
    """The commit that recorded BENCH_pr4.json (the PR 4 engine)."""
    try:
        revision = subprocess.check_output(
            ["git", "log", "-1", "--format=%H", "--", "BENCH_pr4.json"],
            cwd=root, text=True, stderr=subprocess.DEVNULL).strip()
    except (subprocess.CalledProcessError, OSError):
        return None
    return revision or None


def _merge_best(runs) -> dict:
    """Per-metric minimum over several single-repeat probe runs."""
    merged = dict(runs[0])
    for run in runs[1:]:
        for key in ("e3_seconds", "e4_seconds"):
            merged[key] = min(merged[key], run[key])
    return merged


def bench_kernel_overhead(root: str, sizes) -> dict:
    """e3/e4 on the kernel engines vs the PR 4 engines, same session.

    The two trees are probed in *interleaved* single-repeat subprocesses
    (current, baseline, current, baseline, …) so slow drift in machine
    load hits both sides equally; the overhead figure is the *median of
    the per-round paired ratios* — each round's current/baseline pair ran
    back-to-back, so the pairing cancels what interleaving alone cannot.
    """
    repeats = sizes[4]
    single = (*sizes[:4], 1)
    current_src = os.path.join(root, "src")
    report = {
        "workload": f"PR 4 probe (e3 join {sizes[0]}→"
                    f"{sizes[0] + sizes[1] * sizes[2]} rows, "
                    f"TC chain-{sizes[3]}), interleaved best of {repeats}",
    }

    revision = _pr4_revision(root)
    baseline = None
    current = None
    if revision:
        worktree = tempfile.mkdtemp(prefix="paxml-pr4-")
        try:
            subprocess.check_call(
                ["git", "worktree", "add", "--detach", worktree, revision],
                cwd=root, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            baseline_src = os.path.join(worktree, "src")
            current_runs, baseline_runs = [], []
            for _ in range(repeats):
                current_runs.append(_run_probe(root, current_src, single))
                baseline_runs.append(_run_probe(root, baseline_src, single))
            current = _merge_best(current_runs)
            baseline = _merge_best(baseline_runs)
            for key in ("e3", "e4"):
                report[f"{key}_paired_ratios"] = [
                    round(ours[f"{key}_seconds"] / theirs[f"{key}_seconds"],
                          4)
                    for ours, theirs in zip(current_runs, baseline_runs)]
            report["baseline_source"] = f"live worktree @ {revision[:12]}"
        except (subprocess.CalledProcessError, OSError):
            baseline = None
        finally:
            subprocess.call(["git", "worktree", "remove", "--force", worktree],
                            cwd=root, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    if current is None:
        current = _run_probe(root, current_src, sizes)
    report["kernel"] = current
    if baseline is None:
        stored = os.path.join(root, "BENCH_pr4.json")
        if os.path.exists(stored):
            with open(stored) as handle:
                scenarios = json.load(handle).get("scenarios", {})
            baseline = {
                "e3_seconds": scenarios.get("e3_join_probe", {})
                .get("planned_seconds"),
                "e4_seconds": scenarios.get("e4_datalog_tc", {})
                .get("planned_seconds"),
            }
            report["baseline_source"] = ("stored BENCH_pr4.json "
                                         "(cross-session: noisy)")
    if baseline:
        report["pr4"] = baseline
        for key in ("e3", "e4"):
            ratios = report.get(f"{key}_paired_ratios")
            if ratios:
                report[f"{key}_overhead_fraction"] = round(
                    statistics.median(ratios) - 1.0, 4)
                continue
            ours, theirs = current[f"{key}_seconds"], baseline.get(
                f"{key}_seconds")
            if theirs:
                report[f"{key}_overhead_fraction"] = round(
                    ours / theirs - 1.0, 4)
        for key in ("e3_answers", "e4_invocations", "e4_closure_edges"):
            if key in baseline and baseline[key] != current[key]:
                report["results_equivalent"] = False
                break
        else:
            report["results_equivalent"] = True
    return report


# ----------------------------------------------------------------------
# checkpoint/resume vs rerun
# ----------------------------------------------------------------------


def _cycle_query(length: int) -> str:
    """An expensive-but-selective join: directed ``length``-cycles.

    The closing equality forces the evaluator through every partial path
    of the relation while only cycles survive — per-call cost far above
    the (small) answer set, which is exactly the front-loaded shape the
    resume claim needs: heavy compute, light state.
    """
    variables = ["$x"] + [f"$v{i}" for i in range(1, length)] + ["$x"]
    legs = ", ".join(
        f"t{{c0{{{variables[i]}}}, c1{{{variables[i + 1]}}}}}"
        for i in range(length))
    return f"hit{{c0{{$x}}}} :- rel/r{{{legs}}}"


def frontloaded_system(k_heavy: int, nodes: int, edges_m: int,
                       cycle_len: int, tail_m: int) -> AXMLSystem:
    """Heavy cycle-join probes scheduled ahead of a cheap echo tail.

    ``call_sites()`` yields sites in document order, so the round-robin
    queue opens with the ``k_heavy`` probe sites — each pays one full
    cycle join over the relation — and the echo tail plus the no-op
    verification round land in the last 20% of steps.
    """
    edges = random_edges(nodes, edges_m, seed=5)
    hub = label("h", *[label(f"k{i}", fun("probe"))
                       for i in range(k_heavy)])
    tail = label("t", *[label(f"w{i}", fun("echo"))
                        for i in range(tail_m)])
    return AXMLSystem.build(
        documents={"hub": hub, "tail": tail,
                   "rel": relation_tree(edges), "small": "s{1, 2}"},
        services={"probe": _cycle_query(cycle_len),
                  "echo": "e{$v} :- small/s{$v}"})


def _fresh() -> None:
    perf.flags.set_all(True)
    perf.clear_caches()
    perf.stats.reset()


def bench_checkpoint_resume(k_heavy: int, nodes: int, edges_m: int,
                            cycle_len: int, tail_m: int) -> dict:
    _fresh()
    reference = frontloaded_system(k_heavy, nodes, edges_m, cycle_len,
                                   tail_m)
    t_full, outcome = timed(lambda: materialize(reference))
    assert outcome.terminated, "front-loaded workload must terminate"
    total_steps = outcome.steps
    cut = max(1, (total_steps * 8) // 10)

    # The untimed prefix — everything before the "crash" happened anyway.
    _fresh()
    suspended = frontloaded_system(k_heavy, nodes, edges_m, cycle_len,
                                   tail_m)
    engine = RewritingEngine(suspended)
    engine.run(max_steps=cut)

    with tempfile.TemporaryDirectory() as scratch:
        bundle = os.path.join(scratch, "bench.ckpt")
        t_checkpoint, _ = timed(lambda: engine.checkpoint(bundle))
        bundle_bytes = os.path.getsize(bundle)

        def finish():
            resumed = resume(bundle)
            return resumed, resumed.run()

        t_resume, (resumed, result) = timed(finish)

    savings = t_full / (t_checkpoint + t_resume)
    return {
        "workload": f"{k_heavy} {cycle_len}-cycle probes over "
                    f"{edges_m}-edge relation + {tail_m} echo tail, "
                    f"suspended at step {cut}/{total_steps}",
        "rerun_seconds": round(t_full, 4),
        "checkpoint_seconds": round(t_checkpoint, 5),
        "resume_seconds": round(t_resume, 4),
        "savings": round(savings, 2),
        "bundle_bytes": bundle_bytes,
        "resumed_steps": result.steps,
        "site_cutoffs_restored": perf.stats.site_cutoffs_restored,
        "documents_equivalent": reference.equivalent_to(resumed.system),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI subset; skips the ≤3% overhead and "
                             "≥5× savings assertions and the worktree A/B")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    out = args.out or os.path.join(root, "BENCH_pr5.json")

    if args.smoke:
        # base_rows, batches, batch_rows, chain_n, repeats
        probe_sizes = (30, 4, 10, 12, 2)
        scenarios = {
            "kernel_overhead": {
                "workload": "PR 4 probe (smoke: no baseline comparison)",
                "kernel": _run_probe(root, os.path.join(root, "src"),
                                     probe_sizes),
            },
            "checkpoint_resume": bench_checkpoint_resume(
                k_heavy=4, nodes=60, edges_m=140, cycle_len=4, tail_m=3),
        }
    else:
        scenarios = {
            "kernel_overhead": bench_kernel_overhead(
                root, (100, 10, 20, 32, REPEATS)),
            "checkpoint_resume": bench_checkpoint_resume(
                k_heavy=10, nodes=100, edges_m=280, cycle_len=4, tail_m=4),
        }
    perf.flags.set_all(True)

    failures = []
    if scenarios["checkpoint_resume"]["documents_equivalent"] is False:
        failures.append("checkpoint_resume: resumed fixpoint diverged")
    if not args.smoke:
        overhead_report = scenarios["kernel_overhead"]
        if overhead_report.get("results_equivalent") is False:
            failures.append("kernel_overhead: kernel engines computed "
                            "different answers than PR 4")
        for key in ("e3", "e4"):
            overhead = overhead_report.get(f"{key}_overhead_fraction")
            if overhead is None:
                print(f"  note: no PR 4 baseline for {key}; overhead gate "
                      "skipped")
            elif overhead > OVERHEAD_LIMIT:
                failures.append(
                    f"kernel_overhead: {key} {overhead:+.1%} > "
                    f"{OVERHEAD_LIMIT:.0%} vs PR 4")
        savings = scenarios["checkpoint_resume"]["savings"]
        if savings < SAVINGS_TARGET:
            failures.append(
                f"checkpoint_resume: savings {savings}x < "
                f"{SAVINGS_TARGET}x over rerun")

    write_bench_json(out, scenarios)
    for name, scenario in scenarios.items():
        if "savings" in scenario:
            extra = f" — {scenario['savings']}x cheaper than rerun"
        elif "e4_overhead_fraction" in scenario:
            extra = (f" — e3 {scenario.get('e3_overhead_fraction', 0):+.1%}, "
                     f"e4 {scenario.get('e4_overhead_fraction', 0):+.1%} "
                     "vs PR 4")
        else:
            extra = f" — {scenario['kernel']['e4_seconds']}s e4"
        print(f"  {name}: ok{extra}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
