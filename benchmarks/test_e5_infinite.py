"""E5 — Examples 2.1 / 3.3: divergent systems and their growth profiles.

Rows: document size after k productive invocations for the simple
divergent system (Example 2.1, linear growth: one nested copy per step)
versus the non-simple one (Example 3.3, quadratic growth: each step copies
every chain one level deeper).  Shape: linear vs super-linear, and the
simple system admits a finite graph representation while the non-simple
one does not.
"""

import pytest

from paxml.analysis import build_graph_representation
from paxml.system import AXMLSystem, materialize

from .harness import print_table


def example_2_1() -> AXMLSystem:
    return AXMLSystem.build(documents={"d": "a{!f}"},
                            services={"f": "a{!f} :- "})


def example_3_3() -> AXMLSystem:
    return AXMLSystem.build(documents={"dp": "a{a{b}, !g}"},
                            services={"g": "a{a{*X}} :- context/a{a{*X}}"})


STEPS = [2, 4, 8, 16]


@pytest.mark.parametrize("steps", STEPS[:3])
def test_simple_divergent_prefix(benchmark, steps):
    benchmark.group = "E5 Example 2.1 prefix"
    benchmark.name = f"k={steps}"

    def once():
        system = example_2_1()
        materialize(system, max_steps=steps)
        return system.documents["d"].size()

    benchmark(once)


@pytest.mark.parametrize("steps", STEPS[:3])
def test_non_simple_divergent_prefix(benchmark, steps):
    benchmark.group = "E5 Example 3.3 prefix"
    benchmark.name = f"k={steps}"

    def once():
        system = example_3_3()
        materialize(system, max_steps=steps)
        return system.documents["dp"].size()

    benchmark(once)


def test_e5_rows(benchmark):
    rows = []
    sizes_simple = []
    sizes_tree = []
    productive_simple = []
    productive_tree = []
    for steps in STEPS:
        simple = example_2_1()
        run_simple = materialize(simple, max_steps=steps)
        tree_var = example_3_3()
        run_tree = materialize(tree_var, max_steps=steps)
        sizes_simple.append(simple.documents["d"].size())
        sizes_tree.append(tree_var.documents["dp"].size())
        productive_simple.append(run_simple.productive_steps)
        productive_tree.append(run_tree.productive_steps)
        rows.append((steps, run_simple.productive_steps, sizes_simple[-1],
                     run_tree.productive_steps, sizes_tree[-1]))
    print_table("E5: divergence growth (Ex. 2.1 vs Ex. 3.3)",
                ["budget", "Ex2.1 prod", "Ex2.1 |d|",
                 "Ex3.3 prod", "Ex3.3 |dp|"], rows)

    # Shape: Ex 2.1 grows *linearly* — exactly two nodes (a data node and
    # a fresh call) per productive invocation; Ex 3.3 grows quadratically
    # in its productive steps (each step copies every chain one deeper).
    assert sizes_simple == [2 + 2 * k for k in productive_simple]
    per_step_simple = (sizes_simple[-1] - sizes_simple[0]) / max(
        1, productive_simple[-1] - productive_simple[0])
    per_step_tree = (sizes_tree[-1] - sizes_tree[0]) / max(
        1, productive_tree[-1] - productive_tree[0])
    assert per_step_tree > per_step_simple

    # The simple system has a finite graph representation; assert and
    # report its (tiny) vertex count.
    representation = build_graph_representation(example_2_1())
    assert not representation.is_finite()
    print(f"Ex 2.1 regular-tree representation: "
          f"{representation.graph('d').vertex_count()} vertices "
          f"(Lemma 3.2; Ex 3.3 has no finite representation)")
    benchmark(lambda: None)
